//! The six fetch-translation strategies (paper §3.3).
//!
//! All six share one skeleton: a translation *demand* (every fetch for
//! PI-PT/VI-PT; every iL1 miss for VI-VT) is served by the CFR when it is
//! trusted and by an iTLB lookup (which refills the CFR) when it is not.
//! The strategies differ only in **how trust is established**:
//!
//! - *Base* never trusts (it has no CFR);
//! - *OPT* trusts by oracle (exactly when the page truly has not changed);
//! - *HoA* pays a comparator on every fetch to check;
//! - *SoCA* distrusts after **every** branch target and boundary branch;
//! - *SoLA* like SoCA, except branches the compiler marked in-page keep
//!   trust;
//! - *IA* distrusts after boundary branches, after mispredict recoveries
//!   (Figure 3's return points B and D), and after predicted branches whose
//!   BTB target page differs from the CFR (point C) — point A (predicted,
//!   same page) keeps trust and costs only the BTB-side comparator.

use cfr_energy::{EnergyMeter, EnergyModel, MeterSlot};
use cfr_mem::{PageTable, Tlb, TlbConfig, TlbStats, TwoLevelTlb};
use cfr_types::{AddressingMode, PageGeometry, Pfn, Protection, VirtAddr, Vpn};
use serde::{Deserialize, Serialize};

use cfr_cpu::{FetchEvent, FetchKind, FetchTranslator, TranslationOutcome};

use crate::cfr::Cfr;

/// Which of the paper's mechanisms a [`Strategy`] implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StrategyKind {
    /// No CFR; iTLB on every translation demand (the paper's *base*).
    Base,
    /// Oracle: iTLB energy only on a true page change (the paper's *OPT*).
    Opt,
    /// Hardware-only approach (§3.3.1): comparator on every fetch.
    HoA,
    /// Software-only conservative approach (§3.3.2).
    SoCA,
    /// Software-only less conservative approach (§3.3.3).
    SoLA,
    /// Integrated hardware–software approach (§3.3.4).
    Ia,
}

impl StrategyKind {
    /// All six, in the paper's presentation order.
    pub const ALL: [StrategyKind; 6] = [
        StrategyKind::Base,
        StrategyKind::Opt,
        StrategyKind::HoA,
        StrategyKind::SoCA,
        StrategyKind::SoLA,
        StrategyKind::Ia,
    ];

    /// The four proposed schemes (what Figures 4/5 plot against Base/OPT).
    pub const PROPOSED: [StrategyKind; 4] = [
        StrategyKind::HoA,
        StrategyKind::SoCA,
        StrategyKind::SoLA,
        StrategyKind::Ia,
    ];

    /// Display name as the paper abbreviates it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::Base => "Base",
            StrategyKind::Opt => "OPT",
            StrategyKind::HoA => "HoA",
            StrategyKind::SoCA => "SoCA",
            StrategyKind::SoLA => "SoLA",
            StrategyKind::Ia => "IA",
        }
    }

    /// Serializes as a single lowercase kind token (persistent run store
    /// codec — the vendored `serde` is a no-op).
    pub fn to_record(&self, w: &mut cfr_types::RecordWriter) {
        w.token(match self {
            StrategyKind::Base => "base",
            StrategyKind::Opt => "opt",
            StrategyKind::HoA => "hoa",
            StrategyKind::SoCA => "soca",
            StrategyKind::SoLA => "sola",
            StrategyKind::Ia => "ia",
        });
    }

    /// Parses a [`Self::to_record`] token.
    ///
    /// # Errors
    ///
    /// Errors on an unknown kind token.
    pub fn from_record(
        r: &mut cfr_types::RecordReader<'_>,
    ) -> Result<Self, cfr_types::RecordError> {
        match r.token()? {
            "base" => Ok(StrategyKind::Base),
            "opt" => Ok(StrategyKind::Opt),
            "hoa" => Ok(StrategyKind::HoA),
            "soca" => Ok(StrategyKind::SoCA),
            "sola" => Ok(StrategyKind::SoLA),
            "ia" => Ok(StrategyKind::Ia),
            other => Err(cfr_types::RecordError::new(format!(
                "unknown strategy kind {other:?}"
            ))),
        }
    }
}

impl core::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The iTLB the strategy consults on a lookup: monolithic or two-level
/// serial (§4.3.2).
// Deliberately unboxed: the variant is matched on every instruction
// fetch, and one `Strategy` exists per run — the size gap costs a few
// hundred bytes once, where a `Box` would cost a pointer chase per
// lookup.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ItlbModel {
    /// One TLB structure.
    Mono(Tlb),
    /// Serial two-level structure.
    TwoLevel(TwoLevelTlb),
}

/// Cached [`MeterSlot`]s for every hot charge site, so the per-event
/// energy accounting skips the by-name component lookup.
#[derive(Debug, Default)]
struct MeterSlots {
    cfr_read: MeterSlot,
    cfr_compare: MeterSlot,
    itlb_access: MeterSlot,
    itlb_refill: MeterSlot,
    itlb_l1_access: MeterSlot,
    itlb_l2_access: MeterSlot,
    itlb_l1_refill: MeterSlot,
    itlb_l2_refill: MeterSlot,
    fault_trap: MeterSlot,
}

/// Per-event iTLB energies, precomputed once at construction: the CACTI
/// formulas are pure functions of the (fixed) organization, so
/// re-evaluating the f64 arithmetic on every fetch only burned time on
/// the hottest path. Values are bit-identical to what the formulas
/// produce inline.
#[derive(Clone, Copy, Debug, Default)]
struct ItlbEnergies {
    /// L1 (or monolithic) access / refill.
    access_pj: f64,
    refill_pj: f64,
    /// Second level, two-level models only.
    l2_access_pj: f64,
    l2_refill_pj: f64,
}

impl ItlbEnergies {
    fn of(itlb: &ItlbModel, model: &EnergyModel) -> Self {
        match itlb {
            ItlbModel::Mono(tlb) => {
                let org = tlb.organization();
                Self {
                    access_pj: model.tlb_access_pj(&org),
                    refill_pj: model.tlb_refill_pj(&org),
                    ..Self::default()
                }
            }
            ItlbModel::TwoLevel(two) => {
                let l1 = two.l1().organization();
                let l2 = two.l2().organization();
                Self {
                    access_pj: model.tlb_access_pj(&l1),
                    refill_pj: model.tlb_refill_pj(&l1),
                    l2_access_pj: model.tlb_access_pj(&l2),
                    l2_refill_pj: model.tlb_refill_pj(&l2),
                }
            }
        }
    }
}

impl ItlbModel {
    fn lookup(
        &mut self,
        vpn: Vpn,
        pt: &mut PageTable,
        meter: &mut EnergyMeter,
        slots: &mut MeterSlots,
        energies: ItlbEnergies,
    ) -> (Pfn, Protection, u32, bool) {
        match self {
            ItlbModel::Mono(tlb) => {
                meter.charge_cached(&mut slots.itlb_access, "itlb_access", energies.access_pj);
                let r = tlb.lookup(vpn, pt, Protection::code());
                if !r.hit {
                    meter.charge_cached(&mut slots.itlb_refill, "itlb_refill", energies.refill_pj);
                }
                (r.pfn, r.prot, r.penalty, r.fault)
            }
            ItlbModel::TwoLevel(two) => {
                meter.charge_cached(
                    &mut slots.itlb_l1_access,
                    "itlb_l1_access",
                    energies.access_pj,
                );
                let r = two.lookup(vpn, pt, Protection::code());
                if !r.l1_hit {
                    meter.charge_cached(
                        &mut slots.itlb_l2_access,
                        "itlb_l2_access",
                        energies.l2_access_pj,
                    );
                    meter.charge_cached(
                        &mut slots.itlb_l1_refill,
                        "itlb_l1_refill",
                        energies.refill_pj,
                    );
                    if r.l2_hit == Some(false) {
                        meter.charge_cached(
                            &mut slots.itlb_l2_refill,
                            "itlb_l2_refill",
                            energies.l2_refill_pj,
                        );
                    }
                }
                (r.pfn, r.prot, r.penalty, r.fault)
            }
        }
    }

    fn stats(&self) -> TlbStats {
        match self {
            ItlbModel::Mono(t) => *t.stats(),
            ItlbModel::TwoLevel(t) => {
                // Aggregate: accesses at L1; misses are full misses.
                let l1 = *t.l1().stats();
                let l2 = *t.l2().stats();
                TlbStats {
                    accesses: l1.accesses,
                    hits: l1.hits + l2.hits,
                    misses: l2.misses,
                    invalidations: l1.invalidations + l2.invalidations,
                    protection_faults: l1.protection_faults + l2.protection_faults,
                }
            }
        }
    }

    fn invalidate(&mut self, vpn: Vpn) {
        match self {
            ItlbModel::Mono(t) => {
                t.invalidate(vpn);
            }
            ItlbModel::TwoLevel(t) => t.invalidate(vpn),
        }
    }

    fn invalidate_all(&mut self) -> u64 {
        match self {
            ItlbModel::Mono(t) => t.invalidate_all(),
            ItlbModel::TwoLevel(t) => t.invalidate_all(),
        }
    }

    fn invalidate_asid(&mut self, asid: u16) -> u64 {
        match self {
            ItlbModel::Mono(t) => t.invalidate_asid(asid),
            ItlbModel::TwoLevel(t) => t.invalidate_asid(asid),
        }
    }

    fn set_asid(&mut self, asid: u16) {
        match self {
            ItlbModel::Mono(t) => t.set_asid(asid),
            ItlbModel::TwoLevel(t) => t.set_asid(asid),
        }
    }

    fn set_demand_fault_penalty(&mut self, cycles: u32) {
        match self {
            ItlbModel::Mono(t) => t.set_demand_fault_penalty(cycles),
            ItlbModel::TwoLevel(t) => t.set_demand_fault_penalty(cycles),
        }
    }

    fn demand_faults(&self) -> u64 {
        match self {
            ItlbModel::Mono(t) => t.demand_faults(),
            ItlbModel::TwoLevel(t) => t.demand_faults(),
        }
    }
}

/// Per-run lookup cause breakdown (paper Table 3).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupBreakdown {
    /// Lookups triggered at boundary-branch targets or sequential page
    /// crossings (the BOUNDARY case).
    pub boundary: u64,
    /// Lookups triggered at ordinary branch targets and mispredict
    /// recoveries (the BRANCH case).
    pub branch: u64,
}

impl LookupBreakdown {
    /// Serializes as `breakdown <boundary> <branch>` (persistent run
    /// store codec).
    pub fn to_record(&self, w: &mut cfr_types::RecordWriter) {
        w.token("breakdown");
        w.u64(self.boundary);
        w.u64(self.branch);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(
        r: &mut cfr_types::RecordReader<'_>,
    ) -> Result<Self, cfr_types::RecordError> {
        r.expect("breakdown")?;
        Ok(Self {
            boundary: r.u64()?,
            branch: r.u64()?,
        })
    }
}

/// A [`StrategyKind`] bound to an addressing mode, an iTLB, a CFR, and an
/// energy model — a complete `FetchTranslator` for the pipeline.
#[derive(Debug)]
pub struct Strategy {
    kind: StrategyKind,
    mode: AddressingMode,
    geom: PageGeometry,
    itlb: ItlbModel,
    cfr: Cfr,
    meter: EnergyMeter,
    model: EnergyModel,
    /// Frame produced by this fetch's `on_fetch` (handed back for free on
    /// the same fetch's iL1 miss under PI-PT/VI-PT).
    last_pfn: Option<Pfn>,
    breakdown: LookupBreakdown,
    slots: MeterSlots,
    /// Precomputed per-event iTLB energies (see [`ItlbEnergies`]).
    energies: ItlbEnergies,
    context_switches: u64,
    /// Cycles an iTLB protection fault spends trapping to the OS handler
    /// (0 = faults are counted but free, the paper's implicit setting).
    fault_latency: u32,
}

impl Strategy {
    /// Builds a strategy over a monolithic iTLB.
    #[must_use]
    pub fn new(
        kind: StrategyKind,
        mode: AddressingMode,
        geom: PageGeometry,
        itlb: TlbConfig,
        model: EnergyModel,
    ) -> Self {
        Self::with_itlb(kind, mode, geom, ItlbModel::Mono(Tlb::new(itlb)), model)
    }

    /// Builds a strategy over an explicit iTLB model (e.g. two-level for
    /// the Figure 6 comparison).
    #[must_use]
    pub fn with_itlb(
        kind: StrategyKind,
        mode: AddressingMode,
        geom: PageGeometry,
        itlb: ItlbModel,
        model: EnergyModel,
    ) -> Self {
        let energies = ItlbEnergies::of(&itlb, &model);
        Self {
            kind,
            mode,
            geom,
            itlb,
            cfr: Cfr::new(),
            meter: EnergyMeter::new(),
            model,
            last_pfn: None,
            breakdown: LookupBreakdown::default(),
            slots: MeterSlots::default(),
            energies,
            context_switches: 0,
            fault_latency: 0,
        }
    }

    /// The strategy kind.
    #[must_use]
    pub fn kind(&self) -> StrategyKind {
        self.kind
    }

    /// Lookup-cause breakdown (Table 3).
    #[must_use]
    pub fn breakdown(&self) -> LookupBreakdown {
        self.breakdown
    }

    /// Read access to the CFR (tests, OS tooling).
    #[must_use]
    pub fn cfr(&self) -> &Cfr {
        &self.cfr
    }

    /// OS hook (§3.2): context switch — the CFR is saved/restored process
    /// context; within this single-address-space model that means it is
    /// invalidated and must be re-established by an iTLB lookup.
    pub fn on_context_switch(&mut self) {
        self.cfr.invalidate();
        self.context_switches += 1;
    }

    /// OS hook (§3.2): the page holding `vpn` was evicted or remapped; the
    /// OS must invalidate both the iTLB entry and the CFR.
    pub fn on_page_evicted(&mut self, vpn: Vpn) {
        self.cfr.on_page_evicted(vpn);
        self.itlb.invalidate(vpn);
    }

    /// Number of context switches injected.
    #[must_use]
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// OS hook: cycles an iTLB protection fault spends trapping to the OS
    /// handler. Nonzero values make `TlbStats::protection_faults` cost
    /// cycles *and* energy (a `fault_trap` meter component).
    pub fn set_fault_latency(&mut self, cycles: u32) {
        self.fault_latency = cycles;
    }

    /// OS hook: the address-space identifier tag folded into every iTLB
    /// entry from now on (ASID-tagged TLB mode; 0 is the boot/default
    /// space and is tag-identical to an untagged TLB).
    pub fn set_asid(&mut self, asid: u16) {
        self.itlb.set_asid(asid);
    }

    /// OS hook: flush-on-switch TLB mode — invalidate every iTLB entry
    /// (both levels under the two-level model). Returns the number of
    /// entries flushed.
    pub fn flush_itlb(&mut self) -> u64 {
        self.itlb.invalidate_all()
    }

    /// OS hook: shoot down every iTLB entry tagged with `asid` (an exiting
    /// process's space being recycled). Returns the number of entries shot.
    pub fn shootdown_asid(&mut self, asid: u16) -> u64 {
        self.itlb.invalidate_asid(asid)
    }

    /// OS hook: switch the fetch path to the incoming process's page
    /// geometry (4 KB vs 2 MB mixes in the scenario layer).
    pub fn set_geometry(&mut self, geom: PageGeometry) {
        self.geom = geom;
    }

    /// OS hook: cycles a demand fault (first touch of an unmapped page)
    /// adds to the iTLB miss penalty. 0 disables the page-table probe.
    pub fn set_demand_fault_penalty(&mut self, cycles: u32) {
        self.itlb.set_demand_fault_penalty(cycles);
    }

    /// Demand faults taken by the iTLB (first touches of unmapped pages);
    /// counted only when a demand-fault penalty is configured.
    #[must_use]
    pub fn demand_faults(&self) -> u64 {
        self.itlb.demand_faults()
    }

    fn charge_cfr_read(&mut self) {
        self.meter.charge_cached(
            &mut self.slots.cfr_read,
            "cfr_read",
            self.model.cfr_read_pj(),
        );
    }

    fn charge_compare(&mut self) {
        self.meter.charge_cached(
            &mut self.slots.cfr_compare,
            "cfr_compare",
            self.model.cfr_compare_pj(),
        );
    }

    fn count_lookup_cause(&mut self, ev: &FetchEvent) {
        match ev.kind {
            FetchKind::Sequential { .. } => self.breakdown.boundary += 1,
            FetchKind::BranchTarget {
                from_boundary: true,
                ..
            } => self.breakdown.boundary += 1,
            FetchKind::BranchTarget { .. } | FetchKind::Recovery => self.breakdown.branch += 1,
        }
    }

    /// Full iTLB lookup + CFR refill.
    fn lookup_and_refill(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> (Pfn, u32) {
        let vpn = self.geom.vpn(ev.pc);
        self.count_lookup_cause(ev);
        let mut meter = std::mem::take(&mut self.meter);
        let (pfn, prot, mut penalty, fault) =
            self.itlb
                .lookup(vpn, pt, &mut meter, &mut self.slots, self.energies);
        if fault && self.fault_latency > 0 {
            // A protection fault traps to the OS handler: the fetch stalls
            // for the handler's latency and the trap's pipeline activity is
            // charged to its own meter component. With `fault_latency == 0`
            // (the default) faults are counted but cost nothing, keeping the
            // fault-free model byte-identical.
            penalty += self.fault_latency;
            meter.charge_cached(
                &mut self.slots.fault_trap,
                "fault_trap",
                self.model.fault_trap_pj(self.fault_latency),
            );
        }
        self.meter = meter;
        self.cfr.load(vpn, pfn, prot);
        (pfn, penalty)
    }

    /// Processes software invalidation triggers carried by the fetch kind.
    fn apply_software_triggers(&mut self, ev: &FetchEvent) {
        match self.kind {
            StrategyKind::SoCA => {
                if matches!(
                    ev.kind,
                    FetchKind::BranchTarget { .. } | FetchKind::Recovery
                ) {
                    self.cfr.invalidate();
                }
            }
            StrategyKind::SoLA => match ev.kind {
                FetchKind::BranchTarget { in_page_marked, .. } if in_page_marked => {}
                FetchKind::BranchTarget { .. } | FetchKind::Recovery => self.cfr.invalidate(),
                FetchKind::Sequential { .. } => {}
            },
            StrategyKind::Ia => match ev.kind {
                // BOUNDARY handled by the compiler; ordinary predicted
                // targets were already filtered by the BTB-vs-CFR compare
                // in `on_branch_predicted`. Recovery is Figure 3's B/D.
                FetchKind::BranchTarget {
                    from_boundary: true,
                    ..
                }
                | FetchKind::Recovery => self.cfr.invalidate(),
                _ => {}
            },
            _ => {}
        }
    }

    /// Serves a translation demand: CFR when trusted, else iTLB.
    fn demand(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> Served {
        let vpn = self.geom.vpn(ev.pc);
        let trusted = match self.kind {
            StrategyKind::Base => false,
            // OPT's oracle and HoA's comparator both check the actual page;
            // the software schemes trust validity alone (on the
            // architectural path the layout invariant guarantees the page
            // matches; on wrong paths a stale frame may be used — those
            // fetches are squashed, exactly as in hardware).
            StrategyKind::Opt | StrategyKind::HoA => self.cfr.matches(vpn),
            StrategyKind::SoCA | StrategyKind::SoLA | StrategyKind::Ia => self.cfr.is_valid(),
        };
        if trusted {
            self.charge_cfr_read();
            Served {
                pfn: self.cfr.pfn(),
                penalty: 0,
                by_cfr: true,
            }
        } else {
            let (pfn, penalty) = self.lookup_and_refill(ev, pt);
            Served {
                pfn,
                penalty,
                by_cfr: false,
            }
        }
    }
}

/// How a translation demand was served.
struct Served {
    pfn: Pfn,
    penalty: u32,
    by_cfr: bool,
}

impl FetchTranslator for Strategy {
    fn addressing_mode(&self) -> AddressingMode {
        self.mode
    }

    fn on_fetch(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> TranslationOutcome {
        // HoA's comparator runs on every instruction fetch when the fetch
        // path demands a translation (PI-PT/VI-PT) — that is its energy
        // cost over OPT. Under VI-VT no translation is needed until an iL1
        // miss, so the comparison folds into the miss path (charged in
        // `on_il1_miss`); without this gating HoA's comparator alone would
        // dwarf VI-VT's per-miss base energy, which contradicts the paper's
        // Figure 4 bottom panel (HoA ≈ 15% of base).
        if self.kind == StrategyKind::HoA && self.mode != AddressingMode::ViVt {
            self.charge_compare();
        }
        self.apply_software_triggers(ev);

        if self.mode == AddressingMode::ViVt {
            // Translation is demanded only on an iL1 miss.
            self.last_pfn = None;
            return TranslationOutcome::none();
        }

        let served = self.demand(ev, pt);
        self.last_pfn = Some(served.pfn);
        let stall = match self.mode {
            // Serial lookup in front of the iL1: one cycle whenever the
            // iTLB (not the CFR) had to produce the translation.
            AddressingMode::PiPt => {
                if served.by_cfr {
                    0
                } else {
                    1 + served.penalty
                }
            }
            // Parallel lookup: only an iTLB *miss* stalls.
            AddressingMode::ViPt => served.penalty,
            AddressingMode::ViVt => unreachable!("handled above"),
        };
        TranslationOutcome {
            pfn: Some(served.pfn),
            stall,
        }
    }

    fn on_il1_miss(&mut self, ev: &FetchEvent, pt: &mut PageTable) -> TranslationOutcome {
        if self.mode != AddressingMode::ViVt {
            // Already translated in on_fetch; the frame is reused for free.
            return TranslationOutcome {
                pfn: self.last_pfn,
                stall: 0,
            };
        }
        if self.kind == StrategyKind::HoA {
            // The miss-path CFR comparison (see `on_fetch`).
            self.charge_compare();
        }
        let served = self.demand(ev, pt);
        // The serial iTLB lookup on the miss path costs one cycle (plus the
        // walk on an iTLB miss); a CFR hit avoids it entirely — that is the
        // paper's VI-VT cycle savings.
        let stall = if served.by_cfr { 0 } else { 1 + served.penalty };
        TranslationOutcome {
            pfn: Some(served.pfn),
            stall,
        }
    }

    fn prefetch_translation(&self, pc: VirtAddr) {
        // Host-side hint only: pull the iTLB's key/LRU rows for this page
        // toward the host caches so the pipeline's fetch batch overlaps
        // this probe's host miss with the iL1 tag probe. Reads nothing
        // architecturally visible and charges no energy.
        let vpn = self.geom.vpn(pc);
        match &self.itlb {
            ItlbModel::Mono(t) => t.prefetch(vpn),
            ItlbModel::TwoLevel(t) => t.prefetch(vpn),
        }
    }

    fn on_branch_predicted(&mut self, _branch_pc: VirtAddr, btb_target: Option<VirtAddr>) {
        if self.kind != StrategyKind::Ia {
            return;
        }
        // Figure 2: the BTB's predicted target page is compared against the
        // CFR as soon as it is available. Under VI-VT the comparison result
        // is only consumed on the iL1 miss path, so its energy folds there
        // (the paper's IA lands within ~1% of OPT on VI-VT, which rules out
        // a per-branch comparator charge).
        if let Some(target) = btb_target {
            if self.mode != AddressingMode::ViVt {
                self.charge_compare();
            }
            if !self.cfr.matches(self.geom.vpn(target)) {
                // Page change predicted: the target fetch will look up the
                // iTLB (Figure 3 return point C).
                self.cfr.invalidate();
            }
        }
    }

    fn on_mispredict(&mut self) {
        // Figure 3 return points B and D: after a misprediction the CFR is
        // re-established via the iTLB on the corrected path. The Recovery
        // fetch kind performs the invalidation; nothing to do here beyond
        // the hooks the kinds already handle.
    }

    fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    fn itlb_stats(&self) -> TlbStats {
        self.itlb.stats()
    }

    fn name(&self) -> &'static str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfr_energy::EnergyModel;
    use cfr_mem::PageTable;

    fn strategy(kind: StrategyKind, mode: AddressingMode) -> Strategy {
        Strategy::new(
            kind,
            mode,
            PageGeometry::default_4k(),
            TlbConfig::default_itlb(),
            EnergyModel::default(),
        )
    }

    fn seq(pc: u64) -> FetchEvent {
        FetchEvent {
            pc: VirtAddr::new(pc),
            kind: FetchKind::Sequential {
                page_crossed: false,
            },
            wrong_path: false,
        }
    }

    fn branch_target(pc: u64, marked: bool, boundary: bool) -> FetchEvent {
        FetchEvent {
            pc: VirtAddr::new(pc),
            kind: FetchKind::BranchTarget {
                in_page_marked: marked,
                from_boundary: boundary,
            },
            wrong_path: false,
        }
    }

    #[test]
    fn fault_latency_charges_trap_cycles_and_energy() {
        // Map the fetch page data-only so fetching (Protection::code) faults.
        let mut pt = PageTable::new();
        let geom = PageGeometry::default_4k();
        pt.translate(geom.vpn(VirtAddr::new(0x40_0000)), Protection::data());

        // Latency 0 (the default): the fault is counted but free, and no
        // trap meter component materializes — byte-identical to the
        // fault-free model.
        let mut s0 = strategy(StrategyKind::Base, AddressingMode::ViPt);
        let out0 = s0.on_fetch(&seq(0x40_0000), &mut pt);
        assert_eq!(s0.itlb_stats().protection_faults, 1);
        assert_eq!(s0.meter().events("fault_trap"), 0);

        // Nonzero latency: the same fetch stalls the handler's cycles on
        // top and charges a fault_trap energy event.
        let mut s1 = strategy(StrategyKind::Base, AddressingMode::ViPt);
        s1.set_fault_latency(900);
        let out1 = s1.on_fetch(&seq(0x40_0000), &mut pt);
        assert_eq!(s1.itlb_stats().protection_faults, 1);
        assert_eq!(out1.stall, out0.stall + 900);
        assert_eq!(s1.meter().events("fault_trap"), 1);
        let trap_pj = EnergyModel::default().fault_trap_pj(900);
        assert!((s1.meter().total_pj() - s0.meter().total_pj() - trap_pj).abs() < 1e-9);
    }

    #[test]
    fn asid_and_flush_hooks_reach_the_itlb() {
        let mut pt = PageTable::new();
        let mut s = strategy(StrategyKind::Base, AddressingMode::ViPt);
        for i in 0..4 {
            s.on_fetch(&seq(0x40_0000 + i * 0x1000), &mut pt);
        }
        assert_eq!(s.itlb_stats().misses, 4);
        // Re-fetch under a new ASID: nothing resident under that tag.
        s.set_asid(7);
        s.on_fetch(&seq(0x40_0000), &mut pt);
        assert_eq!(s.itlb_stats().misses, 5, "asid 7 cannot see asid 0 entries");
        // Shoot down the new space only, then flush everything.
        assert_eq!(s.shootdown_asid(7), 1);
        assert_eq!(s.flush_itlb(), 4);
        assert_eq!(s.flush_itlb(), 0);
    }

    #[test]
    fn base_vipt_accesses_itlb_every_fetch() {
        let mut s = strategy(StrategyKind::Base, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        for i in 0..100 {
            let out = s.on_fetch(&seq(0x40_0000 + i * 4), &mut pt);
            assert!(out.pfn.is_some());
        }
        assert_eq!(s.itlb_stats().accesses, 100);
        assert_eq!(s.meter().events("itlb_access"), 100);
        assert_eq!(s.meter().events("cfr_read"), 0);
    }

    #[test]
    fn opt_accesses_itlb_only_on_page_change() {
        let mut s = strategy(StrategyKind::Opt, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        for i in 0..100 {
            s.on_fetch(&seq(0x40_0000 + i * 4), &mut pt);
        }
        assert_eq!(s.itlb_stats().accesses, 1, "one cold lookup only");
        // Cross to the next page.
        s.on_fetch(&seq(0x40_1000), &mut pt);
        assert_eq!(s.itlb_stats().accesses, 2);
        assert_eq!(s.meter().events("cfr_read"), 99, "all but the two lookups");
    }

    #[test]
    fn hoa_pays_comparator_every_fetch() {
        let mut s = strategy(StrategyKind::HoA, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        for i in 0..50 {
            s.on_fetch(&seq(0x40_0000 + i * 4), &mut pt);
        }
        assert_eq!(s.meter().events("cfr_compare"), 50);
        assert_eq!(s.itlb_stats().accesses, 1);
    }

    #[test]
    fn hoa_detects_page_change_without_software() {
        let mut s = strategy(StrategyKind::HoA, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt);
        // A sequential BOUNDARY crossing — no branch, no software trigger.
        s.on_fetch(
            &FetchEvent {
                pc: VirtAddr::new(0x40_1000),
                kind: FetchKind::Sequential { page_crossed: true },
                wrong_path: false,
            },
            &mut pt,
        );
        assert_eq!(s.itlb_stats().accesses, 2, "comparator caught the change");
    }

    #[test]
    fn soca_looks_up_at_every_branch_target() {
        let mut s = strategy(StrategyKind::SoCA, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt); // cold lookup
        s.on_fetch(&seq(0x40_0004), &mut pt); // CFR
                                              // In-page branch target: SoCA is conservative and looks up anyway.
        s.on_fetch(&branch_target(0x40_0040, false, false), &mut pt);
        assert_eq!(s.itlb_stats().accesses, 2);
        assert_eq!(s.breakdown().branch, 1);
        // Boundary branch target counts in the BOUNDARY column.
        s.on_fetch(&branch_target(0x40_1000, false, true), &mut pt);
        assert_eq!(s.breakdown().boundary, 2, "cold + boundary");
    }

    #[test]
    fn sola_skips_marked_in_page_targets() {
        let mut s = strategy(StrategyKind::SoLA, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt);
        s.on_fetch(&branch_target(0x40_0040, true, false), &mut pt);
        assert_eq!(s.itlb_stats().accesses, 1, "marked target uses the CFR");
        s.on_fetch(&branch_target(0x40_0080, false, false), &mut pt);
        assert_eq!(s.itlb_stats().accesses, 2, "unmarked target looks up");
    }

    #[test]
    fn ia_trusts_btb_page_match() {
        let mut s = strategy(StrategyKind::Ia, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt);
        // Predicted branch whose BTB target stays on the page: point A.
        s.on_branch_predicted(VirtAddr::new(0x40_0010), Some(VirtAddr::new(0x40_0040)));
        s.on_fetch(&branch_target(0x40_0040, false, false), &mut pt);
        assert_eq!(s.itlb_stats().accesses, 1, "no lookup on same-page target");
        assert_eq!(s.meter().events("cfr_compare"), 1);
        // Predicted branch leaving the page: point C.
        s.on_branch_predicted(VirtAddr::new(0x40_0044), Some(VirtAddr::new(0x40_2000)));
        s.on_fetch(&branch_target(0x40_2000, false, false), &mut pt);
        assert_eq!(s.itlb_stats().accesses, 2);
    }

    #[test]
    fn ia_looks_up_on_recovery() {
        let mut s = strategy(StrategyKind::Ia, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt);
        s.on_mispredict();
        s.on_fetch(
            &FetchEvent {
                pc: VirtAddr::new(0x40_0100),
                kind: FetchKind::Recovery,
                wrong_path: false,
            },
            &mut pt,
        );
        assert_eq!(s.itlb_stats().accesses, 2, "B/D points force a lookup");
        assert_eq!(s.breakdown().branch, 1);
    }

    #[test]
    fn vivt_defers_to_il1_miss() {
        let mut s = strategy(StrategyKind::Base, AddressingMode::ViVt);
        let mut pt = PageTable::new();
        let out = s.on_fetch(&seq(0x40_0000), &mut pt);
        assert_eq!(out, TranslationOutcome::none());
        assert_eq!(s.itlb_stats().accesses, 0);
        let miss = s.on_il1_miss(&seq(0x40_0000), &mut pt);
        assert!(miss.pfn.is_some());
        assert!(miss.stall >= 1, "serial lookup on the miss path");
        assert_eq!(s.itlb_stats().accesses, 1);
    }

    #[test]
    fn vivt_cfr_hit_avoids_miss_path_latency() {
        let mut s = strategy(StrategyKind::Opt, AddressingMode::ViVt);
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt);
        let first = s.on_il1_miss(&seq(0x40_0000), &mut pt);
        assert!(first.stall >= 1, "cold: lookup + walk");
        let second = s.on_il1_miss(&seq(0x40_0008), &mut pt);
        assert_eq!(second.stall, 0, "CFR covers the page: no serial lookup");
        assert_eq!(s.itlb_stats().accesses, 1);
    }

    #[test]
    fn pipt_serial_stall_only_without_cfr() {
        let mut base = strategy(StrategyKind::Base, AddressingMode::PiPt);
        let mut pt = PageTable::new();
        base.on_fetch(&seq(0x40_0000), &mut pt);
        let out = base.on_fetch(&seq(0x40_0004), &mut pt);
        assert_eq!(out.stall, 1, "base PI-PT always pays the serial lookup");

        let mut ia = strategy(StrategyKind::Ia, AddressingMode::PiPt);
        ia.on_fetch(&seq(0x40_0000), &mut pt);
        let out = ia.on_fetch(&seq(0x40_0004), &mut pt);
        assert_eq!(out.stall, 0, "CFR keeps the iTLB off the critical path");
    }

    #[test]
    fn itlb_miss_penalty_propagates() {
        let mut s = Strategy::new(
            StrategyKind::Base,
            AddressingMode::ViPt,
            PageGeometry::default_4k(),
            TlbConfig {
                organization: cfr_types::TlbOrganization::fully_associative(1),
                miss_penalty: 50,
            },
            EnergyModel::default(),
        );
        let mut pt = PageTable::new();
        let a = s.on_fetch(&seq(0x40_0000), &mut pt);
        assert_eq!(a.stall, 50, "cold miss walks the page table");
        let b = s.on_fetch(&seq(0x40_0004), &mut pt);
        assert_eq!(b.stall, 0, "now resident");
        let c = s.on_fetch(&seq(0x40_1000), &mut pt);
        assert_eq!(c.stall, 50, "1-entry TLB thrashes across pages");
    }

    #[test]
    fn os_hooks_invalidate() {
        let mut s = strategy(StrategyKind::Ia, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt);
        assert!(s.cfr().is_valid());
        s.on_context_switch();
        assert!(!s.cfr().is_valid());
        assert_eq!(s.context_switches(), 1);
        s.on_fetch(&seq(0x40_0004), &mut pt);
        assert_eq!(s.itlb_stats().accesses, 2, "re-established after switch");

        let vpn = PageGeometry::default_4k().vpn(VirtAddr::new(0x40_0004));
        s.on_page_evicted(vpn);
        assert!(!s.cfr().is_valid());
        s.on_fetch(&seq(0x40_0008), &mut pt);
        assert_eq!(s.itlb_stats().misses, 2, "eviction also shot down the iTLB");
    }

    #[test]
    fn wrong_path_fetches_charged() {
        let mut s = strategy(StrategyKind::Base, AddressingMode::ViPt);
        let mut pt = PageTable::new();
        s.on_fetch(
            &FetchEvent {
                pc: VirtAddr::new(0x40_0000),
                kind: FetchKind::Sequential {
                    page_crossed: false,
                },
                wrong_path: true,
            },
            &mut pt,
        );
        assert_eq!(s.itlb_stats().accesses, 1);
    }

    #[test]
    fn two_level_charges_both_levels_on_l1_miss() {
        let mut s = Strategy::with_itlb(
            StrategyKind::Base,
            AddressingMode::ViPt,
            PageGeometry::default_4k(),
            ItlbModel::TwoLevel(TwoLevelTlb::fig6_small()),
            EnergyModel::default(),
        );
        let mut pt = PageTable::new();
        s.on_fetch(&seq(0x40_0000), &mut pt); // cold: l1 miss, l2 miss
        assert_eq!(s.meter().events("itlb_l1_access"), 1);
        assert_eq!(s.meter().events("itlb_l2_access"), 1);
        s.on_fetch(&seq(0x40_0004), &mut pt); // l1 (1-entry) hit
        assert_eq!(s.meter().events("itlb_l1_access"), 2);
        assert_eq!(s.meter().events("itlb_l2_access"), 1);
    }

    #[test]
    fn strategy_kind_display() {
        assert_eq!(StrategyKind::Ia.to_string(), "IA");
        assert_eq!(StrategyKind::ALL.len(), 6);
        assert_eq!(StrategyKind::PROPOSED.len(), 4);
    }
}
