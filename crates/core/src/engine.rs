//! The parallel experiment engine.
//!
//! Every table and figure in the paper's evaluation is a set of
//! *(benchmark, strategy, addressing mode, iTLB)* simulation runs at some
//! [`ExperimentScale`] — and the sets overlap heavily (`table2`,
//! `table5`, `fig4`, and `table8` all need the base VI-PT run of every
//! benchmark, for example). Run serially and independently, the full
//! evaluation pays for the same simulations many times over.
//!
//! The [`Engine`] replaces that with a declarative plan:
//!
//! 1. experiments describe the runs they need as [`RunKey`]s,
//! 2. the engine **deduplicates** keys against its result cache, so every
//!    unique key is simulated exactly once per engine — across calls and
//!    across experiments,
//! 3. keys still missing are looked up in the optional **persistent
//!    [`Store`]** ([`Engine::with_store`]), which extends the dedup
//!    guarantee across *processes*: a key any binary on this machine has
//!    already simulated is read back from disk,
//! 4. the remaining cold runs execute **in parallel** (rayon), each
//!    borrowing its benchmark's program from a shared, memoized
//!    [`ProgramCache`], and are written back to the store, and
//! 5. results come back as cheap [`Arc`] handles in request order.
//!
//! Parallel execution is **deterministic**: a run's outcome depends only
//! on its key (the simulator is seeded, single-threaded per run, and
//! shares nothing mutable), and the engine reassembles results in input
//! order, so the reports are bit-identical to serial
//! [`Simulator::run_program`] calls regardless of worker scheduling.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cfr_types::{
    AddressingMode, PageGeometry, RecordError, RecordReader, RecordWriter, NS_PROGRAMS,
    NS_SCENARIOS, NS_TRACES, NS_WALKS,
};
use cfr_workload::{
    measure_walk, program_store_key, trace_store_key, walk_store_key, BenchmarkProfile,
    CompiledTrace, LaidProgram, Program, ProgramCache, TraceCache, WalkMeasurement,
};
use rayon::prelude::*;

use crate::compiler;
use crate::experiment::ExperimentScale;
use crate::scenario::{self, ScenarioBinary, ScenarioConfig, ScenarioReport};
use crate::simulator::{ExecBackend, ItlbChoice, RunReport, SimConfig, Simulator};
use crate::store::{RunClaim, Store};
use crate::strategy::StrategyKind;

/// Identity of one compiled (laid-out) binary: benchmark, page size, and
/// the compilation class — whether boundary instrumentation ran and
/// whether the SoLA in-page marking pass ran. Strategies within a class
/// execute the *same* binary, so the engine compiles it once.
type LaidKey = (&'static str, u64, bool, bool);

/// The identity of one simulation run. Two runs with equal keys produce
/// bit-identical [`RunReport`]s, which is what makes engine-level
/// deduplication — and the cross-process persistent [`Store`] — sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Benchmark profile name (e.g. `"177.mesa"`), resolved against the
    /// engine's registered profiles.
    pub profile: &'static str,
    /// Run length and walker seed.
    pub scale: ExperimentScale,
    /// CFR strategy.
    pub strategy: StrategyKind,
    /// iL1 addressing mode.
    pub mode: AddressingMode,
    /// iTLB structure.
    pub itlb: ItlbChoice,
    /// iL1 capacity override in bytes (`None` = the paper's 8 KB) — the
    /// iL1-sensitivity sweep runs through the engine like everything else.
    pub il1_bytes: Option<u64>,
    /// Page size override in bytes (`None` = the paper's 4 KB), for the
    /// page-size sweep.
    pub page_bytes: Option<u64>,
}

impl RunKey {
    /// A key for the default iTLB (the paper's 32-entry fully-associative
    /// monolith) at the paper's default iL1 capacity and page size.
    #[must_use]
    pub fn new(
        profile: &'static str,
        scale: &ExperimentScale,
        strategy: StrategyKind,
        mode: AddressingMode,
    ) -> Self {
        Self {
            profile,
            scale: *scale,
            strategy,
            mode,
            itlb: ItlbChoice::default_mono(),
            il1_bytes: None,
            page_bytes: None,
        }
    }

    /// The same run with a different iTLB structure.
    #[must_use]
    pub fn with_itlb(mut self, itlb: ItlbChoice) -> Self {
        self.itlb = itlb;
        self
    }

    /// The same run with an iL1 capacity override (power of two, bytes).
    /// The default capacity canonicalizes to "no override", so a sweep's
    /// default column shares its key — its in-memory cache entry *and*
    /// its store record — with the non-sweep runs of the same
    /// configuration.
    #[must_use]
    pub fn with_il1_bytes(mut self, bytes: u64) -> Self {
        let default = cfr_mem::CacheConfig::default_il1().organization.size_bytes;
        self.il1_bytes = (bytes != default).then_some(bytes);
        self
    }

    /// The same run with a page-size override (power of two, bytes); the
    /// default page size canonicalizes to "no override" (see
    /// [`RunKey::with_il1_bytes`]).
    #[must_use]
    pub fn with_page_bytes(mut self, bytes: u64) -> Self {
        let default = PageGeometry::default_4k().page_bytes();
        self.page_bytes = (bytes != default).then_some(bytes);
        self
    }

    /// The full simulator configuration this key denotes.
    ///
    /// # Panics
    ///
    /// Panics if a page-size override is not a power of two.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        let mut cfg = self.scale.config();
        cfg.itlb = self.itlb;
        if let Some(bytes) = self.il1_bytes {
            cfg.cpu.il1.organization.size_bytes = bytes;
        }
        if let Some(bytes) = self.page_bytes {
            cfg.cpu.geometry = PageGeometry::new(bytes).expect("page size must be a power of two");
        }
        cfg
    }

    /// Serializes every identity field (persistent run store codec). The
    /// record doubles as the store's content address: equal keys produce
    /// byte-equal records, and the store verifies a loaded record against
    /// the requested key token-for-token, so a hash collision or stale
    /// file degrades to a miss.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("runkey");
        w.token(self.profile);
        self.scale.to_record(w);
        self.strategy.to_record(w);
        self.mode.to_record(w);
        self.itlb.to_record(w);
        for over in [self.il1_bytes, self.page_bytes] {
            match over {
                None => w.token("default"),
                Some(bytes) => w.u64(bytes),
            }
        }
    }

    /// Parses a [`Self::to_record`] stream. `resolve` maps a profile name
    /// back to its registered `&'static str` (e.g. via
    /// [`Engine::profiles`]); an unknown profile is an error.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream or an unresolvable profile name.
    pub fn from_record(
        r: &mut RecordReader<'_>,
        resolve: impl Fn(&str) -> Option<&'static str>,
    ) -> Result<Self, RecordError> {
        r.expect("runkey")?;
        let name = r.token()?;
        let profile = resolve(name)
            .ok_or_else(|| RecordError::new(format!("unknown benchmark profile {name:?}")))?;
        let scale = ExperimentScale::from_record(r)?;
        let strategy = StrategyKind::from_record(r)?;
        let mode = AddressingMode::from_record(r)?;
        let itlb = ItlbChoice::from_record(r)?;
        let mut overrides = [None, None];
        for slot in &mut overrides {
            *slot = match r.token()? {
                "default" => None,
                bytes => Some(bytes.parse::<u64>().map_err(|_| {
                    RecordError::new(format!("malformed override token {bytes:?}"))
                })?),
            };
        }
        Ok(Self {
            profile,
            scale,
            strategy,
            mode,
            itlb,
            il1_bytes: overrides[0],
            page_bytes: overrides[1],
        })
    }
}

/// A deduplicating, memoizing, parallel executor of simulation runs.
///
/// One engine should be shared across every experiment of a session (the
/// `all_experiments` binary shares a single engine across all ten
/// tables/figures); its caches are what turn the evaluation's overlapping
/// run sets into single simulations.
#[derive(Debug)]
pub struct Engine {
    profiles: Vec<BenchmarkProfile>,
    programs: ProgramCache,
    /// Memoized compiled binaries (layout + instrumentation + marking):
    /// one compilation per [`LaidKey`] no matter how many (strategy,
    /// mode, iTLB) runs execute it.
    laid: Mutex<HashMap<LaidKey, Arc<LaidProgram>>>,
    /// Memoized pre-decoded traces for the compiled execution backend
    /// (`traces` store namespace; warm across processes like `programs`).
    traces: TraceCache,
    state: Mutex<EngineState>,
    /// Signalled whenever results land or in-flight claims are released,
    /// so concurrent `run_many` callers waiting on another batch's keys
    /// can re-check.
    resolved: Condvar,
    simulated: AtomicU64,
    /// Walk measurements served from the persistent store.
    walks_warm: AtomicU64,
    /// Walk measurements actually computed (store miss, or no store).
    walks_cold: AtomicU64,
    /// Memoized scenario reports, keyed by the config record (the same
    /// string that content-addresses the `scenarios` store namespace).
    scenarios: Mutex<HashMap<String, Arc<ScenarioReport>>>,
    /// Scenario reports served from the persistent store.
    scenarios_warm: AtomicU64,
    /// Scenario reports actually simulated (store miss, or no store).
    scenarios_cold: AtomicU64,
    /// Persistent cross-process result store, consulted before simulating
    /// and written after (see [`Store`]). `None` = in-memory only.
    store: Option<Store>,
}

/// Warm (store-served) and cold (computed) request counts for one store
/// namespace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NamespaceTraffic {
    /// Requests served from the persistent store.
    pub warm: u64,
    /// Requests that had to be computed in-process.
    pub cold: u64,
}

/// Per-namespace warm/cold accounting for every persisted layer (see
/// [`Engine::store_summary`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreSummary {
    /// Pipeline run reports (`runs` namespace).
    pub runs: NamespaceTraffic,
    /// Functional walk measurements (`walks`).
    pub walks: NamespaceTraffic,
    /// Generated programs (`programs`).
    pub programs: NamespaceTraffic,
    /// Pre-decoded execution traces (`traces`). Cold = compiled in this
    /// process; all zero under the interpreter backend.
    pub traces: NamespaceTraffic,
    /// Multiprogrammed scenario reports (`scenarios`); all zero unless
    /// [`Engine::run_scenarios`] was used.
    pub scenarios: NamespaceTraffic,
}

/// Result cache plus the set of keys some `run_many` call is currently
/// simulating. Claiming a key into `in_flight` under the same lock that
/// guards `results` is what makes concurrent batches simulate each
/// unique key exactly once.
#[derive(Debug, Default)]
struct EngineState {
    results: HashMap<RunKey, Arc<RunReport>>,
    in_flight: HashSet<RunKey>,
}

/// Releases a batch's in-flight claims even if a simulation panics, so
/// concurrent callers waiting on those keys wake up and re-claim them
/// instead of blocking forever.
struct ClaimGuard<'a> {
    engine: &'a Engine,
    keys: &'a [RunKey],
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.engine.state.lock().expect("engine state poisoned");
        for key in self.keys {
            state.in_flight.remove(key);
        }
        drop(state);
        self.engine.resolved.notify_all();
    }
}

impl Engine {
    /// An engine over the six canonical benchmark profiles.
    #[must_use]
    pub fn new() -> Self {
        Self::with_profiles(cfr_workload::profiles::all())
    }

    /// An engine over a custom profile set.
    ///
    /// # Panics
    ///
    /// Panics if two profiles share a name (names are the cache identity).
    #[must_use]
    pub fn with_profiles(profiles: Vec<BenchmarkProfile>) -> Self {
        let mut names = HashSet::new();
        for p in &profiles {
            assert!(names.insert(p.name), "duplicate profile name {:?}", p.name);
        }
        Self {
            profiles,
            programs: ProgramCache::new(),
            laid: Mutex::new(HashMap::new()),
            traces: TraceCache::new(),
            state: Mutex::new(EngineState::default()),
            resolved: Condvar::new(),
            simulated: AtomicU64::new(0),
            walks_warm: AtomicU64::new(0),
            walks_cold: AtomicU64::new(0),
            scenarios: Mutex::new(HashMap::new()),
            scenarios_warm: AtomicU64::new(0),
            scenarios_cold: AtomicU64::new(0),
            store: None,
        }
    }

    /// Attaches a persistent [`Store`]: every run key is looked up on
    /// disk before simulating, and every fresh simulation is written
    /// back, so a key simulates once *per machine* rather than once per
    /// process. The same store backs the other persisted layers — the
    /// program cache (`programs` namespace) and the functional walk path
    /// (`walks`) — so a fully-warm invocation generates and walks
    /// nothing either.
    #[must_use]
    pub fn with_store(mut self, store: Store) -> Self {
        self.programs.attach_store(store.backend());
        self.traces.attach_store(store.backend());
        self.store = Some(store);
        self
    }

    /// An engine backed by the environment's default store: the
    /// `cfr-store-serve` daemon at `$CFR_STORE_ADDR` (layered over the
    /// local shards) when that variable is set, else the machine-shared
    /// local store (`$CFR_STORE_DIR`, default `target/cfr-store`, GC
    /// policy from `CFR_STORE_MAX_BYTES`/`CFR_STORE_MAX_AGE`). If the
    /// store cannot be opened the engine still works, just without
    /// cross-process caching (a warning goes to stderr).
    #[must_use]
    pub fn with_default_store() -> Self {
        match Store::open_default() {
            Ok(store) => Self::new().with_store(store),
            Err(err) => {
                eprintln!("warning: persistent artifact store disabled: {err}");
                Self::new()
            }
        }
    }

    /// The attached persistent store, if any.
    #[must_use]
    pub fn store(&self) -> Option<&Store> {
        self.store.as_ref()
    }

    /// Runs served from the persistent store instead of being simulated
    /// (0 without a store). Together with [`Engine::store_cold_runs`]
    /// this accounts for every unique key this engine resolved.
    #[must_use]
    pub fn store_warm_runs(&self) -> u64 {
        self.store.as_ref().map_or(0, Store::hits)
    }

    /// Runs that had to be simulated — store misses, or every unique key
    /// when no store is attached. Always equals
    /// [`Engine::simulated_runs`].
    #[must_use]
    pub fn store_cold_runs(&self) -> u64 {
        self.simulated_runs()
    }

    /// The functional walk measurement of `profile`'s laid-out program:
    /// the non-pipeline path behind Table 4 and the calibration tooling.
    /// With a store attached the `walks` namespace is consulted first —
    /// a warm read returns without touching the generator *or* the
    /// walker — and a fresh measurement is written back.
    ///
    /// # Panics
    ///
    /// Panics if `profile` is not registered.
    #[must_use]
    pub fn walk_measurement(&self, profile: &str, scale: &ExperimentScale) -> WalkMeasurement {
        self.walk_measurements(&[profile], scale)
            .pop()
            .expect("one profile in, one measurement out")
    }

    /// [`Engine::walk_measurement`] for a whole profile set in **one**
    /// store exchange each way: a single batched probe of the `walks`
    /// namespace up front, a single batched write-back of whatever had
    /// to be measured cold. Per-profile semantics and warm/cold
    /// accounting are identical to calling the singular form in a loop.
    ///
    /// # Panics
    ///
    /// Panics if any profile is not registered.
    #[must_use]
    pub fn walk_measurements(
        &self,
        profiles: &[&str],
        scale: &ExperimentScale,
    ) -> Vec<WalkMeasurement> {
        let geom = PageGeometry::default_4k();
        let resolved: Vec<&BenchmarkProfile> = profiles
            .iter()
            .map(|name| {
                self.profiles
                    .iter()
                    .find(|p| p.name == *name)
                    .unwrap_or_else(|| panic!("unknown benchmark profile {name:?}"))
            })
            .collect();
        let keys: Vec<String> = resolved
            .iter()
            .map(|p| walk_store_key(p, geom, false, scale.max_commits, scale.seed))
            .collect();
        let artifacts = self.store.as_ref().map(Store::backend);
        let mut warm: Vec<Option<WalkMeasurement>> = match &artifacts {
            Some(store) => {
                let items: Vec<(String, String)> = keys
                    .iter()
                    .map(|key| (NS_WALKS.to_string(), key.clone()))
                    .collect();
                store
                    .load_many(&items)
                    .into_iter()
                    .map(|value| {
                        value.and_then(|text| {
                            let mut r = RecordReader::new(&text);
                            let m = WalkMeasurement::from_record(&mut r).ok()?;
                            r.finish().ok()?;
                            Some(m)
                        })
                    })
                    .collect()
            }
            None => profiles.iter().map(|_| None).collect(),
        };
        // A backend must answer slot-for-slot; pad defensively so a
        // short reply degrades to cold measurements, not lost outputs.
        warm.resize_with(profiles.len(), || None);
        let mut fresh: Vec<(String, String, String)> = Vec::new();
        let out: Vec<WalkMeasurement> = resolved
            .iter()
            .zip(&keys)
            .zip(warm)
            .map(|((p, key), warm)| {
                if let Some(m) = warm {
                    self.walks_warm.fetch_add(1, Ordering::Relaxed);
                    return m;
                }
                let program = self.programs.get(p);
                let laid = LaidProgram::lay_out(&program, geom, false);
                let m = measure_walk(&laid, scale.max_commits, scale.seed);
                self.walks_cold.fetch_add(1, Ordering::Relaxed);
                let mut w = RecordWriter::new();
                m.to_record(&mut w);
                fresh.push((NS_WALKS.to_string(), key.clone(), w.finish()));
                m
            })
            .collect();
        if let Some(store) = &artifacts {
            if !fresh.is_empty() {
                store.save_many(&fresh);
            }
        }
        out
    }

    /// Warm/cold traffic per persisted namespace (runs, walks,
    /// programs). "Warm" = served from the store; "cold" = computed this
    /// process (every request, when no store is attached).
    #[must_use]
    pub fn store_summary(&self) -> StoreSummary {
        StoreSummary {
            runs: NamespaceTraffic {
                warm: self.store_warm_runs(),
                cold: self.store_cold_runs(),
            },
            walks: NamespaceTraffic {
                warm: self.walks_warm.load(Ordering::Relaxed),
                cold: self.walks_cold.load(Ordering::Relaxed),
            },
            programs: NamespaceTraffic {
                warm: self.programs.loaded(),
                cold: self.programs.generated(),
            },
            traces: NamespaceTraffic {
                warm: self.traces.loaded(),
                cold: self.traces.compiled(),
            },
            scenarios: NamespaceTraffic {
                warm: self.scenarios_warm.load(Ordering::Relaxed),
                cold: self.scenarios_cold.load(Ordering::Relaxed),
            },
        }
    }

    /// The one-line store accounting every binary prints on stderr:
    /// per-namespace warm/cold traffic and the store identity (directory
    /// path, daemon address, or both when layered), or the in-process
    /// counts when no store is attached.
    #[must_use]
    pub fn summary_line(&self) -> String {
        let s = self.store_summary();
        // The scenarios segment only appears when scenarios ran, so the
        // line stays byte-identical for every pre-existing binary.
        let scen = if s.scenarios.warm + s.scenarios.cold > 0 {
            format!(
                "; scenarios {} warm / {} cold",
                s.scenarios.warm, s.scenarios.cold
            )
        } else {
            String::new()
        };
        match &self.store {
            Some(store) => format!(
                "store: runs {} warm / {} cold; walks {} warm / {} cold; \
                 programs {} warm / {} cold; traces {} warm / {} cold{} ({})",
                s.runs.warm,
                s.runs.cold,
                s.walks.warm,
                s.walks.cold,
                s.programs.warm,
                s.programs.cold,
                s.traces.warm,
                s.traces.cold,
                scen,
                store.describe(),
            ),
            None => format!(
                "store: disabled ({} runs simulated, {} walks measured, \
                 {} programs generated, {} traces compiled in-process{})",
                s.runs.cold,
                s.walks.cold,
                s.programs.cold,
                s.traces.cold,
                if s.scenarios.cold > 0 {
                    format!(", {} scenarios simulated", s.scenarios.cold)
                } else {
                    String::new()
                },
            ),
        }
    }

    /// The registered profiles, in registration (paper table) order.
    #[must_use]
    pub fn profiles(&self) -> &[BenchmarkProfile] {
        &self.profiles
    }

    /// The shared program memo, for callers that drive
    /// [`Simulator::run_profile`] with configurations outside the
    /// [`RunKey`] space (e.g. the iL1 and page-size sweep binaries).
    #[must_use]
    pub fn program_cache(&self) -> &ProgramCache {
        &self.programs
    }

    /// The compiled binary a run key executes, memoized per
    /// [`LaidKey`]: layout (and boundary instrumentation / SoLA marking)
    /// runs once per compilation class, not once per run.
    fn compiled(&self, key: &RunKey) -> Arc<LaidProgram> {
        let geom = key.config().cpu.geometry;
        let laid_key: LaidKey = (
            key.profile,
            geom.page_bytes(),
            compiler::wants_instrumented(key.strategy),
            key.strategy == StrategyKind::SoLA,
        );
        if let Some(hit) = self
            .laid
            .lock()
            .expect("laid cache poisoned")
            .get(&laid_key)
        {
            return Arc::clone(hit);
        }
        // Compile outside the lock (layout is the expensive part); a
        // concurrent compilation of the same class produces an identical
        // binary, so last-insert-wins is correct.
        let program = self.program(key.profile);
        let laid = Arc::new(compiler::compile_for(&program, geom, key.strategy));
        let mut cache = self.laid.lock().expect("laid cache poisoned");
        Arc::clone(cache.entry(laid_key).or_insert(laid))
    }

    /// One batched store probe covering every artifact the cold keys'
    /// compilation classes will need — program records, and (under the
    /// compiled backend) pre-decoded traces — with the answers primed
    /// into the caches. The serial compile loop then resolves entirely
    /// from primed answers: zero per-key store round trips, and nothing
    /// at all is probed when the plan came back fully warm.
    fn prefetch_artifacts(&self, cold: &[RunKey], backend: ExecBackend) {
        let Some(store) = &self.store else { return };
        if cold.is_empty() {
            return;
        }
        let mut seen = HashSet::new();
        let mut items: Vec<(String, String)> = Vec::new();
        for key in cold {
            let profile = self
                .profiles
                .iter()
                .find(|p| p.name == key.profile)
                .unwrap_or_else(|| panic!("unknown benchmark profile {:?}", key.profile));
            let pkey = program_store_key(profile);
            if seen.insert((NS_PROGRAMS, pkey.clone())) {
                items.push((NS_PROGRAMS.to_string(), pkey));
            }
            if backend == ExecBackend::Compiled {
                let tkey = trace_store_key(
                    profile,
                    key.config().cpu.geometry,
                    compiler::wants_instrumented(key.strategy),
                    key.strategy == StrategyKind::SoLA,
                );
                if seen.insert((NS_TRACES, tkey.clone())) {
                    items.push((NS_TRACES.to_string(), tkey));
                }
            }
        }
        let mut values = store.backend().load_many(&items);
        values.resize_with(items.len(), || None);
        for ((ns, key), value) in items.into_iter().zip(values) {
            if ns == NS_PROGRAMS {
                self.programs.prime(key, value);
            } else {
                self.traces.prime(key, value);
            }
        }
    }

    /// The pre-decoded trace for a run key's compiled binary, memoized
    /// per compilation class (and warm across processes through the
    /// store's `traces` namespace).
    fn trace_for(&self, key: &RunKey, laid: &LaidProgram) -> Arc<CompiledTrace> {
        let profile = self
            .profiles
            .iter()
            .find(|p| p.name == key.profile)
            .unwrap_or_else(|| panic!("unknown benchmark profile {:?}", key.profile));
        self.traces
            .get(profile, laid, key.strategy == StrategyKind::SoLA)
    }

    /// The generated program for a registered profile, memoized.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a registered profile.
    #[must_use]
    pub fn program(&self, name: &str) -> Arc<Program> {
        let profile = self
            .profiles
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark profile {name:?}"));
        self.programs.get(profile)
    }

    /// How many simulations have actually executed. Without a store,
    /// deduplication makes this equal to the number of *unique* keys ever
    /// requested; with a store attached, warm keys are served from disk
    /// and do not count here (see [`Engine::store_warm_runs`]).
    #[must_use]
    pub fn simulated_runs(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Executes one run (cached like any other).
    ///
    /// # Panics
    ///
    /// Panics if the key names an unregistered profile.
    #[must_use]
    pub fn run(&self, key: RunKey) -> Arc<RunReport> {
        self.run_many(&[key])
            .pop()
            .expect("one key in, one report out")
    }

    /// Executes a batch of runs, returning reports in request order.
    ///
    /// Keys already simulated (by any earlier call) are served from the
    /// result cache; the remaining *unique* keys run in parallel. Results
    /// are bit-identical to serial [`Simulator::run_program`] calls with
    /// the same key, in any batch composition or order.
    ///
    /// Safe to call from several threads at once: overlapping keys are
    /// claimed atomically, so each unique key still simulates exactly
    /// once — later callers block until the claiming batch publishes the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if a key names an unregistered profile, or if a previous
    /// batch panicked mid-update (poisoned cache).
    #[must_use]
    pub fn run_many(&self, keys: &[RunKey]) -> Vec<Arc<RunReport>> {
        loop {
            // Atomically claim every requested key that is neither done
            // nor already being simulated by a concurrent batch.
            let claimed: Vec<RunKey> = {
                let mut state = self.state.lock().expect("engine state poisoned");
                let mut claimed = Vec::new();
                for key in keys {
                    if !state.results.contains_key(key) && state.in_flight.insert(*key) {
                        claimed.push(*key);
                    }
                }
                claimed
            };
            if !claimed.is_empty() {
                let guard = ClaimGuard {
                    engine: self,
                    keys: &claimed,
                };
                // Consult the persistent store first, in ONE batched
                // probe for the whole claimed set (a networked backend
                // collapses it into a single pipelined MGET exchange),
                // so fully-warm batches touch neither the generator nor
                // a worker pool — and pay one round trip, not one per
                // key.
                let warm: Vec<Option<RunReport>> = match &self.store {
                    Some(store) => store.load_many(&claimed),
                    None => claimed.iter().map(|_| None).collect(),
                };
                let mut resolved: Vec<(RunKey, Option<RunReport>)> =
                    claimed.iter().copied().zip(warm).collect();
                // Prefetch the artifacts the cold keys' compilation
                // classes will need — program records and, under the
                // compiled backend, pre-decoded traces — in one more
                // batched probe, primed into the caches so the compile
                // loop below issues no per-key store round trips.
                let backend = ExecBackend::from_env();
                let cold: Vec<RunKey> = resolved
                    .iter()
                    .filter(|(_, warm)| warm.is_none())
                    .map(|(k, _)| *k)
                    .collect();
                self.prefetch_artifacts(&cold, backend);
                // Resolve compiled binaries — and, under the compiled
                // backend, their pre-decoded traces — for the cold keys
                // up front (serially, memoized) so parallel workers share
                // one immutable Arc per compilation class.
                let jobs: Vec<(RunKey, Arc<LaidProgram>, Option<Arc<CompiledTrace>>)> = cold
                    .iter()
                    .map(|k| {
                        let laid = self.compiled(k);
                        let trace =
                            (backend == ExecBackend::Compiled).then(|| self.trace_for(k, &laid));
                        (*k, laid, trace)
                    })
                    .collect();
                // Simulate the cold keys in parallel and write each result
                // back (a single append per record; concurrent binaries
                // sharing the store resync past any torn bytes and treat
                // them as misses, never as torn reports). With a
                // coordinating backend each key is first *claimed*, so N
                // processes racing the same cold plan simulate each key
                // once globally: losers of the race get the winner's
                // published report back warm instead of re-simulating.
                let fresh: Vec<RunReport> = jobs
                    .par_iter()
                    .map(|(key, laid, trace)| {
                        if let Some(store) = &self.store {
                            if let RunClaim::Warm(report) = store.claim_run(key) {
                                return *report;
                            }
                        }
                        let report = match trace {
                            Some(trace) => {
                                Simulator::run_traced(trace, &key.config(), key.strategy, key.mode)
                            }
                            None => {
                                Simulator::run_interp(laid, &key.config(), key.strategy, key.mode)
                            }
                        };
                        self.simulated.fetch_add(1, Ordering::Relaxed);
                        if let Some(store) = &self.store {
                            store.save(key, &report);
                        }
                        report
                    })
                    .collect();
                let mut fresh = fresh.into_iter();
                {
                    let mut state = self.state.lock().expect("engine state poisoned");
                    for (key, warm) in resolved.drain(..) {
                        let report =
                            warm.unwrap_or_else(|| fresh.next().expect("one report per cold key"));
                        state.results.insert(key, Arc::new(report));
                    }
                }
                drop(guard); // release claims and wake waiters
            }
            // Collect — waiting out keys a concurrent batch is still
            // simulating. If one of those batches panicked, its claims
            // were released without results; loop back and claim them.
            let mut state = self.state.lock().expect("engine state poisoned");
            loop {
                if keys.iter().all(|k| state.results.contains_key(k)) {
                    return keys.iter().map(|k| Arc::clone(&state.results[k])).collect();
                }
                let orphaned = keys
                    .iter()
                    .any(|k| !state.results.contains_key(k) && !state.in_flight.contains(k));
                if orphaned {
                    break; // re-claim in the outer loop
                }
                state = self.resolved.wait(state).expect("engine state poisoned");
            }
        }
    }

    /// Executes one multiprogrammed scenario (cached like any other).
    ///
    /// # Panics
    ///
    /// Panics if the config names an unregistered profile (see
    /// [`Engine::run_scenarios`]).
    #[must_use]
    pub fn run_scenario(&self, cfg: &ScenarioConfig) -> Arc<ScenarioReport> {
        self.run_scenarios(std::slice::from_ref(cfg))
            .pop()
            .expect("one config in, one report out")
    }

    /// Executes a batch of scenarios, returning reports in request order.
    ///
    /// A scenario's identity is its full config record: equal configs
    /// deduplicate in-process (within and across batches) and across
    /// processes through the `scenarios` store namespace, exactly like
    /// plain runs — one batched store probe up front, one batched
    /// write-back of whatever had to be simulated cold, and warm replays
    /// are byte-identical. Per-process binaries and pre-decoded traces
    /// resolve through the same memoized compilation caches (and store
    /// namespaces) the single-program path uses.
    ///
    /// # Panics
    ///
    /// Panics if a config names an unregistered profile, asks for zero
    /// processes, or sets a zero quantum or ASID count.
    #[must_use]
    pub fn run_scenarios(&self, cfgs: &[ScenarioConfig]) -> Vec<Arc<ScenarioReport>> {
        let keys: Vec<String> = cfgs.iter().map(ScenarioConfig::store_key).collect();
        // Unique keys not already memoized (first requester wins; a
        // concurrent batch racing the same key recomputes the identical
        // report, so last-insert-wins stays correct).
        let unique: Vec<usize> = {
            let memo = self.scenarios.lock().expect("scenario memo poisoned");
            let mut seen = HashSet::new();
            keys.iter()
                .enumerate()
                .filter(|(_, k)| !memo.contains_key(*k) && seen.insert((*k).clone()))
                .map(|(i, _)| i)
                .collect()
        };
        if !unique.is_empty() {
            let artifacts = self.store.as_ref().map(Store::backend);
            let mut warm: Vec<Option<ScenarioReport>> = match &artifacts {
                Some(store) => {
                    let items: Vec<(String, String)> = unique
                        .iter()
                        .map(|&i| (NS_SCENARIOS.to_string(), keys[i].clone()))
                        .collect();
                    let mut values = store.load_many(&items);
                    values.resize_with(items.len(), || None);
                    values
                        .into_iter()
                        .map(|value| {
                            value.and_then(|text| {
                                let mut r = RecordReader::new(&text);
                                let rep = ScenarioReport::from_record(&mut r).ok()?;
                                r.finish().ok()?;
                                Some(rep)
                            })
                        })
                        .collect()
                }
                None => unique.iter().map(|_| None).collect(),
            };
            let backend = ExecBackend::from_env();
            let mut ready: Vec<(usize, ScenarioReport)> = Vec::new();
            let mut cold: Vec<(usize, Vec<ScenarioBinary>)> = Vec::new();
            for (&i, warm) in unique.iter().zip(warm.drain(..)) {
                if let Some(rep) = warm {
                    self.scenarios_warm.fetch_add(1, Ordering::Relaxed);
                    ready.push((i, rep));
                    continue;
                }
                // Resolve this scenario's binaries serially (memoized per
                // compilation class) so parallel workers share one
                // immutable Arc per binary, exactly as `run_many` does.
                let bins: Vec<ScenarioBinary> = cfgs[i]
                    .procs
                    .iter()
                    .map(|p| {
                        let mut key =
                            RunKey::new(p.profile, &cfgs[i].scale, cfgs[i].strategy, cfgs[i].mode);
                        if let Some(bytes) = p.page_bytes {
                            key = key.with_page_bytes(bytes);
                        }
                        let laid = self.compiled(&key);
                        let trace =
                            (backend == ExecBackend::Compiled).then(|| self.trace_for(&key, &laid));
                        ScenarioBinary { laid, trace }
                    })
                    .collect();
                cold.push((i, bins));
            }
            let fresh: Vec<(usize, ScenarioReport)> = cold
                .par_iter()
                .map(|(i, bins)| {
                    let rep = scenario::simulate(&cfgs[*i], bins, backend);
                    self.scenarios_cold.fetch_add(1, Ordering::Relaxed);
                    (*i, rep)
                })
                .collect();
            if let Some(store) = &artifacts {
                let writes: Vec<(String, String, String)> = fresh
                    .iter()
                    .map(|(i, rep)| {
                        let mut w = RecordWriter::new();
                        rep.to_record(&mut w);
                        (NS_SCENARIOS.to_string(), keys[*i].clone(), w.finish())
                    })
                    .collect();
                if !writes.is_empty() {
                    store.save_many(&writes);
                }
            }
            let mut memo = self.scenarios.lock().expect("scenario memo poisoned");
            for (i, rep) in ready.into_iter().chain(fresh) {
                memo.insert(keys[i].clone(), Arc::new(rep));
            }
        }
        let memo = self.scenarios.lock().expect("scenario memo poisoned");
        keys.iter()
            .map(|k| Arc::clone(memo.get(k).expect("every requested scenario resolved")))
            .collect()
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            max_commits: 10_000,
            seed: 0x5EED,
        }
    }

    #[test]
    fn dedup_simulates_unique_keys_once() {
        let engine = Engine::new();
        let scale = tiny();
        let a = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
        let b = RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt);
        let reports = engine.run_many(&[a, b, a, a, b]);
        assert_eq!(reports.len(), 5);
        assert_eq!(engine.simulated_runs(), 2, "two unique keys");
        assert!(Arc::ptr_eq(&reports[0], &reports[2]));
        // A later batch re-requesting a key hits the cache.
        let again = engine.run(a);
        assert_eq!(engine.simulated_runs(), 2);
        assert!(Arc::ptr_eq(&again, &reports[0]));
        // Each benchmark's program was generated once.
        assert_eq!(engine.program_cache().generated(), 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let engine = Engine::new();
        let scale = tiny();
        let keys: Vec<RunKey> = [StrategyKind::Base, StrategyKind::Ia, StrategyKind::HoA]
            .into_iter()
            .map(|k| RunKey::new("254.gap", &scale, k, AddressingMode::ViPt))
            .collect();
        let parallel = engine.run_many(&keys);
        for (key, report) in keys.iter().zip(&parallel) {
            let program = engine.program(key.profile);
            let serial = Simulator::run_program(&program, &key.config(), key.strategy, key.mode);
            assert_eq!(**report, serial, "{key:?}");
        }
    }

    #[test]
    fn itlb_override_is_part_of_the_key() {
        let engine = Engine::new();
        let scale = tiny();
        let base = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
        let one_entry = base.with_itlb(ItlbChoice::Mono(
            cfr_types::TlbOrganization::fully_associative(1),
        ));
        assert_ne!(base, one_entry);
        // The default-iTLB override is the *same* key as the plain one.
        assert_eq!(base, base.with_itlb(ItlbChoice::default_mono()));
        let _ = engine.run_many(&[base, one_entry, base.with_itlb(ItlbChoice::default_mono())]);
        assert_eq!(engine.simulated_runs(), 2);
    }

    #[test]
    fn store_makes_runs_warm_across_engines() {
        let dir =
            std::env::temp_dir().join(format!("cfr-store-engine-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scale = tiny();
        let keys = [
            RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt),
            RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt),
        ];

        let cold = Engine::new().with_store(Store::open(&dir).unwrap());
        let cold_reports = cold.run_many(&keys);
        assert_eq!(cold.simulated_runs(), 2);
        assert_eq!(cold.store_warm_runs(), 0);
        assert_eq!(cold.store_cold_runs(), 2);

        // A fresh engine (= a fresh process, as far as caching goes) over
        // the same directory serves everything from disk, bit-identically.
        let warm = Engine::new().with_store(Store::open(&dir).unwrap());
        let warm_reports = warm.run_many(&keys);
        assert_eq!(warm.simulated_runs(), 0, "all served from the store");
        assert_eq!(warm.store_warm_runs(), 2);
        for (a, b) in cold_reports.iter().zip(&warm_reports) {
            assert_eq!(**a, **b);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_overrides_apply() {
        let scale = tiny();
        let base = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
        assert_eq!(base.config().cpu.il1.organization.size_bytes, 8 * 1024);
        assert_eq!(base.config().cpu.geometry.page_bytes(), 4096);
        let swept = base.with_il1_bytes(2048).with_page_bytes(16384);
        assert_ne!(base, swept, "overrides are part of the identity");
        assert_eq!(swept.config().cpu.il1.organization.size_bytes, 2048);
        assert_eq!(swept.config().cpu.geometry.page_bytes(), 16384);
        // Default-valued overrides canonicalize to the plain key, so a
        // sweep's default column deduplicates against non-sweep runs.
        assert_eq!(base.with_il1_bytes(8 * 1024).with_page_bytes(4096), base);
    }

    #[test]
    fn scenarios_dedup_and_persist() {
        use crate::scenario::{ScenarioProc, TlbMode};
        let dir =
            std::env::temp_dir().join(format!("cfr-store-scenario-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = ScenarioConfig::new(
            vec![ScenarioProc::new("177.mesa"), ScenarioProc::new("254.gap")],
            tiny(),
            StrategyKind::Ia,
            AddressingMode::ViPt,
        );
        cfg.quantum = 4_000;
        cfg.tlb_mode = TlbMode::Flush;

        let cold = Engine::new().with_store(Store::open(&dir).unwrap());
        let a = cold.run_scenarios(&[cfg.clone(), cfg.clone()]);
        assert!(
            Arc::ptr_eq(&a[0], &a[1]),
            "duplicate configs share one report"
        );
        let s = cold.store_summary().scenarios;
        assert_eq!((s.warm, s.cold), (0, 1), "one unique scenario simulated");
        assert!(a[0].context_switches > 0);

        // A fresh engine over the same directory replays warm,
        // byte-identically (the differential suite pins this end to end).
        let warm = Engine::new().with_store(Store::open(&dir).unwrap());
        let b = warm.run_scenario(&cfg);
        let s = warm.store_summary().scenarios;
        assert_eq!((s.warm, s.cold), (1, 0), "served from the store");
        assert_eq!(*b, *a[0], "warm replay is field-identical");
        assert!(
            warm.summary_line().contains("scenarios 1 warm / 0 cold"),
            "summary line grows a scenarios segment: {}",
            warm.summary_line()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_line_has_no_scenario_segment_without_scenarios() {
        let engine = Engine::new();
        let _ = engine.run(RunKey::new(
            "177.mesa",
            &tiny(),
            StrategyKind::Base,
            AddressingMode::ViPt,
        ));
        assert!(
            !engine.summary_line().contains("scenario"),
            "pre-existing binaries' store lines must stay byte-identical"
        );
    }

    #[test]
    #[should_panic(expected = "unknown benchmark profile")]
    fn unknown_profile_panics() {
        let engine = Engine::new();
        let _ = engine.run(RunKey::new(
            "000.nope",
            &tiny(),
            StrategyKind::Base,
            AddressingMode::ViPt,
        ));
    }
}
