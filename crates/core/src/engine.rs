//! The parallel experiment engine.
//!
//! Every table and figure in the paper's evaluation is a set of
//! *(benchmark, strategy, addressing mode, iTLB)* simulation runs at some
//! [`ExperimentScale`] — and the sets overlap heavily (`table2`,
//! `table5`, `fig4`, and `table8` all need the base VI-PT run of every
//! benchmark, for example). Run serially and independently, the full
//! evaluation pays for the same simulations many times over.
//!
//! The [`Engine`] replaces that with a declarative plan:
//!
//! 1. experiments describe the runs they need as [`RunKey`]s,
//! 2. the engine **deduplicates** keys against its result cache, so every
//!    unique key is simulated exactly once per engine — across calls and
//!    across experiments,
//! 3. missing runs execute **in parallel** (rayon), each borrowing its
//!    benchmark's program from a shared, memoized [`ProgramCache`], and
//! 4. results come back as cheap [`Arc`] handles in request order.
//!
//! Parallel execution is **deterministic**: a run's outcome depends only
//! on its key (the simulator is seeded, single-threaded per run, and
//! shares nothing mutable), and the engine reassembles results in input
//! order, so the reports are bit-identical to serial
//! [`Simulator::run_program`] calls regardless of worker scheduling.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cfr_types::AddressingMode;
use cfr_workload::{BenchmarkProfile, Program, ProgramCache};
use rayon::prelude::*;

use crate::experiment::ExperimentScale;
use crate::simulator::{ItlbChoice, RunReport, SimConfig, Simulator};
use crate::strategy::StrategyKind;

/// The identity of one simulation run. Two runs with equal keys produce
/// bit-identical [`RunReport`]s, which is what makes engine-level
/// deduplication sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RunKey {
    /// Benchmark profile name (e.g. `"177.mesa"`), resolved against the
    /// engine's registered profiles.
    pub profile: &'static str,
    /// Run length and walker seed.
    pub scale: ExperimentScale,
    /// CFR strategy.
    pub strategy: StrategyKind,
    /// iL1 addressing mode.
    pub mode: AddressingMode,
    /// iTLB structure.
    pub itlb: ItlbChoice,
}

impl RunKey {
    /// A key for the default iTLB (the paper's 32-entry fully-associative
    /// monolith).
    #[must_use]
    pub fn new(
        profile: &'static str,
        scale: &ExperimentScale,
        strategy: StrategyKind,
        mode: AddressingMode,
    ) -> Self {
        Self {
            profile,
            scale: *scale,
            strategy,
            mode,
            itlb: ItlbChoice::default_mono(),
        }
    }

    /// The same run with a different iTLB structure.
    #[must_use]
    pub fn with_itlb(mut self, itlb: ItlbChoice) -> Self {
        self.itlb = itlb;
        self
    }

    /// The full simulator configuration this key denotes.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        let mut cfg = self.scale.config();
        cfg.itlb = self.itlb;
        cfg
    }
}

/// A deduplicating, memoizing, parallel executor of simulation runs.
///
/// One engine should be shared across every experiment of a session (the
/// `all_experiments` binary shares a single engine across all ten
/// tables/figures); its caches are what turn the evaluation's overlapping
/// run sets into single simulations.
#[derive(Debug)]
pub struct Engine {
    profiles: Vec<BenchmarkProfile>,
    programs: ProgramCache,
    state: Mutex<EngineState>,
    /// Signalled whenever results land or in-flight claims are released,
    /// so concurrent `run_many` callers waiting on another batch's keys
    /// can re-check.
    resolved: Condvar,
    simulated: AtomicU64,
}

/// Result cache plus the set of keys some `run_many` call is currently
/// simulating. Claiming a key into `in_flight` under the same lock that
/// guards `results` is what makes concurrent batches simulate each
/// unique key exactly once.
#[derive(Debug, Default)]
struct EngineState {
    results: HashMap<RunKey, Arc<RunReport>>,
    in_flight: HashSet<RunKey>,
}

/// Releases a batch's in-flight claims even if a simulation panics, so
/// concurrent callers waiting on those keys wake up and re-claim them
/// instead of blocking forever.
struct ClaimGuard<'a> {
    engine: &'a Engine,
    keys: &'a [RunKey],
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.engine.state.lock().expect("engine state poisoned");
        for key in self.keys {
            state.in_flight.remove(key);
        }
        drop(state);
        self.engine.resolved.notify_all();
    }
}

impl Engine {
    /// An engine over the six canonical benchmark profiles.
    #[must_use]
    pub fn new() -> Self {
        Self::with_profiles(cfr_workload::profiles::all())
    }

    /// An engine over a custom profile set.
    ///
    /// # Panics
    ///
    /// Panics if two profiles share a name (names are the cache identity).
    #[must_use]
    pub fn with_profiles(profiles: Vec<BenchmarkProfile>) -> Self {
        let mut names = HashSet::new();
        for p in &profiles {
            assert!(names.insert(p.name), "duplicate profile name {:?}", p.name);
        }
        Self {
            profiles,
            programs: ProgramCache::new(),
            state: Mutex::new(EngineState::default()),
            resolved: Condvar::new(),
            simulated: AtomicU64::new(0),
        }
    }

    /// The registered profiles, in registration (paper table) order.
    #[must_use]
    pub fn profiles(&self) -> &[BenchmarkProfile] {
        &self.profiles
    }

    /// The shared program memo, for callers that drive
    /// [`Simulator::run_profile`] with configurations outside the
    /// [`RunKey`] space (e.g. the iL1 and page-size sweep binaries).
    #[must_use]
    pub fn program_cache(&self) -> &ProgramCache {
        &self.programs
    }

    /// The generated program for a registered profile, memoized.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a registered profile.
    #[must_use]
    pub fn program(&self, name: &str) -> Arc<Program> {
        let profile = self
            .profiles
            .iter()
            .find(|p| p.name == name)
            .unwrap_or_else(|| panic!("unknown benchmark profile {name:?}"));
        self.programs.get(profile)
    }

    /// How many simulations have actually executed — after deduplication,
    /// this equals the number of *unique* keys ever requested.
    #[must_use]
    pub fn simulated_runs(&self) -> u64 {
        self.simulated.load(Ordering::Relaxed)
    }

    /// Executes one run (cached like any other).
    ///
    /// # Panics
    ///
    /// Panics if the key names an unregistered profile.
    #[must_use]
    pub fn run(&self, key: RunKey) -> Arc<RunReport> {
        self.run_many(&[key])
            .pop()
            .expect("one key in, one report out")
    }

    /// Executes a batch of runs, returning reports in request order.
    ///
    /// Keys already simulated (by any earlier call) are served from the
    /// result cache; the remaining *unique* keys run in parallel. Results
    /// are bit-identical to serial [`Simulator::run_program`] calls with
    /// the same key, in any batch composition or order.
    ///
    /// Safe to call from several threads at once: overlapping keys are
    /// claimed atomically, so each unique key still simulates exactly
    /// once — later callers block until the claiming batch publishes the
    /// result.
    ///
    /// # Panics
    ///
    /// Panics if a key names an unregistered profile, or if a previous
    /// batch panicked mid-update (poisoned cache).
    #[must_use]
    pub fn run_many(&self, keys: &[RunKey]) -> Vec<Arc<RunReport>> {
        loop {
            // Atomically claim every requested key that is neither done
            // nor already being simulated by a concurrent batch.
            let claimed: Vec<RunKey> = {
                let mut state = self.state.lock().expect("engine state poisoned");
                let mut claimed = Vec::new();
                for key in keys {
                    if !state.results.contains_key(key) && state.in_flight.insert(*key) {
                        claimed.push(*key);
                    }
                }
                claimed
            };
            if !claimed.is_empty() {
                let guard = ClaimGuard {
                    engine: self,
                    keys: &claimed,
                };
                // Resolve programs up front (serially, memoized) so
                // parallel workers share one immutable Arc per benchmark.
                let jobs: Vec<(RunKey, Arc<Program>)> = claimed
                    .iter()
                    .map(|k| (*k, self.program(k.profile)))
                    .collect();
                let reports: Vec<RunReport> = jobs
                    .par_iter()
                    .map(|(key, program)| {
                        Simulator::run_program(program, &key.config(), key.strategy, key.mode)
                    })
                    .collect();
                self.simulated
                    .fetch_add(reports.len() as u64, Ordering::Relaxed);
                {
                    let mut state = self.state.lock().expect("engine state poisoned");
                    for (key, report) in claimed.iter().zip(reports) {
                        state.results.insert(*key, Arc::new(report));
                    }
                }
                drop(guard); // release claims and wake waiters
            }
            // Collect — waiting out keys a concurrent batch is still
            // simulating. If one of those batches panicked, its claims
            // were released without results; loop back and claim them.
            let mut state = self.state.lock().expect("engine state poisoned");
            loop {
                if keys.iter().all(|k| state.results.contains_key(k)) {
                    return keys.iter().map(|k| Arc::clone(&state.results[k])).collect();
                }
                let orphaned = keys
                    .iter()
                    .any(|k| !state.results.contains_key(k) && !state.in_flight.contains(k));
                if orphaned {
                    break; // re-claim in the outer loop
                }
                state = self.resolved.wait(state).expect("engine state poisoned");
            }
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExperimentScale {
        ExperimentScale {
            max_commits: 10_000,
            seed: 0x5EED,
        }
    }

    #[test]
    fn dedup_simulates_unique_keys_once() {
        let engine = Engine::new();
        let scale = tiny();
        let a = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
        let b = RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt);
        let reports = engine.run_many(&[a, b, a, a, b]);
        assert_eq!(reports.len(), 5);
        assert_eq!(engine.simulated_runs(), 2, "two unique keys");
        assert!(Arc::ptr_eq(&reports[0], &reports[2]));
        // A later batch re-requesting a key hits the cache.
        let again = engine.run(a);
        assert_eq!(engine.simulated_runs(), 2);
        assert!(Arc::ptr_eq(&again, &reports[0]));
        // Each benchmark's program was generated once.
        assert_eq!(engine.program_cache().generated(), 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let engine = Engine::new();
        let scale = tiny();
        let keys: Vec<RunKey> = [StrategyKind::Base, StrategyKind::Ia, StrategyKind::HoA]
            .into_iter()
            .map(|k| RunKey::new("254.gap", &scale, k, AddressingMode::ViPt))
            .collect();
        let parallel = engine.run_many(&keys);
        for (key, report) in keys.iter().zip(&parallel) {
            let program = engine.program(key.profile);
            let serial = Simulator::run_program(&program, &key.config(), key.strategy, key.mode);
            assert_eq!(**report, serial, "{key:?}");
        }
    }

    #[test]
    fn itlb_override_is_part_of_the_key() {
        let engine = Engine::new();
        let scale = tiny();
        let base = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
        let one_entry = base.with_itlb(ItlbChoice::Mono(
            cfr_types::TlbOrganization::fully_associative(1),
        ));
        assert_ne!(base, one_entry);
        // The default-iTLB override is the *same* key as the plain one.
        assert_eq!(base, base.with_itlb(ItlbChoice::default_mono()));
        let _ = engine.run_many(&[base, one_entry, base.with_itlb(ItlbChoice::default_mono())]);
        assert_eq!(engine.simulated_runs(), 2);
    }

    #[test]
    #[should_panic(expected = "unknown benchmark profile")]
    fn unknown_profile_panics() {
        let engine = Engine::new();
        let _ = engine.run(RunKey::new(
            "000.nope",
            &tiny(),
            StrategyKind::Base,
            AddressingMode::ViPt,
        ));
    }
}
