//! The compiler support the software strategies need (paper §3.3.2–§3.3.4).
//!
//! Two passes over a laid-out program:
//!
//! 1. **Boundary-branch insertion** — performed during layout
//!    (`LaidProgram::lay_out(_, _, instrumented = true)`); this module
//!    decides which strategies need it.
//! 2. **In-page branch marking** ([`mark_in_page_branches`]) — the SoLA
//!    pass: set the extra instruction bit on every *statically analyzable*
//!    branch whose target lies on the branch's own page.

use cfr_types::PageGeometry;
use cfr_workload::{LaidProgram, Program};

use crate::strategy::StrategyKind;

/// Whether a strategy runs the boundary-instrumented binary.
///
/// HoA and the Base/OPT references run the original binary; the three
/// compiler-assisted schemes run the instrumented one.
#[must_use]
pub fn wants_instrumented(kind: StrategyKind) -> bool {
    matches!(
        kind,
        StrategyKind::SoCA | StrategyKind::SoLA | StrategyKind::Ia
    )
}

/// The SoLA marking pass: sets `in_page_hint` on every direct branch whose
/// target is on the same page. Returns how many branches were marked.
///
/// The paper: *"We use an extra bit in branch instructions to differentiate
/// between in-page branches and the others."* Only statically-analyzable
/// targets can be marked; returns and indirect jumps are left untouched.
pub fn mark_in_page_branches(prog: &mut LaidProgram) -> u64 {
    let mut marked = 0;
    for i in 0..prog.slots.len() {
        let Some(target) = prog.direct_target_addr(i) else {
            continue;
        };
        let addr = prog.addr_of(i);
        let spec = prog.slots[i]
            .instr
            .branch
            .as_mut()
            .expect("direct target implies a branch");
        if spec.boundary {
            // A boundary branch's target is by definition on the next page.
            continue;
        }
        if prog.geom.same_page(addr, target) {
            spec.in_page_hint = true;
            marked += 1;
        }
    }
    marked
}

/// Compiles `program` for `kind`: instrumented layout for the software
/// schemes, plain layout otherwise, plus the SoLA marking pass.
#[must_use]
pub fn compile_for(program: &Program, geom: PageGeometry, kind: StrategyKind) -> LaidProgram {
    let mut laid = LaidProgram::lay_out(program, geom, wants_instrumented(kind));
    if kind == StrategyKind::SoLA {
        mark_in_page_branches(&mut laid);
    }
    laid
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfr_workload::{generate, BranchTarget, GeneratorParams};

    fn program() -> Program {
        generate(&GeneratorParams::small_test())
    }

    #[test]
    fn instrumentation_choice() {
        assert!(!wants_instrumented(StrategyKind::Base));
        assert!(!wants_instrumented(StrategyKind::Opt));
        assert!(!wants_instrumented(StrategyKind::HoA));
        assert!(wants_instrumented(StrategyKind::SoCA));
        assert!(wants_instrumented(StrategyKind::SoLA));
        assert!(wants_instrumented(StrategyKind::Ia));
    }

    #[test]
    fn marking_sets_only_same_page_direct_branches() {
        let p = program();
        let mut laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), true);
        let marked = mark_in_page_branches(&mut laid);
        assert!(marked > 0, "test program must have in-page branches");
        for (i, slot) in laid.slots.iter().enumerate() {
            let Some(spec) = &slot.instr.branch else {
                continue;
            };
            if spec.in_page_hint {
                let target = laid.direct_target_addr(i).expect("marked implies direct");
                assert!(laid.geom.same_page(laid.addr_of(i), target));
                assert!(!spec.boundary, "boundary branches are never in-page");
            } else if !spec.boundary && matches!(spec.target, BranchTarget::Block(_)) {
                let target = laid.direct_target_addr(i).expect("direct");
                assert!(
                    !laid.geom.same_page(laid.addr_of(i), target),
                    "unmarked direct branch at slot {i} is actually in-page"
                );
            }
        }
    }

    #[test]
    fn marking_is_idempotent() {
        let p = program();
        let mut laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), true);
        let a = mark_in_page_branches(&mut laid);
        let b = mark_in_page_branches(&mut laid);
        assert_eq!(a, b);
    }

    #[test]
    fn compile_for_sola_marks() {
        let p = program();
        let laid = compile_for(&p, PageGeometry::default_4k(), StrategyKind::SoLA);
        assert!(laid.instrumented);
        assert!(laid
            .slots
            .iter()
            .any(|s| s.instr.branch.as_ref().is_some_and(|b| b.in_page_hint)));
    }

    #[test]
    fn compile_for_soca_does_not_mark() {
        let p = program();
        let laid = compile_for(&p, PageGeometry::default_4k(), StrategyKind::SoCA);
        assert!(laid.instrumented);
        assert!(!laid.slots.iter().any(|s| s
            .instr
            .branch
            .as_ref()
            .is_some_and(|b| b.in_page_hint)));
    }

    #[test]
    fn compile_for_base_is_plain() {
        let p = program();
        let laid = compile_for(&p, PageGeometry::default_4k(), StrategyKind::Base);
        assert!(!laid.instrumented);
        assert_eq!(laid.boundary_branches, 0);
    }

    #[test]
    fn larger_pages_mark_more_branches() {
        let p = program();
        let mut small = LaidProgram::lay_out(&p, PageGeometry::new(1024).unwrap(), true);
        let mut large = LaidProgram::lay_out(&p, PageGeometry::new(16384).unwrap(), true);
        let a = mark_in_page_branches(&mut small);
        let b = mark_in_page_branches(&mut large);
        assert!(b >= a, "bigger pages cover more targets: {a} vs {b}");
    }
}
