//! Multiprogrammed OS scenarios: time-slicing N programs over one core.
//!
//! The paper evaluates its CFR mechanisms on single programs; its §3.2
//! sketches the OS interactions — the CFR is invalidated on a context
//! switch, pages can be evicted — without quantifying them. This module
//! quantifies them: a [`ScenarioConfig`] describes N generated programs
//! round-robin scheduled over one core with a cycle quantum, and
//! [`simulate`] runs the whole mix to completion on one machine model:
//!
//! - each process has its **own** pipeline state, page table, and private
//!   caches (a pipeline is frozen mid-flight when its quantum expires and
//!   resumed transparently later — see `Pipeline::run_slice`),
//! - the **iTLB + CFR** (one [`Strategy`]) and the **dTLB** are shared
//!   hardware, migrated between processes by the scheduler,
//! - the shared TLBs run in one of two [`TlbMode`]s: **ASID-tagged**
//!   (entries are tagged with the incoming process's address-space ID;
//!   ASID reuse forces a shootdown) or **flush-on-switch** (every entry —
//!   and the MRU recency / last-hit fast paths behind them — is
//!   invalidated on each switch),
//! - context-switch, per-entry shootdown, demand-fault, and
//!   protection-fault-trap latencies are all configurable and all cost
//!   cycles (fault traps cost energy too, via the strategy's meter).
//!
//! **Degeneracy guarantee** (enforced by `tests/scenario_differential.rs`):
//! a 1-process scenario with an infinite quantum and zero penalties is
//! field-for-field identical to the plain [`crate::Simulator`] path, under
//! both execution backends and both TLB modes.

use std::sync::Arc;

use cfr_cpu::{CompiledBackend, CpuStats, FetchTranslator as _, InterpBackend, Pipeline, SliceEnd};
use cfr_energy::EnergyModel;
use cfr_mem::CacheStats;
use cfr_types::{AddressingMode, PageGeometry, RecordError, RecordReader, RecordWriter};
use cfr_workload::{CompiledTrace, LaidProgram};

use crate::experiment::ExperimentScale;
use crate::simulator::{ExecBackend, RunReport, SimConfig};
use crate::strategy::{Strategy, StrategyKind};

/// How the shared TLBs (iTLB and dTLB) survive a context switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TlbMode {
    /// Entries are tagged with the running process's address-space ID;
    /// switches retag, and ASID reuse shoots down the recycled space.
    Asid,
    /// Every entry is invalidated on every switch (architectures without
    /// ASIDs). Set state, MRU recency, and last-hit fast paths all clear.
    Flush,
}

impl TlbMode {
    /// Stable lower-case name (`asid` / `flush`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TlbMode::Asid => "asid",
            TlbMode::Flush => "flush",
        }
    }

    /// Serializes as the mode name (persistent store codec).
    pub fn to_record(self, w: &mut RecordWriter) {
        w.token(self.name());
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on an unknown mode token.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        match r.token()? {
            "asid" => Ok(TlbMode::Asid),
            "flush" => Ok(TlbMode::Flush),
            other => Err(RecordError::new(format!("unknown TLB mode {other:?}"))),
        }
    }
}

/// One process of a scenario: a benchmark profile, optionally laid out
/// with a non-default page size (the 4K/2M mix axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScenarioProc {
    /// Benchmark profile name (resolved against the engine's registry).
    pub profile: &'static str,
    /// Page-size override in bytes (`None` = the paper's 4 KB).
    pub page_bytes: Option<u64>,
}

impl ScenarioProc {
    /// A process at the default page size.
    #[must_use]
    pub fn new(profile: &'static str) -> Self {
        Self {
            profile,
            page_bytes: None,
        }
    }

    /// The same process at an explicit page size; the default page size
    /// canonicalizes to "no override" so equal configurations share one
    /// store record.
    #[must_use]
    pub fn with_page_bytes(mut self, bytes: u64) -> Self {
        let default = PageGeometry::default_4k().page_bytes();
        self.page_bytes = (bytes != default).then_some(bytes);
        self
    }
}

/// Quantum value meaning "never preempt" (run each process to completion
/// in its first activation).
pub const QUANTUM_INFINITE: u64 = u64::MAX;

/// The identity of one multiprogrammed scenario run. Equal configs produce
/// bit-identical [`ScenarioReport`]s, which makes the engine's dedup and
/// the persistent `scenarios` store namespace sound.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ScenarioConfig {
    /// The process mix, in scheduling order.
    pub procs: Vec<ScenarioProc>,
    /// Per-process run length and base walker seed (process `i` walks with
    /// `seed + i`, so equal profiles still execute distinct streams).
    pub scale: ExperimentScale,
    /// CFR strategy driving the shared fetch-translation path.
    pub strategy: StrategyKind,
    /// iL1 addressing mode.
    pub mode: AddressingMode,
    /// ASID-tagged vs flush-on-switch shared TLBs.
    pub tlb_mode: TlbMode,
    /// Hardware ASIDs available (process `i` gets ASID `i % asid_count`,
    /// so fewer ASIDs than processes forces shootdowns on reuse). Ignored
    /// in flush mode. Must be ≥ 1.
    pub asid_count: u16,
    /// Scheduling quantum in cycles ([`QUANTUM_INFINITE`] = no
    /// preemption). Must be ≥ 1.
    pub quantum: u64,
    /// Flat cycles charged per context switch (register save/restore,
    /// kernel path).
    pub switch_penalty: u32,
    /// Cycles charged per TLB entry flushed or shot down at a switch.
    pub shootdown_per_entry: u32,
    /// Cycles a protection fault spends trapping to the OS handler, wired
    /// into both the fetch path (with a `fault_trap` energy charge) and
    /// the data path. 0 keeps faults free, as in the single-program model.
    pub fault_latency: u32,
    /// Cycles a demand fault (first touch of an unmapped page) adds on top
    /// of a TLB miss. 0 disables demand-fault accounting entirely.
    pub demand_fault_penalty: u32,
}

impl ScenarioConfig {
    /// A scenario with the OS knobs at their degenerate defaults:
    /// ASID-tagged TLBs, 16 ASIDs, no preemption, and every penalty zero.
    #[must_use]
    pub fn new(
        procs: Vec<ScenarioProc>,
        scale: ExperimentScale,
        strategy: StrategyKind,
        mode: AddressingMode,
    ) -> Self {
        Self {
            procs,
            scale,
            strategy,
            mode,
            tlb_mode: TlbMode::Asid,
            asid_count: 16,
            quantum: QUANTUM_INFINITE,
            switch_penalty: 0,
            shootdown_per_entry: 0,
            fault_latency: 0,
            demand_fault_penalty: 0,
        }
    }

    /// Serializes every identity field. The record doubles as the store's
    /// content address (`scenarios` namespace), exactly like
    /// [`crate::RunKey::to_record`].
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("scenario");
        w.u64(self.procs.len() as u64);
        for p in &self.procs {
            w.token(p.profile);
            match p.page_bytes {
                None => w.token("default"),
                Some(bytes) => w.u64(bytes),
            }
        }
        self.scale.to_record(w);
        self.strategy.to_record(w);
        self.mode.to_record(w);
        self.tlb_mode.to_record(w);
        w.u64(u64::from(self.asid_count));
        w.u64(self.quantum);
        w.u64(u64::from(self.switch_penalty));
        w.u64(u64::from(self.shootdown_per_entry));
        w.u64(u64::from(self.fault_latency));
        w.u64(u64::from(self.demand_fault_penalty));
    }

    /// Parses a [`Self::to_record`] stream. `resolve` maps a profile name
    /// back to its registered `&'static str`.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream or an unresolvable profile name.
    pub fn from_record(
        r: &mut RecordReader<'_>,
        resolve: impl Fn(&str) -> Option<&'static str>,
    ) -> Result<Self, RecordError> {
        r.expect("scenario")?;
        let n = r.u64()?;
        let mut procs = Vec::new();
        for _ in 0..n {
            let name = r.token()?;
            let profile = resolve(name)
                .ok_or_else(|| RecordError::new(format!("unknown benchmark profile {name:?}")))?;
            let page_bytes = match r.token()? {
                "default" => None,
                bytes => Some(bytes.parse::<u64>().map_err(|_| {
                    RecordError::new(format!("malformed page-size token {bytes:?}"))
                })?),
            };
            procs.push(ScenarioProc {
                profile,
                page_bytes,
            });
        }
        Ok(Self {
            procs,
            scale: ExperimentScale::from_record(r)?,
            strategy: StrategyKind::from_record(r)?,
            mode: AddressingMode::from_record(r)?,
            tlb_mode: TlbMode::from_record(r)?,
            asid_count: read_u16(r, "ASID count")?,
            quantum: r.u64()?,
            switch_penalty: r.u32()?,
            shootdown_per_entry: r.u32()?,
            fault_latency: r.u32()?,
            demand_fault_penalty: r.u32()?,
        })
    }

    /// The record string — the scenario's store key.
    #[must_use]
    pub fn store_key(&self) -> String {
        let mut w = RecordWriter::new();
        self.to_record(&mut w);
        w.finish()
    }

    /// The per-process simulator configuration: the scale's config with
    /// this process's page geometry, walker seed (`scale.seed + index`),
    /// and the scenario's data-side fault latency applied.
    ///
    /// # Panics
    ///
    /// Panics if a page-size override is not a power of two.
    #[must_use]
    pub fn proc_config(&self, index: usize) -> SimConfig {
        let mut cfg = self.scale.config();
        if let Some(bytes) = self.procs[index].page_bytes {
            cfg.cpu.geometry = PageGeometry::new(bytes).expect("page size must be a power of two");
        }
        cfg.seed = self.scale.seed.wrapping_add(index as u64);
        cfg.cpu.fault_latency = self.fault_latency;
        cfg
    }
}

fn read_u16(r: &mut RecordReader<'_>, what: &str) -> Result<u16, RecordError> {
    let v = r.u64()?;
    u16::try_from(v).map_err(|_| RecordError::new(format!("{what} {v} out of range")))
}

/// The executable artifacts of one scenario process, resolved by the
/// caller (the [`crate::Engine`] memoizes them across scenarios and runs).
#[derive(Clone, Debug)]
pub struct ScenarioBinary {
    /// The laid-out, instrumented program.
    pub laid: Arc<LaidProgram>,
    /// Its pre-decoded trace — required under [`ExecBackend::Compiled`].
    pub trace: Option<Arc<CompiledTrace>>,
}

/// What one scenario run produced.
#[derive(Clone, Debug, PartialEq)]
pub struct ScenarioReport {
    /// Whole-machine totals in [`RunReport`] shape: summed pipeline
    /// counters, the shared iTLB/CFR stats, energy, and the global cycle
    /// clock. For a 1-process infinite-quantum scenario this is
    /// field-identical to the plain simulator's report.
    pub machine: RunReport,
    /// Instructions committed per process, in mix order.
    pub per_proc_committed: Vec<u64>,
    /// Context switches taken (process-to-process handoffs).
    pub context_switches: u64,
    /// iTLB entries invalidated by flush-on-switch.
    pub itlb_flushed: u64,
    /// dTLB entries invalidated by flush-on-switch.
    pub dtlb_flushed: u64,
    /// TLB entries (both TLBs) shot down by ASID reuse.
    pub shootdowns: u64,
    /// Demand faults taken (first touches of unmapped pages, both TLBs);
    /// 0 unless a demand-fault penalty is configured.
    pub demand_faults: u64,
    /// Cycles spent in switch overhead (switch penalty + per-entry
    /// shootdown/flush charges), already included in `machine.cycles`.
    pub switch_cycles: u64,
}

impl ScenarioReport {
    /// Machine cycles per committed instruction.
    #[must_use]
    pub fn cpi(&self) -> f64 {
        if self.machine.committed == 0 {
            0.0
        } else {
            self.machine.cycles as f64 / self.machine.committed as f64
        }
    }

    /// Serializes the full report (persistent store codec).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("scenreport");
        self.machine.to_record(w);
        w.u64(self.per_proc_committed.len() as u64);
        for &c in &self.per_proc_committed {
            w.u64(c);
        }
        w.u64(self.context_switches);
        w.u64(self.itlb_flushed);
        w.u64(self.dtlb_flushed);
        w.u64(self.shootdowns);
        w.u64(self.demand_faults);
        w.u64(self.switch_cycles);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream — the store treats any error as a
    /// cache miss and re-simulates.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("scenreport")?;
        let machine = RunReport::from_record(r)?;
        let n = r.u64()?;
        let mut per_proc_committed = Vec::new();
        for _ in 0..n {
            per_proc_committed.push(r.u64()?);
        }
        Ok(Self {
            machine,
            per_proc_committed,
            context_switches: r.u64()?,
            itlb_flushed: r.u64()?,
            dtlb_flushed: r.u64()?,
            shootdowns: r.u64()?,
            demand_faults: r.u64()?,
            switch_cycles: r.u64()?,
        })
    }
}

/// A per-process pipeline over either execution backend. Both backends
/// must agree field-for-field under scenarios, exactly as they do for
/// single runs (`tests/scenario_differential.rs` proves it).
enum AnyPipeline<'a> {
    Interp(Pipeline<InterpBackend<'a>>),
    Compiled(Pipeline<CompiledBackend<'a>>),
}

impl AnyPipeline<'_> {
    fn run_slice(&mut self, s: &mut Strategy, max_commits: u64, quantum_end: u64) -> SliceEnd {
        match self {
            AnyPipeline::Interp(p) => p.run_slice(s, max_commits, quantum_end),
            AnyPipeline::Compiled(p) => p.run_slice(s, max_commits, quantum_end),
        }
    }

    fn set_cycle(&mut self, cycle: u64) {
        match self {
            AnyPipeline::Interp(p) => p.set_cycle(cycle),
            AnyPipeline::Compiled(p) => p.set_cycle(cycle),
        }
    }

    fn cycle(&self) -> u64 {
        match self {
            AnyPipeline::Interp(p) => p.cycle(),
            AnyPipeline::Compiled(p) => p.cycle(),
        }
    }

    fn finalize_stats(&mut self) {
        match self {
            AnyPipeline::Interp(p) => p.finalize_stats(),
            AnyPipeline::Compiled(p) => p.finalize_stats(),
        }
    }

    fn stats(&self) -> &CpuStats {
        match self {
            AnyPipeline::Interp(p) => p.stats(),
            AnyPipeline::Compiled(p) => p.stats(),
        }
    }

    fn dtlb_mut(&mut self) -> &mut cfr_mem::Tlb {
        match self {
            AnyPipeline::Interp(p) => p.dtlb_mut(),
            AnyPipeline::Compiled(p) => p.dtlb_mut(),
        }
    }
}

/// Swaps the shared hardware dTLB between two per-process pipelines.
fn migrate_dtlb(pipes: &mut [AnyPipeline<'_>], from: usize, to: usize) {
    if from == to {
        return;
    }
    let (lo, hi) = if from < to { (from, to) } else { (to, from) };
    let (left, right) = pipes.split_at_mut(hi);
    std::mem::swap(left[lo].dtlb_mut(), right[0].dtlb_mut());
}

fn add_cache(into: &mut CacheStats, s: &CacheStats) {
    into.accesses += s.accesses;
    into.hits += s.hits;
    into.misses += s.misses;
    into.writebacks += s.writebacks;
}

/// Runs a scenario to completion (every process commits its full scale)
/// under an explicit execution backend and returns the aggregate report.
///
/// Deterministic: the report depends only on `cfg` and the binaries, never
/// on the backend (`Interp` and `Compiled` agree field-for-field) — which
/// is what lets the engine persist scenario reports content-addressed by
/// the config record alone.
///
/// # Panics
///
/// Panics if `bins` does not match `cfg.procs` one-for-one, if the
/// compiled backend is selected without traces, if `cfg.procs` is empty,
/// or if `asid_count` or `quantum` is zero.
#[must_use]
pub fn simulate(
    cfg: &ScenarioConfig,
    bins: &[ScenarioBinary],
    backend: ExecBackend,
) -> ScenarioReport {
    assert!(
        !cfg.procs.is_empty(),
        "a scenario needs at least one process"
    );
    assert_eq!(bins.len(), cfg.procs.len(), "one binary per process");
    assert!(cfg.asid_count >= 1, "at least one ASID");
    assert!(cfg.quantum >= 1, "a zero quantum cannot make progress");

    let n = cfg.procs.len();
    let sims: Vec<SimConfig> = (0..n).map(|i| cfg.proc_config(i)).collect();
    let mut pipes: Vec<AnyPipeline<'_>> = sims
        .iter()
        .zip(bins)
        .map(|(sim, bin)| match backend {
            ExecBackend::Interp => AnyPipeline::Interp(Pipeline::new(&bin.laid, sim.cpu, sim.seed)),
            ExecBackend::Compiled => {
                let trace = bin
                    .trace
                    .as_deref()
                    .expect("compiled backend needs a pre-decoded trace per process");
                AnyPipeline::Compiled(Pipeline::compiled(trace, sim.cpu, sim.seed))
            }
        })
        .collect();

    // The shared fetch-translation hardware (iTLB + CFR + energy meter),
    // constructed exactly as the plain simulator path does.
    let mut strategy = Strategy::with_itlb(
        cfg.strategy,
        cfg.mode,
        sims[0].cpu.geometry,
        sims[0].itlb.build(sims[0].itlb_miss_penalty),
        EnergyModel::default(),
    );
    strategy.set_fault_latency(cfg.fault_latency);
    strategy.set_demand_fault_penalty(cfg.demand_fault_penalty);
    // The shared dTLB starts in (and always lives in) the running pipe.
    pipes[0]
        .dtlb_mut()
        .set_demand_fault_penalty(cfg.demand_fault_penalty);

    let mut global: u64 = 0;
    let mut current: Option<usize> = None;
    let mut holder = 0usize; // which pipe holds the shared dTLB
    let mut asid_owner: Vec<Option<usize>> = vec![None; usize::from(cfg.asid_count)];
    let mut done = vec![false; n];
    let mut itlb_flushed = 0u64;
    let mut dtlb_flushed = 0u64;
    let mut shootdowns = 0u64;
    let mut switch_cycles = 0u64;

    while done.iter().any(|d| !d) {
        // Round-robin: the next not-yet-finished process after the
        // current one (the current process itself when it is the only
        // one left — no switch overhead then).
        let start = current.map_or(0, |c| (c + 1) % n);
        let next = (0..n)
            .map(|off| (start + off) % n)
            .find(|&i| !done[i])
            .expect("loop guard: someone is unfinished");

        match current {
            // First activation: no switch happened, so no switch handling
            // at all — this is what makes the 1-process scenario
            // degenerate exactly to the plain simulator path. ASID 0's
            // ownership is recorded (pure bookkeeping, no machine effect).
            None => {
                if cfg.tlb_mode == TlbMode::Asid {
                    asid_owner[next % usize::from(cfg.asid_count)] = Some(next);
                }
            }
            Some(cur) if cur != next => {
                strategy.on_context_switch();
                migrate_dtlb(&mut pipes, holder, next);
                holder = next;
                let mut charged_entries = 0u64;
                match cfg.tlb_mode {
                    TlbMode::Flush => {
                        let i = strategy.flush_itlb();
                        let d = pipes[holder].dtlb_mut().invalidate_all();
                        itlb_flushed += i;
                        dtlb_flushed += d;
                        charged_entries = i + d;
                    }
                    TlbMode::Asid => {
                        let slot = next % usize::from(cfg.asid_count);
                        let asid = slot as u16;
                        if asid_owner[slot] != Some(next) {
                            // The incoming process recycles an ASID that
                            // last belonged to someone else: shoot down
                            // every entry still tagged with it.
                            let shot = strategy.shootdown_asid(asid)
                                + pipes[holder].dtlb_mut().invalidate_asid(asid);
                            shootdowns += shot;
                            charged_entries = shot;
                            asid_owner[slot] = Some(next);
                        }
                        strategy.set_asid(asid);
                        pipes[holder].dtlb_mut().set_asid(asid);
                    }
                }
                strategy.set_geometry(sims[next].cpu.geometry);
                let cost = u64::from(cfg.switch_penalty)
                    + charged_entries * u64::from(cfg.shootdown_per_entry);
                switch_cycles += cost;
                global += cost;
            }
            // Quantum expired with no other runnable process: resume
            // without a switch.
            Some(_) => {}
        }
        current = Some(next);

        pipes[next].set_cycle(global);
        let quantum_end = global.saturating_add(cfg.quantum); // u64::MAX saturates to itself
        if pipes[next].run_slice(&mut strategy, cfg.scale.max_commits, quantum_end)
            == SliceEnd::Finished
        {
            done[next] = true;
        }
        global = pipes[next].cycle();
    }

    for pipe in &mut pipes {
        pipe.finalize_stats();
    }
    let mut agg = CpuStats::default();
    for pipe in &pipes {
        let s = pipe.stats();
        agg.committed += s.committed;
        agg.fetched += s.fetched;
        agg.wrong_path_fetched += s.wrong_path_fetched;
        agg.branches += s.branches;
        agg.mispredicts += s.mispredicts;
        agg.boundary_branches += s.boundary_branches;
        agg.crossings_branch += s.crossings_branch;
        agg.crossings_boundary += s.crossings_boundary;
        agg.loads += s.loads;
        agg.stores += s.stores;
        add_cache(&mut agg.il1, &s.il1);
        add_cache(&mut agg.dl1, &s.dl1);
        add_cache(&mut agg.l2, &s.l2);
    }
    agg.cycles = global;
    // The dTLB is shared hardware: its counters are read once, from the
    // pipe currently holding it, not summed over the parked (dead) copies.
    agg.dtlb = pipes[holder].stats().dtlb;
    let demand_faults = strategy.demand_faults() + pipes[holder].dtlb_mut().demand_faults();
    let per_proc_committed: Vec<u64> = pipes.iter().map(|p| p.stats().committed).collect();
    let context_switches = strategy.context_switches();

    let machine = RunReport {
        strategy: cfg.strategy,
        mode: cfg.mode,
        committed: agg.committed,
        cycles: global,
        itlb: strategy.itlb_stats(),
        energy: strategy.meter().clone(),
        breakdown: strategy.breakdown(),
        cpu: agg,
    };
    ScenarioReport {
        machine,
        per_proc_committed,
        context_switches,
        itlb_flushed,
        dtlb_flushed,
        shootdowns,
        demand_faults,
        switch_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler;
    use crate::simulator::Simulator;
    use cfr_workload::{compile_trace, profiles};

    fn tiny_scale() -> ExperimentScale {
        ExperimentScale {
            max_commits: 8_000,
            seed: 0x5EED,
        }
    }

    fn mix_cfg(names: &[&'static str]) -> ScenarioConfig {
        ScenarioConfig::new(
            names.iter().map(|n| ScenarioProc::new(n)).collect(),
            tiny_scale(),
            StrategyKind::Ia,
            AddressingMode::ViPt,
        )
    }

    /// Compiles each process's binary the way the engine would.
    fn bins_for(cfg: &ScenarioConfig, with_traces: bool) -> Vec<ScenarioBinary> {
        let all = profiles::all();
        (0..cfg.procs.len())
            .map(|i| {
                let p = all
                    .iter()
                    .find(|p| p.name == cfg.procs[i].profile)
                    .expect("registered profile");
                let program = p.generate();
                let geom = cfg.proc_config(i).cpu.geometry;
                let laid = Arc::new(compiler::compile_for(&program, geom, cfg.strategy));
                let trace = with_traces.then(|| Arc::new(compile_trace(&laid)));
                ScenarioBinary { laid, trace }
            })
            .collect()
    }

    #[test]
    fn config_and_report_records_round_trip() {
        let mut cfg = mix_cfg(&["177.mesa", "254.gap"]);
        cfg.procs[1] = cfg.procs[1].with_page_bytes(2 * 1024 * 1024);
        cfg.tlb_mode = TlbMode::Flush;
        cfg.quantum = 40_000;
        cfg.asid_count = 2;
        cfg.switch_penalty = 100;
        cfg.shootdown_per_entry = 3;
        cfg.fault_latency = 700;
        cfg.demand_fault_penalty = 1_200;
        let record = cfg.store_key();
        let mut r = RecordReader::new(&record);
        let resolve = |name: &str| ["177.mesa", "254.gap"].into_iter().find(|p| *p == name);
        let back = ScenarioConfig::from_record(&mut r, resolve).unwrap();
        r.finish().unwrap();
        assert_eq!(back, cfg, "bit-exact config round trip");

        let report = simulate(&cfg, &bins_for(&cfg, false), ExecBackend::Interp);
        let mut w = RecordWriter::new();
        report.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        let back = ScenarioReport::from_record(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, report, "bit-exact report round trip");
        assert!(
            ScenarioReport::from_record(&mut RecordReader::new(&record[..record.len() - 6]))
                .is_err(),
            "truncation is an error, not a zero-filled report"
        );
    }

    #[test]
    fn one_proc_infinite_quantum_degenerates_to_plain_simulator() {
        for tlb_mode in [TlbMode::Asid, TlbMode::Flush] {
            let mut cfg = mix_cfg(&["177.mesa"]);
            cfg.tlb_mode = tlb_mode;
            let bins = bins_for(&cfg, true);
            let plain_cfg = cfg.proc_config(0);
            let plain = Simulator::run_interp(&bins[0].laid, &plain_cfg, cfg.strategy, cfg.mode);
            let scen = simulate(&cfg, &bins, ExecBackend::Interp);
            assert_eq!(
                scen.machine, plain,
                "{tlb_mode:?}: field-identical to the plain path"
            );
            assert_eq!(scen.context_switches, 0);
            assert_eq!(scen.switch_cycles, 0);
            assert_eq!(scen.per_proc_committed, vec![plain.committed]);
            let traced = Simulator::run_traced(
                bins[0].trace.as_ref().unwrap(),
                &plain_cfg,
                cfg.strategy,
                cfg.mode,
            );
            let scen_c = simulate(&cfg, &bins, ExecBackend::Compiled);
            assert_eq!(scen_c.machine, traced, "{tlb_mode:?}: compiled backend too");
            assert_eq!(scen.machine, scen_c.machine, "backends agree");
        }
    }

    #[test]
    fn backends_agree_under_preemption_and_faults() {
        let mut cfg = mix_cfg(&["177.mesa", "254.gap", "186.crafty"]);
        cfg.quantum = 7_321;
        cfg.asid_count = 2; // forces ASID reuse shootdowns
        cfg.switch_penalty = 500;
        cfg.shootdown_per_entry = 5;
        cfg.fault_latency = 300;
        cfg.demand_fault_penalty = 900;
        let bins = bins_for(&cfg, true);
        let a = simulate(&cfg, &bins, ExecBackend::Interp);
        let b = simulate(&cfg, &bins, ExecBackend::Compiled);
        assert_eq!(a, b, "interp and compiled must agree field-for-field");
        assert!(a.context_switches > 0, "the quantum must actually preempt");
        assert!(a.shootdowns > 0, "2 ASIDs over 3 procs must recycle");
        assert!(a.demand_faults > 0, "first touches demand-fault");
        assert_eq!(
            a.machine.committed,
            3 * cfg.scale.max_commits,
            "every process runs to completion"
        );
    }

    #[test]
    fn flush_mode_flushes_and_costs_more_than_asid_mode() {
        let mut asid = mix_cfg(&["177.mesa", "254.gap"]);
        asid.quantum = 5_000;
        asid.asid_count = 16; // no reuse: entries survive switches
        let mut flush = asid.clone();
        flush.tlb_mode = TlbMode::Flush;
        let bins = bins_for(&asid, false);
        let ra = simulate(&asid, &bins, ExecBackend::Interp);
        let rf = simulate(&flush, &bins, ExecBackend::Interp);
        assert_eq!(ra.itlb_flushed + ra.dtlb_flushed, 0);
        assert_eq!(ra.shootdowns, 0, "16 ASIDs over 2 procs never recycle");
        assert!(rf.itlb_flushed > 0, "flush mode empties the iTLB");
        assert!(rf.dtlb_flushed > 0, "flush mode empties the dTLB");
        assert!(
            rf.machine.itlb.misses > ra.machine.itlb.misses,
            "cold iTLB after every switch must re-miss"
        );
        assert!(
            rf.machine.cycles > ra.machine.cycles,
            "refilling flushed TLBs costs cycles"
        );
    }

    #[test]
    fn switch_penalty_charges_exact_cycles() {
        let mut free = mix_cfg(&["177.mesa", "254.gap"]);
        free.quantum = 5_000;
        let mut paid = free.clone();
        paid.switch_penalty = 10_000;
        let bins = bins_for(&free, false);
        let rf = simulate(&free, &bins, ExecBackend::Interp);
        let rp = simulate(&paid, &bins, ExecBackend::Interp);
        assert_eq!(rf.switch_cycles, 0);
        assert_eq!(
            rp.switch_cycles,
            rp.context_switches * 10_000,
            "flat penalty per switch"
        );
        assert!(rp.machine.cycles > rf.machine.cycles);
    }
}
