//! The Current Frame Register.

use cfr_types::{Pfn, Protection, Vpn};
use serde::{Deserialize, Serialize};

/// The Current Frame Register: one `<VPN, PFN, protection>` translation.
///
/// Per the paper's §3.2: the CFR is **not** architecturally visible to the
/// application (no read or write); the hardware uses it directly, and only
/// the OS (supervisor mode) may read, write, or invalidate it — on a context
/// switch it is saved/restored like any other piece of process context, and
/// if the OS must evict or remap the current code page it invalidates the
/// CFR exactly as it would shoot down a TLB entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cfr {
    vpn: Vpn,
    pfn: Pfn,
    prot: Protection,
    valid: bool,
}

impl Cfr {
    /// An invalid (empty) CFR.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Loads a translation (hardware refill after an iTLB lookup, or the OS
    /// restoring process context).
    pub fn load(&mut self, vpn: Vpn, pfn: Pfn, prot: Protection) {
        self.vpn = vpn;
        self.pfn = pfn;
        self.prot = prot;
        self.valid = true;
    }

    /// Whether the register currently holds a translation.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Whether the register holds a valid translation *for `vpn`* — the
    /// comparison HoA's comparator performs every fetch and IA performs on
    /// every BTB hit.
    #[must_use]
    pub fn matches(&self, vpn: Vpn) -> bool {
        self.valid && self.vpn == vpn
    }

    /// The held virtual page number (meaningless when invalid).
    #[must_use]
    pub fn vpn(&self) -> Vpn {
        self.vpn
    }

    /// The held frame (meaningless when invalid).
    #[must_use]
    pub fn pfn(&self) -> Pfn {
        self.pfn
    }

    /// The held protection bits (meaningless when invalid).
    #[must_use]
    pub fn prot(&self) -> Protection {
        self.prot
    }

    /// Invalidates the register (software trigger, OS eviction, context
    /// switch).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// OS hook: the page holding `vpn` was evicted or remapped; drop the
    /// translation if it is the one we hold.
    pub fn on_page_evicted(&mut self, vpn: Vpn) -> bool {
        if self.matches(vpn) {
            self.invalidate();
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_invalid() {
        let cfr = Cfr::new();
        assert!(!cfr.is_valid());
        assert!(!cfr.matches(Vpn::new(0)));
    }

    #[test]
    fn load_then_match() {
        let mut cfr = Cfr::new();
        cfr.load(Vpn::new(5), Pfn::new(9), Protection::code());
        assert!(cfr.is_valid());
        assert!(cfr.matches(Vpn::new(5)));
        assert!(!cfr.matches(Vpn::new(6)));
        assert_eq!(cfr.pfn(), Pfn::new(9));
        assert!(cfr.prot().executable());
    }

    #[test]
    fn invalidate_clears() {
        let mut cfr = Cfr::new();
        cfr.load(Vpn::new(5), Pfn::new(9), Protection::code());
        cfr.invalidate();
        assert!(!cfr.matches(Vpn::new(5)));
    }

    #[test]
    fn eviction_hook_only_hits_matching_page() {
        let mut cfr = Cfr::new();
        cfr.load(Vpn::new(5), Pfn::new(9), Protection::code());
        assert!(!cfr.on_page_evicted(Vpn::new(4)));
        assert!(cfr.is_valid());
        assert!(cfr.on_page_evicted(Vpn::new(5)));
        assert!(!cfr.is_valid());
        assert!(!cfr.on_page_evicted(Vpn::new(5)), "already gone");
    }
}
