//! End-to-end simulation: program → compiler → pipeline → report.

use cfr_cpu::{CpuConfig, CpuStats, ExecutionBackend, Pipeline};
use cfr_energy::{EnergyMeter, EnergyModel};
use cfr_mem::{TlbConfig, TlbStats, TwoLevelTlb};
use cfr_types::{AddressingMode, RecordError, RecordReader, RecordWriter, TlbOrganization};
use cfr_workload::{compile_trace, BenchmarkProfile, CompiledTrace, Program, ProgramCache};
use serde::{Deserialize, Serialize};

use crate::compiler;
use crate::strategy::{ItlbModel, LookupBreakdown, Strategy, StrategyKind};

/// Environment variable selecting the execution backend (`compiled`,
/// the default, or `interp`).
pub const BACKEND_ENV: &str = "CFR_BACKEND";

/// Which execution backend drives the pipeline.
///
/// Both backends are byte-identical by construction (the compiled trace
/// is a pure representation change; the golden tests and the
/// backend-equivalence property test enforce it), so this is purely a
/// performance/diagnostics switch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExecBackend {
    /// Pre-decoded compiled-trace backend (the default fast path).
    Compiled,
    /// Reference interpreter over the laid-out program.
    Interp,
}

impl ExecBackend {
    /// Reads `$CFR_BACKEND`: `interp` selects the reference interpreter;
    /// `compiled`, unset, or anything else selects the compiled-trace
    /// backend.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(BACKEND_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("interp") => ExecBackend::Interp,
            _ => ExecBackend::Compiled,
        }
    }

    /// Stable lower-case name (`compiled` / `interp`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ExecBackend::Compiled => "compiled",
            ExecBackend::Interp => "interp",
        }
    }
}

/// Which iTLB structure a run models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ItlbChoice {
    /// A monolithic TLB of the given shape.
    Mono(TlbOrganization),
    /// A serial two-level TLB (level-1 shape, level-2 shape, level-2
    /// latency in cycles).
    TwoLevel(TlbOrganization, TlbOrganization, u32),
}

impl ItlbChoice {
    /// The paper's default: 32-entry fully associative.
    #[must_use]
    pub fn default_mono() -> Self {
        ItlbChoice::Mono(TlbOrganization::fully_associative(32))
    }

    /// Serializes as `mono <org>` or `two <l1-org> <l2-org> <latency>`
    /// (persistent run store codec).
    pub fn to_record(&self, w: &mut RecordWriter) {
        match self {
            ItlbChoice::Mono(org) => {
                w.token("mono");
                org.to_record(w);
            }
            ItlbChoice::TwoLevel(l1, l2, latency) => {
                w.token("two");
                l1.to_record(w);
                l2.to_record(w);
                w.u64(u64::from(*latency));
            }
        }
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        match r.token()? {
            "mono" => Ok(ItlbChoice::Mono(TlbOrganization::from_record(r)?)),
            "two" => Ok(ItlbChoice::TwoLevel(
                TlbOrganization::from_record(r)?,
                TlbOrganization::from_record(r)?,
                r.u32()?,
            )),
            other => Err(RecordError::new(format!("unknown iTLB choice {other:?}"))),
        }
    }

    pub(crate) fn build(self, miss_penalty: u32) -> ItlbModel {
        match self {
            ItlbChoice::Mono(org) => ItlbModel::Mono(cfr_mem::Tlb::new(TlbConfig {
                organization: org,
                miss_penalty,
            })),
            ItlbChoice::TwoLevel(l1, l2, lat) => ItlbModel::TwoLevel(TwoLevelTlb::new(
                TlbConfig {
                    organization: l1,
                    miss_penalty,
                },
                TlbConfig {
                    organization: l2,
                    miss_penalty,
                },
                lat,
            )),
        }
    }
}

/// Everything a single simulation run needs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Core + memory-hierarchy configuration (Table 1).
    pub cpu: CpuConfig,
    /// iTLB structure.
    pub itlb: ItlbChoice,
    /// iTLB miss (page-walk) penalty in cycles.
    pub itlb_miss_penalty: u32,
    /// Committed instructions to simulate. The paper ran 250 M; the default
    /// here is 1/100 of that (rates are stationary, see DESIGN.md).
    pub max_commits: u64,
    /// Walker seed (same seed ⇒ identical instruction stream).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's default configuration at 1/100 scale.
    #[must_use]
    pub fn default_config() -> Self {
        Self {
            cpu: CpuConfig::default_config(),
            itlb: ItlbChoice::default_mono(),
            itlb_miss_penalty: 50,
            max_commits: 2_500_000,
            seed: 0x5EED,
        }
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::default_config()
    }
}

/// The result of one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Strategy that ran.
    pub strategy: StrategyKind,
    /// iL1 addressing mode.
    pub mode: AddressingMode,
    /// Committed instructions.
    pub committed: u64,
    /// Total cycles.
    pub cycles: u64,
    /// iTLB behavioural counters.
    pub itlb: TlbStats,
    /// Translation-path energy accounting (iTLB accesses/refills, CFR
    /// reads, comparators).
    pub energy: EnergyMeter,
    /// Lookup cause breakdown (Table 3).
    pub breakdown: LookupBreakdown,
    /// Full pipeline statistics.
    pub cpu: CpuStats,
}

impl RunReport {
    /// Total translation-path energy in millijoules.
    #[must_use]
    pub fn itlb_energy_mj(&self) -> f64 {
        self.energy.total_mj()
    }

    /// Energy normalized against a base run (Figure 4's y-axis).
    #[must_use]
    pub fn energy_vs(&self, base: &RunReport) -> f64 {
        self.itlb_energy_mj() / base.itlb_energy_mj()
    }

    /// Cycles normalized against a base run (Figure 5's y-axis).
    #[must_use]
    pub fn cycles_vs(&self, base: &RunReport) -> f64 {
        self.cycles as f64 / base.cycles as f64
    }

    /// Serializes the full report — every counter and every energy
    /// component, floats as exact bits — so a warm store read reproduces
    /// byte-identical experiment output (persistent run store codec; the
    /// vendored `serde` is a no-op).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("report");
        self.strategy.to_record(w);
        self.mode.to_record(w);
        w.u64(self.committed);
        w.u64(self.cycles);
        self.itlb.to_record(w);
        self.energy.to_record(w);
        self.breakdown.to_record(w);
        self.cpu.to_record(w);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream — the store treats any error as a
    /// cache miss and re-simulates.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("report")?;
        Ok(Self {
            strategy: StrategyKind::from_record(r)?,
            mode: AddressingMode::from_record(r)?,
            committed: r.u64()?,
            cycles: r.u64()?,
            itlb: TlbStats::from_record(r)?,
            energy: EnergyMeter::from_record(r)?,
            breakdown: crate::strategy::LookupBreakdown::from_record(r)?,
            cpu: CpuStats::from_record(r)?,
        })
    }
}

/// The top-level runner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Simulator;

impl Simulator {
    /// Compiles `program` for `kind` and runs it to completion.
    #[must_use]
    pub fn run_program(
        program: &Program,
        cfg: &SimConfig,
        kind: StrategyKind,
        mode: AddressingMode,
    ) -> RunReport {
        let laid = compiler::compile_for(program, cfg.cpu.geometry, kind);
        Self::run_compiled(&laid, cfg, kind, mode)
    }

    /// Runs an already-compiled (laid-out, instrumented, marked) program
    /// under the environment-selected [`ExecBackend`].
    ///
    /// `laid` must be the [`compiler::compile_for`] output for this
    /// `kind` and `cfg.cpu.geometry` — the [`crate::Engine`] memoizes
    /// those compilations across runs, since every strategy of a
    /// compilation class shares the same binary. When the compiled-trace
    /// backend is selected the trace is compiled here ad hoc; callers
    /// holding a memoized trace should use [`Simulator::run_traced`]
    /// directly.
    #[must_use]
    pub fn run_compiled(
        laid: &cfr_workload::LaidProgram,
        cfg: &SimConfig,
        kind: StrategyKind,
        mode: AddressingMode,
    ) -> RunReport {
        match ExecBackend::from_env() {
            ExecBackend::Compiled => {
                let trace = compile_trace(laid);
                Self::run_traced(&trace, cfg, kind, mode)
            }
            ExecBackend::Interp => Self::run_interp(laid, cfg, kind, mode),
        }
    }

    /// Runs a compiled program on the reference interpreter backend,
    /// regardless of `$CFR_BACKEND`.
    #[must_use]
    pub fn run_interp(
        laid: &cfr_workload::LaidProgram,
        cfg: &SimConfig,
        kind: StrategyKind,
        mode: AddressingMode,
    ) -> RunReport {
        Self::run_pipeline(Pipeline::new(laid, cfg.cpu, cfg.seed), cfg, kind, mode)
    }

    /// Runs a pre-decoded trace on the compiled-trace backend, regardless
    /// of `$CFR_BACKEND`. `trace` must be [`compile_trace`]'s output for
    /// the binary this `kind` and `cfg.cpu.geometry` denote.
    #[must_use]
    pub fn run_traced(
        trace: &CompiledTrace,
        cfg: &SimConfig,
        kind: StrategyKind,
        mode: AddressingMode,
    ) -> RunReport {
        Self::run_pipeline(
            Pipeline::compiled(trace, cfg.cpu, cfg.seed),
            cfg,
            kind,
            mode,
        )
    }

    fn run_pipeline<B: ExecutionBackend>(
        mut pipe: Pipeline<B>,
        cfg: &SimConfig,
        kind: StrategyKind,
        mode: AddressingMode,
    ) -> RunReport {
        let mut strategy = Strategy::with_itlb(
            kind,
            mode,
            cfg.cpu.geometry,
            cfg.itlb.build(cfg.itlb_miss_penalty),
            EnergyModel::default(),
        );
        pipe.run(&mut strategy, cfg.max_commits);
        let stats = *pipe.stats();
        RunReport {
            strategy: kind,
            mode,
            committed: stats.committed,
            cycles: stats.cycles,
            itlb: {
                use cfr_cpu::FetchTranslator as _;
                strategy.itlb_stats()
            },
            energy: {
                use cfr_cpu::FetchTranslator as _;
                strategy.meter().clone()
            },
            breakdown: strategy.breakdown(),
            cpu: stats,
        }
    }

    /// Runs `profile`'s program, borrowing it from `programs` — the
    /// program is generated at most once per cache, no matter how many
    /// (strategy, mode, iTLB) combinations run over it.
    #[must_use]
    pub fn run_profile(
        profile: &BenchmarkProfile,
        programs: &ProgramCache,
        cfg: &SimConfig,
        kind: StrategyKind,
        mode: AddressingMode,
    ) -> RunReport {
        let program = programs.get(profile);
        Self::run_program(&program, cfg, kind, mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfr_workload::{generate, GeneratorParams};

    fn quick_cfg() -> SimConfig {
        let mut cfg = SimConfig::default_config();
        cfg.max_commits = 30_000;
        cfg
    }

    fn quick_report(kind: StrategyKind, mode: AddressingMode) -> RunReport {
        let program = generate(&GeneratorParams::small_test());
        Simulator::run_program(&program, &quick_cfg(), kind, mode)
    }

    #[test]
    fn base_vipt_charges_itlb_per_fetch() {
        let r = quick_report(StrategyKind::Base, AddressingMode::ViPt);
        assert_eq!(r.committed, 30_000);
        // Every fetch (right and wrong path) accessed the iTLB.
        let fetches = r.cpu.fetched + r.cpu.wrong_path_fetched;
        assert_eq!(r.itlb.accesses, fetches);
        assert!(r.itlb_energy_mj() > 0.0);
    }

    #[test]
    fn ia_saves_most_of_the_energy() {
        let base = quick_report(StrategyKind::Base, AddressingMode::ViPt);
        let ia = quick_report(StrategyKind::Ia, AddressingMode::ViPt);
        let ratio = ia.energy_vs(&base);
        assert!(ratio < 0.25, "IA should cut >75% of iTLB energy: {ratio}");
    }

    #[test]
    fn ordering_matches_figure4() {
        let cfg = quick_cfg();
        let program = generate(&GeneratorParams::small_test());
        let run = |k| Simulator::run_program(&program, &cfg, k, AddressingMode::ViPt);
        let base = run(StrategyKind::Base);
        let opt = run(StrategyKind::Opt);
        let hoa = run(StrategyKind::HoA);
        let soca = run(StrategyKind::SoCA);
        let sola = run(StrategyKind::SoLA);
        let ia = run(StrategyKind::Ia);
        // OPT is the floor; SoCA the worst of the four schemes; everything
        // beats base by a lot.
        let e = |r: &RunReport| r.itlb_energy_mj();
        assert!(e(&opt) <= e(&ia));
        assert!(e(&ia) <= e(&sola) * 1.05, "IA ~ SoLA or better");
        assert!(e(&sola) < e(&soca), "static analysis must help");
        assert!(e(&hoa) < e(&soca), "SoCA is the most conservative");
        for r in [&opt, &hoa, &soca, &sola, &ia] {
            assert!(e(r) < 0.6 * e(&base), "{} vs base", r.strategy);
        }
    }

    #[test]
    fn vivt_base_consumes_far_less_than_vipt_base() {
        let vipt = quick_report(StrategyKind::Base, AddressingMode::ViPt);
        let vivt = quick_report(StrategyKind::Base, AddressingMode::ViVt);
        assert!(
            vivt.itlb_energy_mj() < 0.3 * vipt.itlb_energy_mj(),
            "VI-VT translates only on iL1 misses"
        );
        assert!(vivt.cycles >= vipt.cycles, "VI-VT pays miss-path latency");
    }

    #[test]
    fn pipt_base_is_slowest_and_ia_repairs_it() {
        let pipt_base = quick_report(StrategyKind::Base, AddressingMode::PiPt);
        let pipt_ia = quick_report(StrategyKind::Ia, AddressingMode::PiPt);
        let vipt_base = quick_report(StrategyKind::Base, AddressingMode::ViPt);
        assert!(
            pipt_base.cycles > vipt_base.cycles,
            "serial iTLB must cost cycles"
        );
        assert!(
            pipt_ia.cycles < pipt_base.cycles,
            "the CFR pulls the iTLB off the critical path"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let a = quick_report(StrategyKind::Base, AddressingMode::ViPt);
        let b = quick_report(StrategyKind::Base, AddressingMode::ViPt);
        assert_eq!(a, b);
    }

    #[test]
    fn two_level_base_vs_mono_ia_energy() {
        // Fig 6, 32-entry flavour: two-level (1 + 32) base consumes more
        // energy than monolithic 32 with IA.
        let program = generate(&GeneratorParams::small_test());
        let mut cfg = quick_cfg();
        cfg.itlb = ItlbChoice::TwoLevel(
            TlbOrganization::fully_associative(1),
            TlbOrganization::fully_associative(32),
            1,
        );
        let two_level_base =
            Simulator::run_program(&program, &cfg, StrategyKind::Base, AddressingMode::ViPt);
        let mut mono_cfg = quick_cfg();
        mono_cfg.itlb = ItlbChoice::default_mono();
        let mono_ia =
            Simulator::run_program(&program, &mono_cfg, StrategyKind::Ia, AddressingMode::ViPt);
        assert!(
            two_level_base.itlb_energy_mj() > mono_ia.itlb_energy_mj(),
            "filter TLB still pays a per-fetch comparison; the CFR does not"
        );
        assert!(
            two_level_base.cycles >= mono_ia.cycles,
            "two-level pays the serial L2 lookup on filter misses"
        );
    }

    #[test]
    fn run_report_record_round_trips() {
        // A real (tiny) run exercises every field, energy floats included.
        let report = quick_report(StrategyKind::Ia, AddressingMode::ViPt);
        let mut w = RecordWriter::new();
        report.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        let back = RunReport::from_record(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, report, "bit-exact round trip");
        // Truncation and tag damage are errors, never mis-parses.
        assert!(
            RunReport::from_record(&mut RecordReader::new(&record[..record.len() - 8])).is_err()
        );
        let damaged = record.replacen("report", "repork", 1);
        assert!(RunReport::from_record(&mut RecordReader::new(&damaged)).is_err());
    }

    #[test]
    fn itlb_choice_record_round_trips() {
        for choice in [
            ItlbChoice::default_mono(),
            ItlbChoice::Mono(TlbOrganization::set_associative(16, 2)),
            ItlbChoice::TwoLevel(
                TlbOrganization::fully_associative(1),
                TlbOrganization::fully_associative(32),
                1,
            ),
        ] {
            let mut w = RecordWriter::new();
            choice.to_record(&mut w);
            let record = w.finish();
            let mut r = RecordReader::new(&record);
            assert_eq!(ItlbChoice::from_record(&mut r).unwrap(), choice);
            r.finish().unwrap();
        }
    }

    #[test]
    fn soca_breakdown_has_both_causes() {
        let r = quick_report(StrategyKind::SoCA, AddressingMode::ViPt);
        assert!(r.breakdown.branch > 0);
        // The tiny test program may or may not execute boundary branches;
        // the sum must equal the iTLB access count either way.
        assert_eq!(r.breakdown.branch + r.breakdown.boundary, r.itlb.accesses);
    }
}
