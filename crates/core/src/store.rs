//! The typed run-report view of the persistent artifact store.
//!
//! PR 2 introduced a content-addressed, one-file-per-key run store here;
//! the storage engine has since moved down to
//! [`cfr_types::store::ArtifactStore`] — a **sharded, packed,
//! garbage-collected** `(namespace, key) → value` store shared by every
//! persisted layer (pipeline reports, walk measurements, generated
//! programs). This module keeps the typed `RunKey → RunReport` surface
//! the engine uses, over the `runs` namespace:
//!
//! - the store **key** is the [`RunKey`]'s canonical record string
//!   ([`Store::key_record`]) — equal keys produce byte-equal records, and
//!   the artifact store verifies a loaded record's key byte-for-byte, so
//!   collisions and stale entries degrade to misses;
//! - the store **value** is the [`RunReport`]'s record (floats as exact
//!   IEEE-754 bits), so a warm read reproduces byte-identical experiment
//!   output;
//! - a value that fails to parse as a current-codec report (e.g. one
//!   written before a codec change) is a **miss** — re-simulated and
//!   overwritten, never a crash.
//!
//! Old-layout (`<hash>.run`, one file per key) store directories are
//! detected and migrated by [`ArtifactStore::open`]; records whose codecs
//! still parse keep serving warm, anything else restarts cold.
//!
//! # Local vs. networked storage
//!
//! The facade holds a [`StoreBackend`] trait object, not the concrete
//! [`ArtifactStore`], so the same typed surface runs over
//!
//! - the machine-local sharded store (the default),
//! - a [`RemoteStore`](cfr_types::RemoteStore) client of the
//!   `cfr-store-serve` daemon, or
//! - the [`LayeredStore`](cfr_types::LayeredStore) stack of both —
//!   remote first, local fallback on a remote miss.
//!
//! [`Store::open_default`] picks the backend from the environment: when
//! `CFR_STORE_ADDR` names a daemon, every engine and binary transparently
//! becomes a network client with **zero call-site changes**; unset, the
//! shards are opened directly as before. Either way the failure contract
//! is identical: anything that cannot produce the exact stored bytes —
//! including a dead daemon — is a miss, and the run goes cold.

use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use cfr_types::net::{claim_lease, STORE_ADDR_ENV};
use cfr_types::{
    ArtifactStore, ChaosBackend, ClaimOutcome, FaultPlan, GcPolicy, LayeredStore, RecordReader,
    RecordWriter, RemoteStore, StoreBackend, NS_RUNS,
};

use crate::engine::RunKey;
use crate::simulator::RunReport;

/// What [`Store::claim_run`] resolved a cold key to: a report another
/// client published while we raced it, or the exclusive right (local
/// stores: the unconditional duty) to compute it ourselves.
#[derive(Clone, Debug, PartialEq)]
pub enum RunClaim {
    /// Another client simulated the key first; this is its published
    /// report, served warm. Boxed: a report is ~300 bytes and the
    /// common variant is the empty `Compute`.
    Warm(Box<RunReport>),
    /// Simulate locally (claim granted, unsupported by the backend, or
    /// every degraded outcome — a failure is always a miss, never a
    /// stall).
    Compute,
}

/// A typed, crash-tolerant cache of [`RunReport`]s keyed by [`RunKey`],
/// over any [`StoreBackend`] (local shards, the store daemon, or the
/// layered stack of both).
#[derive(Debug)]
pub struct Store {
    backend: Arc<dyn StoreBackend>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`, with the
    /// environment's GC policy (`CFR_STORE_MAX_BYTES` /
    /// `CFR_STORE_MAX_AGE`).
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be created.
    pub fn open(dir: impl Into<std::path::PathBuf>) -> io::Result<Self> {
        Ok(Self::over(Arc::new(ArtifactStore::open(
            dir,
            GcPolicy::from_env(),
        )?)))
    }

    /// Opens a store with an explicit GC policy (tests and tooling; the
    /// environment is shared state a parallel test run must not mutate).
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be created.
    pub fn open_with_policy(
        dir: impl Into<std::path::PathBuf>,
        policy: GcPolicy,
    ) -> io::Result<Self> {
        Ok(Self::over(Arc::new(ArtifactStore::open(dir, policy)?)))
    }

    /// Opens the environment's default store. With `CFR_STORE_ADDR` set
    /// (`host:port` of a `cfr-store-serve` daemon) this is the **layered
    /// networked store**: the daemon first, the machine-local shards
    /// (`$CFR_STORE_DIR`, else [`cfr_types::DEFAULT_STORE_DIR`]) as a
    /// read-mostly fallback. Unset, it is the machine-local store alone.
    ///
    /// An unreachable daemon is not an error — the client reconnects
    /// with backoff and every operation degrades to a miss meanwhile.
    ///
    /// # Errors
    ///
    /// Errors if the local store directory cannot be created (local
    /// mode only; in remote mode a failed local open just drops the
    /// fallback layer).
    pub fn open_default() -> io::Result<Self> {
        let (backend, shard_dir): (Arc<dyn StoreBackend>, Option<std::path::PathBuf>) =
            if let Some(addr) = std::env::var(STORE_ADDR_ENV)
                .ok()
                .map(|a| a.trim().to_string())
                .filter(|a| !a.is_empty())
            {
                let local = ArtifactStore::open_default().ok().map(Arc::new);
                let dir = local.as_ref().map(|l| l.dir().to_path_buf());
                (
                    Arc::new(LayeredStore::new(RemoteStore::new(addr), local)),
                    dir,
                )
            } else {
                let local = Arc::new(ArtifactStore::open_default()?);
                let dir = local.dir().to_path_buf();
                (local, Some(dir))
            };
        // Deterministic fault injection (`CFR_CHAOS_SEED` /
        // `CFR_CHAOS_PLAN`): the chaos layer wraps whichever backend the
        // environment picked, so injected misses, torn appends, and
        // dropped saves exercise the exact degradation paths production
        // failures would — without touching any call site.
        if let Some(plan) = FaultPlan::from_env() {
            let mut chaos = ChaosBackend::new(backend, plan);
            if let Some(dir) = shard_dir {
                chaos = chaos.with_shard_dir(dir);
            }
            return Ok(Self::over(Arc::new(chaos)));
        }
        Ok(Self::over(backend))
    }

    /// Wraps an already-open backend (an `Arc<ArtifactStore>` coerces
    /// directly).
    #[must_use]
    pub fn over(backend: Arc<dyn StoreBackend>) -> Self {
        Self {
            backend,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The underlying namespaced store backend (shared with the program
    /// cache and the walk-measurement path).
    #[must_use]
    pub fn backend(&self) -> Arc<dyn StoreBackend> {
        Arc::clone(&self.backend)
    }

    /// Human-readable identity of the backend — a directory path, a
    /// `tcp://` address, or both (layered).
    #[must_use]
    pub fn describe(&self) -> String {
        self.backend.describe()
    }

    /// Loads served from disk ("warm" runs).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that fell through to simulation ("cold" runs) — absent,
    /// stale-codec, corrupt, or mismatched records all count here.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Best-effort writes that failed anywhere in the backend
    /// (diagnostics only; a failed write costs a future process one
    /// re-simulation, nothing else).
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.backend.write_errors()
    }

    /// The canonical record identifying `key` — the store's content
    /// address within the `runs` namespace.
    #[must_use]
    pub fn key_record(key: &RunKey) -> String {
        let mut w = RecordWriter::new();
        key.to_record(&mut w);
        w.finish()
    }

    /// Parses a stored run record; any failure is a miss.
    fn parse_report(text: &str) -> Option<RunReport> {
        let mut r = RecordReader::new(text);
        let report = RunReport::from_record(&mut r).ok()?;
        r.finish().ok()?;
        Some(report)
    }

    /// Looks `key` up on disk. Any failure — absent, torn, corrupt,
    /// stale codec, colliding key — is a miss (`None`); the caller
    /// re-simulates and overwrites.
    #[must_use]
    pub fn load(&self, key: &RunKey) -> Option<RunReport> {
        let report = self
            .backend
            .load(NS_RUNS, &Self::key_record(key))
            .and_then(|text| Self::parse_report(&text));
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    /// Looks a whole batch of keys up in **one** backend probe
    /// (networked backends collapse it into a single pipelined `MGET`
    /// exchange; the local store reads shard-by-shard as before).
    /// Per-slot semantics — parse failures as misses, hit/miss
    /// accounting — are identical to [`Store::load`] in a loop.
    #[must_use]
    pub fn load_many(&self, keys: &[RunKey]) -> Vec<Option<RunReport>> {
        let items: Vec<(String, String)> = keys
            .iter()
            .map(|key| (NS_RUNS.to_string(), Self::key_record(key)))
            .collect();
        let mut values = self.backend.load_many(&items);
        // A backend must answer slot-for-slot; pad defensively so a
        // short reply degrades to misses rather than a panic.
        values.resize_with(keys.len(), || None);
        values
            .into_iter()
            .map(|value| {
                let report = value.and_then(|text| Self::parse_report(&text));
                match &report {
                    Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
                    None => self.misses.fetch_add(1, Ordering::Relaxed),
                };
                report
            })
            .collect()
    }

    /// Claims the right to simulate a cold `key`, deduplicating the
    /// computation **globally** when the backend has a coordinator (the
    /// store daemon): if another client already published the report —
    /// or holds the claim and publishes within its lease — the report
    /// comes back [`RunClaim::Warm`] (counted as a hit) and nothing is
    /// simulated here. Every other outcome — grant, unsupported
    /// backend, lapsed claim, unreachable daemon, corrupt published
    /// record — degrades to [`RunClaim::Compute`]: simulate locally and
    /// overwrite, preserving every-failure-is-a-miss.
    #[must_use]
    pub fn claim_run(&self, key: &RunKey) -> RunClaim {
        let record = Self::key_record(key);
        let lease = claim_lease();
        match self.backend.claim(NS_RUNS, &record, lease) {
            ClaimOutcome::Hit(text) => self.claim_warm(&text),
            ClaimOutcome::Granted | ClaimOutcome::Unsupported => RunClaim::Compute,
            ClaimOutcome::Busy => match self.backend.wait_for(NS_RUNS, &record, lease) {
                Some(text) => self.claim_warm(&text),
                None => RunClaim::Compute,
            },
        }
    }

    /// A claim resolved to a published value: warm if it parses (the
    /// batched probe already counted this key's miss, so a warm claim
    /// nets out as one hit), else recompute and overwrite.
    fn claim_warm(&self, text: &str) -> RunClaim {
        match Self::parse_report(text) {
            Some(report) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                RunClaim::Warm(Box::new(report))
            }
            None => RunClaim::Compute,
        }
    }

    /// Persists `key → report`. Best-effort: an I/O failure is counted
    /// (see [`Store::write_errors`]) but never propagated — the report is
    /// already in memory and the run merely stays cold for the next
    /// process.
    pub fn save(&self, key: &RunKey, report: &RunReport) {
        let mut w = RecordWriter::new();
        report.to_record(&mut w);
        self.backend
            .save(NS_RUNS, &Self::key_record(key), &w.finish());
    }

    /// Number of live run records currently on disk (diagnostics/tests).
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.backend.namespace_records(NS_RUNS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentScale;
    use crate::simulator::ItlbChoice;
    use crate::strategy::StrategyKind;
    use cfr_types::{AddressingMode, TlbOrganization, SHARD_COUNT};
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfr-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key() -> RunKey {
        RunKey::new(
            "177.mesa",
            &ExperimentScale {
                max_commits: 1000,
                seed: 7,
            },
            StrategyKind::Ia,
            AddressingMode::ViPt,
        )
    }

    fn sample_report() -> RunReport {
        use cfr_energy::EnergyMeter;
        let mut energy = EnergyMeter::new();
        energy.charge_n("itlb_access", 42, 440.5);
        RunReport {
            strategy: StrategyKind::Ia,
            mode: AddressingMode::ViPt,
            committed: 1000,
            cycles: 1234,
            itlb: cfr_mem::TlbStats {
                accesses: 42,
                hits: 40,
                misses: 2,
                invalidations: 0,
                protection_faults: 0,
            },
            energy,
            breakdown: crate::strategy::LookupBreakdown {
                boundary: 1,
                branch: 1,
            },
            cpu: cfr_cpu::CpuStats::default(),
        }
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let (key, report) = (sample_key(), sample_report());
        assert_eq!(store.load(&key), None, "cold store");
        store.save(&key, &report);
        assert_eq!(store.load(&key).as_ref(), Some(&report));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.write_errors(), 0);
        assert_eq!(store.record_count(), 1);
        // A second store over the same directory sees it too.
        let other = Store::open(&dir).unwrap();
        assert_eq!(other.load(&key).as_ref(), Some(&report));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_loads_match_serial_semantics() {
        let dir = temp_dir("batched");
        let store = Store::open(&dir).unwrap();
        let warm_key = sample_key();
        let cold_key = warm_key.with_il1_bytes(2048);
        store.save(&warm_key, &sample_report());
        let got = store.load_many(&[warm_key, cold_key, warm_key]);
        assert_eq!(got[0].as_ref(), Some(&sample_report()));
        assert_eq!(got[1], None);
        assert_eq!(got[2].as_ref(), Some(&sample_report()));
        assert_eq!((store.hits(), store.misses()), (2, 1));
        // The local backend has no claim coordinator: every claim says
        // "compute it yourself", exactly like the pre-claim protocol.
        assert_eq!(store.claim_run(&cold_key), RunClaim::Compute);
        assert_eq!(store.claim_run(&warm_key), RunClaim::Compute);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_keys_have_distinct_records() {
        let dir = temp_dir("addressing");
        let store = Store::open(&dir).unwrap();
        let a = sample_key();
        let b = a.with_itlb(ItlbChoice::Mono(TlbOrganization::fully_associative(8)));
        let c = a.with_il1_bytes(2048);
        let d = a.with_page_bytes(16384);
        let records: Vec<_> = [a, b, c, d].iter().map(Store::key_record).collect();
        for (i, p) in records.iter().enumerate() {
            for q in &records[i + 1..] {
                assert_ne!(p, q);
            }
        }
        // Each key is its own record; storing all four keeps all four.
        for k in [a, b, c, d] {
            store.save(&k, &sample_report());
        }
        assert_eq!(store.record_count(), 4);
        // ... in O(shards) files.
        assert!(fs::read_dir(&dir).unwrap().count() <= SHARD_COUNT as usize);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_stale_records_are_misses() {
        let dir = temp_dir("corruption");
        let store = Store::open(&dir).unwrap();
        let (key, report) = (sample_key(), sample_report());
        store.save(&key, &report);

        // Vandalize every shard file in turn; each kind of damage must
        // read as a miss on a fresh store, never a crash or wrong report.
        let shards: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect();
        for vandalism in ["garbage", "", "rec 2 runs 0 99999 99999\ntorn"] {
            for shard in &shards {
                fs::write(shard, vandalism).unwrap();
            }
            let victim = Store::open(&dir).unwrap();
            assert_eq!(victim.load(&key), None, "{vandalism:?} must miss");
            // Overwriting repairs it.
            victim.save(&key, &report);
            assert_eq!(victim.load(&key).as_ref(), Some(&report));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_codec_value_is_a_miss() {
        let dir = temp_dir("stalecodec");
        let store = Store::open(&dir).unwrap();
        let key = sample_key();
        // A value from some future codec: parseable framing, unparseable
        // report.
        store.backend().save(
            cfr_types::NS_RUNS,
            &Store::key_record(&key),
            "report2 whatever",
        );
        assert_eq!(store.load(&key), None);
        store.save(&key, &sample_report());
        assert_eq!(store.load(&key).as_ref(), Some(&sample_report()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_layout_migrates_and_serves_warm() {
        let dir = temp_dir("migration");
        let (key, report) = (sample_key(), sample_report());
        // Write a PR 2-style one-file-per-key record by hand (the exact
        // v1 format: magic+version, key section, report section).
        fs::create_dir_all(&dir).unwrap();
        let mut w = RecordWriter::new();
        report.to_record(&mut w);
        let v1 = format!(
            "cfr-store 1\nkey {}\nreport {}\n",
            Store::key_record(&key),
            w.finish()
        );
        fs::write(dir.join("00ab54a98ceb1f0a.run"), v1).unwrap();

        // Open the artifact store first to observe the migration count,
        // then hand it to the facade (the usual coercion).
        let artifacts = Arc::new(ArtifactStore::open(&dir, GcPolicy::from_env()).unwrap());
        assert_eq!(artifacts.migrated_records(), 1);
        let store = Store::over(artifacts);
        assert_eq!(
            store.load(&key).as_ref(),
            Some(&report),
            "migrated v1 records keep serving warm"
        );
        assert!(
            !fs::read_dir(&dir)
                .unwrap()
                .filter_map(Result::ok)
                .any(|e| e.path().extension().is_some_and(|x| x == "run")),
            "v1 files are consumed"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_key_record_round_trips() {
        let resolve = |name: &str| {
            cfr_workload::profiles::all()
                .into_iter()
                .map(|p| p.name)
                .find(|n| *n == name)
        };
        let scale = ExperimentScale {
            max_commits: 123,
            seed: 99,
        };
        let keys = [
            RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::PiPt),
            RunKey::new("254.gap", &scale, StrategyKind::SoLA, AddressingMode::ViVt).with_itlb(
                ItlbChoice::TwoLevel(
                    TlbOrganization::fully_associative(1),
                    TlbOrganization::fully_associative(32),
                    1,
                ),
            ),
            RunKey::new("252.eon", &scale, StrategyKind::Opt, AddressingMode::ViPt)
                .with_il1_bytes(2048)
                .with_page_bytes(65536),
        ];
        for key in keys {
            let record = Store::key_record(&key);
            let mut r = RecordReader::new(&record);
            assert_eq!(RunKey::from_record(&mut r, resolve).unwrap(), key);
            r.finish().unwrap();
        }
        // Unknown profile names fail rather than fabricate a key.
        let record = Store::key_record(&keys[0]).replacen("177.mesa", "000.nope", 1);
        assert!(RunKey::from_record(&mut RecordReader::new(&record), resolve).is_err());
    }
}
