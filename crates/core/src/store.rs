//! The persistent, cross-process run store.
//!
//! PR 1's [`Engine`](crate::Engine) deduplicates runs *within* a process;
//! this store deduplicates them *across* processes: every one of the
//! `table*`/`fig*` binaries (and `all_experiments`, and repeated
//! invocations of any of them) shares one content-addressed cache
//! directory, so a [`RunKey`] is simulated once per machine — the same
//! "compute a translation once, then reuse it" thesis the paper applies
//! to instruction-TLB lookups, applied to the evaluation harness itself.
//!
//! # Layout and format
//!
//! One file per key, named by the FNV-1a 64-bit hash of the key's
//! canonical record (`<hash>.run`). Each file is plain text:
//!
//! ```text
//! cfr-store <schema-version>
//! key <RunKey record>
//! report <RunReport record>
//! ```
//!
//! The records come from the hand-rolled `to_record`/`from_record` codecs
//! (the vendored `serde` is a no-op facade, see `vendor/README.md`);
//! floats are stored as exact IEEE-754 bits, so a warm read reproduces
//! byte-identical experiment output.
//!
//! # Robustness rules
//!
//! - **Atomic writes**: records are written to a unique temp file in the
//!   store directory and `rename`d into place, so concurrent binaries
//!   never observe a torn record. Two processes racing on the same key
//!   both write complete files; the last rename wins and both are valid.
//! - **Every read failure is a miss**: missing file, unreadable file,
//!   wrong magic, wrong schema version, hash collision (the stored key
//!   record is verified token-for-token against the requested key),
//!   truncation, trailing garbage, malformed numbers — all of it means
//!   "re-simulate and overwrite", never a crash.
//! - **Schema versioning**: bump [`STORE_SCHEMA_VERSION`] whenever a
//!   codec or [`RunKey`] identity field changes; every existing record
//!   then reads as stale and the full evaluation re-simulates.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use cfr_types::{fnv1a64, RecordReader, RecordWriter};

use crate::engine::RunKey;
use crate::simulator::RunReport;

/// Version of the on-disk record format. Bumping it invalidates every
/// existing record (they are re-simulated and overwritten in place).
pub const STORE_SCHEMA_VERSION: u32 = 1;

/// Environment variable overriding the store directory.
pub const STORE_DIR_ENV: &str = "CFR_STORE_DIR";

/// Default store directory, relative to the working directory.
pub const DEFAULT_STORE_DIR: &str = "target/cfr-store";

/// Magic tag opening every record file.
const STORE_MAGIC: &str = "cfr-store";

/// A content-addressed, crash-tolerant cache of [`RunReport`]s keyed by
/// [`RunKey`], shared by every process on the machine.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    write_errors: AtomicU64,
    tmp_counter: AtomicU64,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
        })
    }

    /// Opens the machine-shared default store: `$CFR_STORE_DIR` if set,
    /// else [`DEFAULT_STORE_DIR`].
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be created.
    pub fn open_default() -> io::Result<Self> {
        match std::env::var_os(STORE_DIR_ENV) {
            Some(dir) => Self::open(PathBuf::from(dir)),
            None => Self::open(DEFAULT_STORE_DIR),
        }
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Loads served from disk ("warm" runs).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads that fell through to simulation ("cold" runs) — absent,
    /// stale-schema, corrupt, or mismatched records all count here.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Best-effort writes that failed (diagnostics only; a failed write
    /// costs a future process one re-simulation, nothing else).
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// The canonical record identifying `key` — the store's content
    /// address.
    #[must_use]
    pub fn key_record(key: &RunKey) -> String {
        let mut w = RecordWriter::new();
        key.to_record(&mut w);
        w.finish()
    }

    /// Where `key`'s record lives (whether or not it exists yet).
    #[must_use]
    pub fn path_for(&self, key: &RunKey) -> PathBuf {
        let hash = fnv1a64(&Self::key_record(key));
        self.dir.join(format!("{hash:016x}.run"))
    }

    /// Looks `key` up on disk. Any failure — absent, torn, corrupt,
    /// stale schema, colliding key — is a miss (`None`); the caller
    /// re-simulates and overwrites.
    #[must_use]
    pub fn load(&self, key: &RunKey) -> Option<RunReport> {
        let report = self.try_load(key);
        match &report {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        report
    }

    fn try_load(&self, key: &RunKey) -> Option<RunReport> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        let mut r = RecordReader::new(&text);
        r.expect(STORE_MAGIC).ok()?;
        if r.u32().ok()? != STORE_SCHEMA_VERSION {
            return None; // stale schema: treat as a miss, overwrite later
        }
        r.expect("key").ok()?;
        // Verify the stored key token-for-token against the requested one,
        // so FNV collisions and stale files degrade to misses instead of
        // serving a wrong report.
        let expected = Self::key_record(key);
        for expected_token in expected.split_ascii_whitespace() {
            if r.token().ok()? != expected_token {
                return None;
            }
        }
        r.expect("report").ok()?;
        let report = RunReport::from_record(&mut r).ok()?;
        r.finish().ok()?;
        Some(report)
    }

    /// Persists `key → report`, atomically replacing any existing record.
    /// Best-effort: an I/O failure is counted (see
    /// [`Store::write_errors`]) but never propagated — the report is
    /// already in memory and the run merely stays cold for the next
    /// process.
    pub fn save(&self, key: &RunKey, report: &RunReport) {
        if self.try_save(key, report).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_save(&self, key: &RunKey, report: &RunReport) -> io::Result<()> {
        let mut report_record = RecordWriter::new();
        report.to_record(&mut report_record);
        let text = format!(
            "{STORE_MAGIC} {STORE_SCHEMA_VERSION}\nkey {}\nreport {}\n",
            Self::key_record(key),
            report_record.finish(),
        );
        let final_path = self.path_for(key);
        // Unique temp name per (process, write): concurrent writers never
        // collide, and rename-into-place is atomic on POSIX, so readers
        // only ever see complete records.
        let tmp_path = self.dir.join(format!(
            "{}.tmp.{}.{}",
            final_path
                .file_name()
                .expect("record path has a file name")
                .to_string_lossy(),
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed),
        ));
        fs::write(&tmp_path, text)?;
        let renamed = fs::rename(&tmp_path, &final_path);
        if renamed.is_err() {
            let _ = fs::remove_file(&tmp_path);
        }
        renamed
    }

    /// Number of complete records currently on disk (diagnostics/tests).
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be read.
    pub fn record_count(&self) -> io::Result<usize> {
        Ok(fs::read_dir(&self.dir)?
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_some_and(|ext| ext == "run"))
            .count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentScale;
    use crate::simulator::ItlbChoice;
    use crate::strategy::StrategyKind;
    use cfr_types::{AddressingMode, TlbOrganization};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfr-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_key() -> RunKey {
        RunKey::new(
            "177.mesa",
            &ExperimentScale {
                max_commits: 1000,
                seed: 7,
            },
            StrategyKind::Ia,
            AddressingMode::ViPt,
        )
    }

    fn sample_report() -> RunReport {
        use cfr_energy::EnergyMeter;
        let mut energy = EnergyMeter::new();
        energy.charge_n("itlb_access", 42, 440.5);
        RunReport {
            strategy: StrategyKind::Ia,
            mode: AddressingMode::ViPt,
            committed: 1000,
            cycles: 1234,
            itlb: cfr_mem::TlbStats {
                accesses: 42,
                hits: 40,
                misses: 2,
                invalidations: 0,
            },
            energy,
            breakdown: crate::strategy::LookupBreakdown {
                boundary: 1,
                branch: 1,
            },
            cpu: cfr_cpu::CpuStats::default(),
        }
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = Store::open(&dir).unwrap();
        let (key, report) = (sample_key(), sample_report());
        assert_eq!(store.load(&key), None, "cold store");
        store.save(&key, &report);
        assert_eq!(store.load(&key).as_ref(), Some(&report));
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);
        assert_eq!(store.write_errors(), 0);
        assert_eq!(store.record_count().unwrap(), 1);
        // A second store over the same directory sees it too.
        let other = Store::open(&dir).unwrap();
        assert_eq!(other.load(&key).as_ref(), Some(&report));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_keys_address_different_files() {
        let dir = temp_dir("addressing");
        let store = Store::open(&dir).unwrap();
        let a = sample_key();
        let b = a.with_itlb(ItlbChoice::Mono(TlbOrganization::fully_associative(8)));
        let c = a.with_il1_bytes(2048);
        let d = a.with_page_bytes(16384);
        let paths: Vec<_> = [a, b, c, d].iter().map(|k| store.path_for(k)).collect();
        for (i, p) in paths.iter().enumerate() {
            for q in &paths[i + 1..] {
                assert_ne!(p, q);
            }
        }
        // The address is stable across processes *and* store instances:
        // derived from the record text alone.
        assert_eq!(Store::open(&dir).unwrap().path_for(&a), paths[0]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_and_stale_schema_are_misses() {
        let dir = temp_dir("corruption");
        let store = Store::open(&dir).unwrap();
        let (key, report) = (sample_key(), sample_report());
        store.save(&key, &report);
        let path = store.path_for(&key);

        // Garbage content.
        fs::write(&path, "not a record at all").unwrap();
        assert_eq!(store.load(&key), None);

        // Truncated (torn-looking) record.
        store.save(&key, &report);
        let full = fs::read_to_string(&path).unwrap();
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert_eq!(store.load(&key), None);

        // Stale schema version.
        let stale = full.replacen(
            &format!("{STORE_MAGIC} {STORE_SCHEMA_VERSION}"),
            &format!("{STORE_MAGIC} {}", STORE_SCHEMA_VERSION + 1),
            1,
        );
        fs::write(&path, stale).unwrap();
        assert_eq!(store.load(&key), None, "future/stale schema is a miss");

        // Trailing garbage.
        fs::write(&path, format!("{full} extra")).unwrap();
        assert_eq!(store.load(&key), None);

        // Overwriting repairs it.
        store.save(&key, &report);
        assert_eq!(store.load(&key).as_ref(), Some(&report));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn colliding_file_with_wrong_key_is_a_miss() {
        let dir = temp_dir("collision");
        let store = Store::open(&dir).unwrap();
        let a = sample_key();
        let mut b = a;
        b.strategy = StrategyKind::Base;
        store.save(&b, &sample_report());
        // Simulate an FNV collision: b's record sits at a's address.
        fs::copy(store.path_for(&b), store.path_for(&a)).unwrap();
        assert_eq!(store.load(&a), None, "stored key must match the request");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_files_left_behind() {
        let dir = temp_dir("tmpfiles");
        let store = Store::open(&dir).unwrap();
        store.save(&sample_key(), &sample_report());
        store.save(&sample_key(), &sample_report()); // overwrite path too
        let entries: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(entries.len(), 1, "only the record itself: {entries:?}");
        assert!(entries[0].ends_with(".run"), "{entries:?}");
        assert_eq!(store.record_count().unwrap(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_key_record_round_trips() {
        let resolve = |name: &str| {
            cfr_workload::profiles::all()
                .into_iter()
                .map(|p| p.name)
                .find(|n| *n == name)
        };
        let scale = ExperimentScale {
            max_commits: 123,
            seed: 99,
        };
        let keys = [
            RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::PiPt),
            RunKey::new("254.gap", &scale, StrategyKind::SoLA, AddressingMode::ViVt).with_itlb(
                ItlbChoice::TwoLevel(
                    TlbOrganization::fully_associative(1),
                    TlbOrganization::fully_associative(32),
                    1,
                ),
            ),
            RunKey::new("252.eon", &scale, StrategyKind::Opt, AddressingMode::ViPt)
                .with_il1_bytes(2048)
                .with_page_bytes(65536),
        ];
        for key in keys {
            let record = Store::key_record(&key);
            let mut r = RecordReader::new(&record);
            assert_eq!(RunKey::from_record(&mut r, resolve).unwrap(), key);
            r.finish().unwrap();
        }
        // Unknown profile names fail rather than fabricate a key.
        let record = Store::key_record(&keys[0]).replacen("177.mesa", "000.nope", 1);
        assert!(RunKey::from_record(&mut RecordReader::new(&record), resolve).is_err());
    }
}
