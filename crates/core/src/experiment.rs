//! Reproduction of every table and figure in the paper's evaluation
//! (§4), as reusable functions: the `cfr-bench` binaries print these rows,
//! and the integration tests assert their shapes at reduced scale.
//!
//! Every function here is a *thin plan* over the [`Engine`]: it declares
//! the [`RunKey`]s it needs, lets the engine simulate the missing ones in
//! parallel (deduplicated against everything already simulated), and then
//! assembles rows from the cached reports. Sharing one engine across
//! several tables — as `all_experiments` does — means overlapping runs
//! (e.g. the base VI-PT runs that Table 2, Table 5, Figure 4, and Table 8
//! all need) are simulated exactly once.

use cfr_types::{AddressingMode, TlbOrganization};
use serde::{Deserialize, Serialize};

use crate::engine::{Engine, RunKey};
use crate::simulator::{ItlbChoice, RunReport, SimConfig};
use crate::strategy::StrategyKind;

/// How big to run each experiment. The paper simulated 250 M committed
/// instructions; rates are stationary so smaller runs reproduce the same
/// normalized results (DESIGN.md §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Committed instructions per run.
    pub max_commits: u64,
    /// Walker seed.
    pub seed: u64,
}

impl ExperimentScale {
    /// The default reproduction scale (1/100 of the paper's 250 M).
    #[must_use]
    pub fn full() -> Self {
        Self {
            max_commits: 2_500_000,
            seed: 0x5EED,
        }
    }

    /// A fast scale for CI and integration tests.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            max_commits: 120_000,
            seed: 0x5EED,
        }
    }

    /// Scale factor to extrapolate absolute numbers to the paper's 250 M
    /// instructions (energies and cycles scale linearly in instructions).
    #[must_use]
    pub fn to_paper_factor(&self) -> f64 {
        250e6 / self.max_commits as f64
    }

    /// The simulator configuration this scale denotes (default iTLB).
    #[must_use]
    pub fn config(&self) -> SimConfig {
        let mut cfg = SimConfig::default_config();
        cfg.max_commits = self.max_commits;
        cfg.seed = self.seed;
        cfg
    }

    /// Serializes as `scale <max_commits> <seed>` (persistent run store
    /// codec).
    pub fn to_record(&self, w: &mut cfr_types::RecordWriter) {
        w.token("scale");
        w.u64(self.max_commits);
        w.u64(self.seed);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(
        r: &mut cfr_types::RecordReader<'_>,
    ) -> Result<Self, cfr_types::RecordError> {
        r.expect("scale")?;
        Ok(Self {
            max_commits: r.u64()?,
            seed: r.u64()?,
        })
    }
}

// ---------------------------------------------------------------- Table 2

/// One row of Table 2: benchmark characteristics under the default
/// configuration. Energies in mJ, cycles in raw counts; the bench binary
/// extrapolates to the paper's 250 M-instruction scale for display.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Base VI-PT cycles.
    pub vipt_cycles: u64,
    /// Base VI-PT iTLB energy (mJ).
    pub vipt_energy_mj: f64,
    /// Base VI-VT cycles.
    pub vivt_cycles: u64,
    /// Base VI-VT iTLB energy (mJ).
    pub vivt_energy_mj: f64,
    /// iL1 miss rate.
    pub il1_miss_rate: f64,
    /// Dynamic branches.
    pub branches: u64,
    /// Branches / committed.
    pub branch_fraction: f64,
    /// BOUNDARY page crossings.
    pub crossings_boundary: u64,
    /// BRANCH page crossings.
    pub crossings_branch: u64,
}

/// Reproduces Table 2.
#[must_use]
pub fn table2(engine: &Engine, scale: &ExperimentScale) -> Vec<Table2Row> {
    let keys: Vec<RunKey> = engine
        .profiles()
        .iter()
        .flat_map(|p| {
            [
                RunKey::new(p.name, scale, StrategyKind::Base, AddressingMode::ViPt),
                RunKey::new(p.name, scale, StrategyKind::Base, AddressingMode::ViVt),
            ]
        })
        .collect();
    let reports = engine.run_many(&keys);
    engine
        .profiles()
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(p, pair)| {
            let (vipt, vivt) = (&pair[0], &pair[1]);
            Table2Row {
                name: p.name,
                vipt_cycles: vipt.cycles,
                vipt_energy_mj: vipt.itlb_energy_mj(),
                vivt_cycles: vivt.cycles,
                vivt_energy_mj: vivt.itlb_energy_mj(),
                il1_miss_rate: vipt.cpu.il1.miss_rate(),
                branches: vipt.cpu.branches,
                branch_fraction: vipt.cpu.branches as f64 / vipt.committed as f64,
                crossings_boundary: vipt.cpu.crossings_boundary,
                crossings_branch: vipt.cpu.crossings_branch,
            }
        })
        .collect()
}

// ------------------------------------------------------------ Figures 4/5

/// One benchmark's normalized results for one addressing mode: energy (and
/// cycles) of each scheme relative to the base case (Figure 4's bars, and
/// Figure 5's when `mode == ViVt`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Addressing mode.
    pub mode: AddressingMode,
    /// Normalized iTLB energy per scheme, base = 1.0:
    /// `[HoA, SoCA, SoLA, IA, OPT]`.
    pub energy: [f64; 5],
    /// Normalized execution cycles per scheme, same order.
    pub cycles: [f64; 5],
}

/// The scheme order used by [`Fig4Row`].
pub const FIG4_SCHEMES: [StrategyKind; 5] = [
    StrategyKind::HoA,
    StrategyKind::SoCA,
    StrategyKind::SoLA,
    StrategyKind::Ia,
    StrategyKind::Opt,
];

/// Reproduces Figure 4 (both the VI-PT and VI-VT panels).
#[must_use]
pub fn fig4(engine: &Engine, scale: &ExperimentScale) -> Vec<Fig4Row> {
    fig4_panels(engine, scale, &[AddressingMode::ViPt, AddressingMode::ViVt])
}

/// The shared plan behind [`fig4`] and [`fig5`]: one row per
/// (mode, benchmark), simulating only the requested panels.
fn fig4_panels(engine: &Engine, scale: &ExperimentScale, modes: &[AddressingMode]) -> Vec<Fig4Row> {
    let mut keys = Vec::new();
    for &mode in modes {
        for p in engine.profiles() {
            keys.push(RunKey::new(p.name, scale, StrategyKind::Base, mode));
            for kind in FIG4_SCHEMES {
                keys.push(RunKey::new(p.name, scale, kind, mode));
            }
        }
    }
    let reports = engine.run_many(&keys);
    keys.chunks_exact(6)
        .zip(reports.chunks_exact(6))
        .map(|(group, runs)| {
            let base = &runs[0];
            let mut energy = [0.0; 5];
            let mut cycles = [0.0; 5];
            for (i, r) in runs[1..].iter().enumerate() {
                energy[i] = r.energy_vs(base);
                cycles[i] = r.cycles_vs(base);
            }
            Fig4Row {
                name: group[0].profile,
                mode: group[0].mode,
                energy,
                cycles,
            }
        })
        .collect()
}

/// Reproduces Figure 5: normalized execution cycles for VI-VT (the VI-VT
/// panel of [`fig4`], exposed separately to mirror the paper's figure
/// list — and planned separately, so a standalone Figure 5 run simulates
/// only the VI-VT keys).
#[must_use]
pub fn fig5(engine: &Engine, scale: &ExperimentScale) -> Vec<Fig4Row> {
    fig4_panels(engine, scale, &[AddressingMode::ViVt])
}

// ---------------------------------------------------------------- Table 3

/// Dynamic iTLB lookups for the software schemes, split by cause (VI-PT).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: &'static str,
    /// `[SoCA, SoLA, IA]` × (boundary lookups, branch lookups).
    pub lookups: [(u64, u64); 3],
}

/// Reproduces Table 3.
#[must_use]
pub fn table3(engine: &Engine, scale: &ExperimentScale) -> Vec<Table3Row> {
    const KINDS: [StrategyKind; 3] = [StrategyKind::SoCA, StrategyKind::SoLA, StrategyKind::Ia];
    let keys: Vec<RunKey> = engine
        .profiles()
        .iter()
        .flat_map(|p| KINDS.map(|k| RunKey::new(p.name, scale, k, AddressingMode::ViPt)))
        .collect();
    let reports = engine.run_many(&keys);
    engine
        .profiles()
        .iter()
        .zip(reports.chunks_exact(3))
        .map(|(p, runs)| {
            let mut lookups = [(0, 0); 3];
            for (slot, r) in lookups.iter_mut().zip(runs) {
                *slot = (r.breakdown.boundary, r.breakdown.branch);
            }
            Table3Row {
                name: p.name,
                lookups,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 4

/// Static and dynamic branch statistics.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Static branch sites.
    pub static_total: u64,
    /// Static analyzable sites.
    pub static_analyzable: u64,
    /// Static analyzable sites crossing a page.
    pub static_crossing: u64,
    /// Static analyzable sites staying in-page.
    pub static_in_page: u64,
    /// Dynamic branch instances.
    pub dyn_total: u64,
    /// Dynamic analyzable instances.
    pub dyn_analyzable: u64,
    /// Dynamic analyzable instances crossing a page.
    pub dyn_crossing: u64,
    /// Dynamic analyzable instances staying in-page.
    pub dyn_in_page: u64,
}

/// Reproduces Table 4 (functional walk; no pipeline needed). The walks
/// go through [`Engine::walk_measurements`] — one batched probe of the
/// `walks` namespace for the whole benchmark set — so with a store
/// attached a warm invocation reads every measurement in a single
/// exchange, touching neither the program generator nor the walker.
#[must_use]
pub fn table4(engine: &Engine, scale: &ExperimentScale) -> Vec<Table4Row> {
    let names: Vec<&str> = engine.profiles().iter().map(|p| p.name).collect();
    let measurements = engine.walk_measurements(&names, scale);
    engine
        .profiles()
        .iter()
        .zip(measurements)
        .map(|(p, m)| {
            let (st, dynamic) = (&m.static_branches, &m.functional);
            Table4Row {
                name: p.name,
                static_total: st.total,
                static_analyzable: st.analyzable,
                static_crossing: st.analyzable_crossing,
                static_in_page: st.analyzable_in_page,
                dyn_total: dynamic.branches,
                dyn_analyzable: dynamic.analyzable,
                dyn_crossing: dynamic.analyzable_crossing,
                dyn_in_page: dynamic.analyzable_in_page,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Table 5

/// Reproduces Table 5: branch predictor accuracy per benchmark (from the
/// base VI-PT pipeline run, over all branch kinds).
#[must_use]
pub fn table5(engine: &Engine, scale: &ExperimentScale) -> Vec<(&'static str, f64)> {
    let keys: Vec<RunKey> = engine
        .profiles()
        .iter()
        .map(|p| RunKey::new(p.name, scale, StrategyKind::Base, AddressingMode::ViPt))
        .collect();
    let reports = engine.run_many(&keys);
    engine
        .profiles()
        .iter()
        .zip(reports)
        .map(|(p, r)| (p.name, r.cpu.predictor_accuracy()))
        .collect()
}

// ------------------------------------------------------------- Tables 6/7

/// The four monolithic iTLB configurations of Table 6, in paper order.
#[must_use]
pub fn table6_itlbs() -> [(&'static str, TlbOrganization); 4] {
    [
        ("1", TlbOrganization::fully_associative(1)),
        ("8,FA", TlbOrganization::fully_associative(8)),
        ("16,2w", TlbOrganization::set_associative(16, 2)),
        ("32,FA", TlbOrganization::fully_associative(32)),
    ]
}

/// One benchmark × one iTLB configuration of Table 6.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table6Row {
    /// Benchmark name.
    pub name: &'static str,
    /// iTLB label (`"1"`, `"8,FA"`, `"16,2w"`, `"32,FA"`).
    pub itlb: &'static str,
    /// VI-PT energies (mJ): `[Base, OPT, IA]`.
    pub vipt_energy_mj: [f64; 3],
    /// VI-VT energies (mJ): `[Base, OPT, IA]`.
    pub vivt_energy_mj: [f64; 3],
    /// VI-VT cycles: `[Base, OPT, IA]`.
    pub vivt_cycles: [u64; 3],
    /// VI-PT cycles for IA (feeds Table 7).
    pub vipt_ia_cycles: u64,
}

/// Reproduces Table 6 (and supplies Table 7's column).
#[must_use]
pub fn table6(engine: &Engine, scale: &ExperimentScale) -> Vec<Table6Row> {
    const KINDS: [StrategyKind; 3] = [StrategyKind::Base, StrategyKind::Opt, StrategyKind::Ia];
    let mut keys = Vec::new();
    for (_, org) in table6_itlbs() {
        for p in engine.profiles() {
            for kind in KINDS {
                for mode in [AddressingMode::ViPt, AddressingMode::ViVt] {
                    keys.push(
                        RunKey::new(p.name, scale, kind, mode).with_itlb(ItlbChoice::Mono(org)),
                    );
                }
            }
        }
    }
    let reports = engine.run_many(&keys);
    let mut rows = Vec::new();
    let mut runs = reports.chunks_exact(6);
    for (label, _) in table6_itlbs() {
        for p in engine.profiles() {
            // Chunk layout: [Base×(PT,VT), OPT×(PT,VT), IA×(PT,VT)].
            let chunk = runs.next().expect("one chunk per (itlb, profile)");
            let mut vipt_energy = [0.0; 3];
            let mut vivt_energy = [0.0; 3];
            let mut vivt_cycles = [0; 3];
            for i in 0..3 {
                let (rp, rv) = (&chunk[2 * i], &chunk[2 * i + 1]);
                vipt_energy[i] = rp.itlb_energy_mj();
                vivt_energy[i] = rv.itlb_energy_mj();
                vivt_cycles[i] = rv.cycles;
            }
            rows.push(Table6Row {
                name: p.name,
                itlb: label,
                vipt_energy_mj: vipt_energy,
                vivt_energy_mj: vivt_energy,
                vivt_cycles,
                vipt_ia_cycles: chunk[4].cycles,
            });
        }
    }
    rows
}

/// Reproduces Table 7: IA (VI-PT) execution cycles across iTLB sizes.
/// Returns `(benchmark, [cycles for 1, 8FA, 16x2, 32FA])`.
#[must_use]
pub fn table7(engine: &Engine, scale: &ExperimentScale) -> Vec<(&'static str, [u64; 4])> {
    let rows = table6(engine, scale);
    engine
        .profiles()
        .iter()
        .map(|p| {
            let mut cycles = [0u64; 4];
            for (i, (label, _)) in table6_itlbs().iter().enumerate() {
                cycles[i] = rows
                    .iter()
                    .find(|r| r.name == p.name && r.itlb == *label)
                    .expect("table6 covers the matrix")
                    .vipt_ia_cycles;
            }
            (p.name, cycles)
        })
        .collect()
}

// ---------------------------------------------------------------- Fig 6

/// One benchmark's two-level-vs-monolithic comparison (Figure 6).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Configuration label (`"1+32"` or `"32+96"`).
    pub config: &'static str,
    /// Two-level base energy normalized to the monolithic-IA reference.
    pub energy_ratio: f64,
    /// Two-level base cycles normalized to the monolithic-IA reference.
    pub cycle_ratio: f64,
}

/// Reproduces Figure 6: serial two-level iTLBs (base execution) against
/// monolithic iTLBs running IA — (1+32) vs mono-32+IA, and (32+96) vs
/// mono-128+IA. Evaluated on VI-PT, where the iTLB is exercised per fetch.
#[must_use]
pub fn fig6(engine: &Engine, scale: &ExperimentScale) -> Vec<Fig6Row> {
    let combos = [
        (
            "1+32",
            ItlbChoice::TwoLevel(
                TlbOrganization::fully_associative(1),
                TlbOrganization::fully_associative(32),
                1,
            ),
            TlbOrganization::fully_associative(32),
        ),
        (
            "32+96",
            ItlbChoice::TwoLevel(
                TlbOrganization::fully_associative(32),
                TlbOrganization::fully_associative(96),
                1,
            ),
            TlbOrganization::fully_associative(128),
        ),
    ];
    let mut keys = Vec::new();
    for (_, two_level, mono) in combos {
        for p in engine.profiles() {
            keys.push(
                RunKey::new(p.name, scale, StrategyKind::Base, AddressingMode::ViPt)
                    .with_itlb(two_level),
            );
            keys.push(
                RunKey::new(p.name, scale, StrategyKind::Ia, AddressingMode::ViPt)
                    .with_itlb(ItlbChoice::Mono(mono)),
            );
        }
    }
    let reports = engine.run_many(&keys);
    let mut rows = Vec::new();
    let mut runs = reports.chunks_exact(2);
    for (label, _, _) in combos {
        for p in engine.profiles() {
            let pair = runs.next().expect("one pair per (combo, profile)");
            let (two, reference) = (&pair[0], &pair[1]);
            rows.push(Fig6Row {
                name: p.name,
                config: label,
                energy_ratio: two.itlb_energy_mj() / reference.itlb_energy_mj(),
                cycle_ratio: two.cycles as f64 / reference.cycles as f64,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Table 8

/// One benchmark's PI-PT study (Table 8): energy (mJ) and cycles for the
/// four configurations the paper compares.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table8Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Base PI-PT (energy mJ, cycles).
    pub pipt_base: (f64, u64),
    /// PI-PT with IA.
    pub pipt_ia: (f64, u64),
    /// Base VI-PT.
    pub vipt_base: (f64, u64),
    /// Base VI-VT.
    pub vivt_base: (f64, u64),
}

/// Reproduces Table 8.
#[must_use]
pub fn table8(engine: &Engine, scale: &ExperimentScale) -> Vec<Table8Row> {
    let keys: Vec<RunKey> = engine
        .profiles()
        .iter()
        .flat_map(|p| {
            [
                RunKey::new(p.name, scale, StrategyKind::Base, AddressingMode::PiPt),
                RunKey::new(p.name, scale, StrategyKind::Ia, AddressingMode::PiPt),
                RunKey::new(p.name, scale, StrategyKind::Base, AddressingMode::ViPt),
                RunKey::new(p.name, scale, StrategyKind::Base, AddressingMode::ViVt),
            ]
        })
        .collect();
    let reports = engine.run_many(&keys);
    engine
        .profiles()
        .iter()
        .zip(reports.chunks_exact(4))
        .map(|(p, runs)| {
            let e = |r: &RunReport| (r.itlb_energy_mj(), r.cycles);
            Table8Row {
                name: p.name,
                pipt_base: e(&runs[0]),
                pipt_ia: e(&runs[1]),
                vipt_base: e(&runs[2]),
                vivt_base: e(&runs[3]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiments over the six full profiles are exercised (at quick scale)
    // by the integration tests in `tests/`; here we keep one smoke test per
    // shape helper that doesn't need a pipeline.

    #[test]
    fn scale_factors() {
        let s = ExperimentScale::full();
        assert!((s.to_paper_factor() - 100.0).abs() < 1e-9);
        assert!(ExperimentScale::quick().max_commits < s.max_commits);
    }

    #[test]
    fn table6_itlb_list_matches_paper() {
        let list = table6_itlbs();
        assert_eq!(list.len(), 4);
        assert_eq!(list[0].1.entries, 1);
        assert_eq!(list[2].1.associativity, 2);
        assert_eq!(list[3].1.entries, 32);
    }

    #[test]
    fn table4_runs_without_pipeline() {
        let engine = Engine::new();
        let rows = table4(
            &engine,
            &ExperimentScale {
                max_commits: 20_000,
                seed: 1,
            },
        );
        assert_eq!(rows.len(), 6);
        assert_eq!(engine.simulated_runs(), 0, "table4 needs no pipeline runs");
        for r in rows {
            assert!(r.static_analyzable <= r.static_total);
            assert_eq!(r.static_in_page + r.static_crossing, r.static_analyzable);
            assert_eq!(r.dyn_in_page + r.dyn_crossing, r.dyn_analyzable);
        }
    }
}
