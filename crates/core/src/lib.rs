//! # cfr-core
//!
//! The paper's contribution: **Current Frame Register (CFR) mechanisms for
//! saving instruction-TLB energy** (Kadayif et al., MICRO 2002).
//!
//! One translation — `<VPN, PFN, protection bits>` for the page currently
//! executing — lives in the [`Cfr`] register. As long as fetches stay on
//! that page the physical address is formed directly from the CFR and the
//! iTLB is never consulted. Six [`StrategyKind`]s decide *when* the CFR can
//! be trusted:
//!
//! | kind | mechanism |
//! |------|-----------|
//! | [`StrategyKind::Base`]  | no CFR: the iTLB serves every translation demand |
//! | [`StrategyKind::Opt`]   | oracle lower bound: iTLB only on a true page change |
//! | [`StrategyKind::HoA`]   | hardware comparator on every fetch (VAX-style) |
//! | [`StrategyKind::SoCA`]  | compiler: boundary branches + lookup at *every* branch target |
//! | [`StrategyKind::SoLA`]  | SoCA + statically-marked in-page branches skip the lookup |
//! | [`StrategyKind::Ia`]    | boundary branches + BTB-target page compare (Figure 3) |
//!
//! The strategies implement `cfr-cpu`'s `FetchTranslator`, so any of them
//! can drive the out-of-order core under any iL1 addressing mode (PI-PT,
//! VI-PT, VI-VT) and any iTLB organization (monolithic or two-level).
//!
//! # The experiment engine
//!
//! Experiments do not call the simulator directly: they describe the runs
//! they need as [`RunKey`]s — *(benchmark, scale, strategy, mode, iTLB)* —
//! and hand them to an [`Engine`], which
//!
//! - **memoizes program generation**: each benchmark's synthetic program is
//!   generated once per engine and shared via `Arc`
//!   (`cfr_workload::ProgramCache`),
//! - **deduplicates runs**: identical keys — within a batch, across
//!   batches, and across experiments sharing the engine — simulate exactly
//!   once, and
//! - **parallelizes**: missing runs execute on all cores via rayon, with
//!   results reassembled in request order so parallel output is
//!   bit-identical to serial execution.
//!
//! Every `table*`/`fig*` function in this crate is a thin plan over the
//! engine; `cfr-bench`'s `all_experiments` shares one engine across all
//! ten tables/figures, so their heavily-overlapping run sets collapse to
//! one simulation per unique key.
//!
//! ```
//! use cfr_core::{Engine, ExperimentScale, RunKey, StrategyKind};
//! use cfr_types::AddressingMode;
//!
//! let engine = Engine::new();
//! let scale = ExperimentScale { max_commits: 20_000, seed: 0x5EED }; // keep the doctest quick
//! let base = RunKey::new("177.mesa", &scale, StrategyKind::Base, AddressingMode::ViPt);
//! let ia = RunKey::new("177.mesa", &scale, StrategyKind::Ia, AddressingMode::ViPt);
//! let reports = engine.run_many(&[base, ia, base]); // duplicate key: served from cache
//! assert_eq!(engine.simulated_runs(), 2);
//! // The headline result: IA eliminates the overwhelming majority of
//! // iTLB energy on a VI-PT iL1.
//! assert!(reports[1].itlb_energy_mj() < 0.2 * reports[0].itlb_energy_mj());
//! ```

mod cfr;
pub mod compiler;
mod engine;
mod experiment;
pub mod scenario;
mod simulator;
mod store;
mod strategy;

pub use cfr::Cfr;
pub use cfr_types::net::{
    LayeredStore, RemoteStore, ServerConfig, StoreServer, StoreStats, DEFAULT_DAEMON_ADDR,
    STORE_ADDR_ENV,
};
pub use cfr_types::store::{
    ArtifactStore, ClaimOutcome, GcPolicy, GcReport, ShardOccupancy, StoreBackend, StoreLock,
    DEFAULT_STORE_DIR, LOCK_FILE_NAME, NS_PROGRAMS, NS_RUNS, NS_SCENARIOS, NS_TRACES, NS_WALKS,
    SHARD_COUNT, STORE_DIR_ENV, STORE_FORMAT_VERSION, STORE_MAX_AGE_ENV, STORE_MAX_BYTES_ENV,
};
pub use engine::{Engine, NamespaceTraffic, RunKey, StoreSummary};
pub use experiment::{
    fig4, fig5, fig6, table2, table3, table4, table5, table6, table6_itlbs, table7, table8,
    ExperimentScale, Fig4Row, Fig6Row, Table2Row, Table3Row, Table4Row, Table6Row, Table8Row,
    FIG4_SCHEMES,
};
pub use scenario::{
    ScenarioBinary, ScenarioConfig, ScenarioProc, ScenarioReport, TlbMode, QUANTUM_INFINITE,
};
pub use simulator::{ExecBackend, ItlbChoice, RunReport, SimConfig, Simulator, BACKEND_ENV};
pub use store::{RunClaim, Store};
pub use strategy::{ItlbModel, LookupBreakdown, Strategy, StrategyKind};
