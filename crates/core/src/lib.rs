//! # cfr-core
//!
//! The paper's contribution: **Current Frame Register (CFR) mechanisms for
//! saving instruction-TLB energy** (Kadayif et al., MICRO 2002).
//!
//! One translation — `<VPN, PFN, protection bits>` for the page currently
//! executing — lives in the [`Cfr`] register. As long as fetches stay on
//! that page the physical address is formed directly from the CFR and the
//! iTLB is never consulted. Six [`StrategyKind`]s decide *when* the CFR can
//! be trusted:
//!
//! | kind | mechanism |
//! |------|-----------|
//! | [`StrategyKind::Base`]  | no CFR: the iTLB serves every translation demand |
//! | [`StrategyKind::Opt`]   | oracle lower bound: iTLB only on a true page change |
//! | [`StrategyKind::HoA`]   | hardware comparator on every fetch (VAX-style) |
//! | [`StrategyKind::SoCA`]  | compiler: boundary branches + lookup at *every* branch target |
//! | [`StrategyKind::SoLA`]  | SoCA + statically-marked in-page branches skip the lookup |
//! | [`StrategyKind::Ia`]    | boundary branches + BTB-target page compare (Figure 3) |
//!
//! The strategies implement `cfr-cpu`'s `FetchTranslator`, so any of them
//! can drive the out-of-order core under any iL1 addressing mode (PI-PT,
//! VI-PT, VI-VT) and any iTLB organization (monolithic or two-level).
//!
//! ```
//! use cfr_core::{SimConfig, Simulator, StrategyKind};
//! use cfr_types::AddressingMode;
//! use cfr_workload::profiles;
//!
//! let mut cfg = SimConfig::default_config();
//! cfg.max_commits = 20_000; // keep the doctest quick
//! let base = Simulator::run_profile(&profiles::mesa(), &cfg, StrategyKind::Base, AddressingMode::ViPt);
//! let ia = Simulator::run_profile(&profiles::mesa(), &cfg, StrategyKind::Ia, AddressingMode::ViPt);
//! // The headline result: IA eliminates the overwhelming majority of
//! // iTLB energy on a VI-PT iL1.
//! assert!(ia.itlb_energy_mj() < 0.2 * base.itlb_energy_mj());
//! ```

mod cfr;
pub mod compiler;
mod experiment;
mod simulator;
mod strategy;

pub use cfr::Cfr;
pub use experiment::{
    fig4, fig5, fig6, table2, table3, table4, table5, table6, table6_itlbs, table7, table8,
    ExperimentScale, Fig4Row, Fig6Row, Table2Row, Table3Row, Table4Row, Table6Row, Table8Row,
    FIG4_SCHEMES,
};
pub use simulator::{ItlbChoice, RunReport, SimConfig, Simulator};
pub use strategy::{ItlbModel, LookupBreakdown, Strategy, StrategyKind};
