//! # cfr-mem
//!
//! The memory-hierarchy substrate of `cfr-sim`: set-associative write-back
//! caches, single- and two-level TLBs, a page table, and a DRAM latency
//! model — everything the paper's Table 1 configures.
//!
//! These are *behavioural* models: they answer hit/miss, produce
//! translations, evictions and latencies, and count events. Energy is
//! charged by the caller using `cfr-energy`, keyed off the same
//! [`cfr_types::TlbOrganization`] / [`cfr_types::CacheOrganization`] shapes,
//! so behaviour and energy can never describe different structures.
//!
//! ```
//! use cfr_mem::{Cache, CacheConfig, PageTable, Tlb, TlbConfig};
//! use cfr_types::{Protection, TlbOrganization, Vpn};
//!
//! // The paper's default 32-entry fully-associative iTLB.
//! let mut itlb = Tlb::new(TlbConfig {
//!     organization: TlbOrganization::fully_associative(32),
//!     miss_penalty: 50,
//! });
//! let mut pt = PageTable::new();
//! let first = itlb.lookup(Vpn::new(7), &mut pt, Protection::code());
//! assert!(!first.hit);
//! let again = itlb.lookup(Vpn::new(7), &mut pt, Protection::code());
//! assert!(again.hit);
//! assert_eq!(first.pfn, again.pfn);
//! ```

mod cache;
mod dram;
mod page_table;
#[cfg(test)]
mod proptests;
mod tlb;

pub use cache::{AccessKind, AccessResult, Cache, CacheConfig, CacheStats};
pub use cfr_types::AddressingMode;
pub use dram::{Dram, DramConfig};
pub use page_table::PageTable;
pub use tlb::{Tlb, TlbConfig, TlbLookup, TlbStats, TwoLevelLookup, TwoLevelTlb};
