//! # cfr-mem
//!
//! The memory-hierarchy substrate of `cfr-sim`: set-associative write-back
//! caches, single- and two-level TLBs, a page table, and a DRAM latency
//! model — everything the paper's Table 1 configures.
//!
//! These are *behavioural* models: they answer hit/miss, produce
//! translations, evictions and latencies, and count events. Energy is
//! charged by the caller using `cfr-energy`, keyed off the same
//! [`cfr_types::TlbOrganization`] / [`cfr_types::CacheOrganization`] shapes,
//! so behaviour and energy can never describe different structures.
//!
//! ```
//! use cfr_mem::{Cache, CacheConfig, PageTable, Tlb, TlbConfig};
//! use cfr_types::{Protection, TlbOrganization, Vpn};
//!
//! // The paper's default 32-entry fully-associative iTLB.
//! let mut itlb = Tlb::new(TlbConfig {
//!     organization: TlbOrganization::fully_associative(32),
//!     miss_penalty: 50,
//! });
//! let mut pt = PageTable::new();
//! let first = itlb.lookup(Vpn::new(7), &mut pt, Protection::code());
//! assert!(!first.hit);
//! let again = itlb.lookup(Vpn::new(7), &mut pt, Protection::code());
//! assert!(again.hit);
//! assert_eq!(first.pfn, again.pfn);
//! ```

mod cache;
mod dram;
mod page_table;
#[cfg(test)]
mod proptests;
mod tlb;

/// Pulls the host cache line holding `r` toward L1 without reading it.
///
/// Used by the `prefetch` methods of [`Cache`] and [`Tlb`]: the pipeline
/// issues several *independent* metadata probes per simulated fetch (iL1
/// tags + iTLB keys; dL1 + dTLB on the data side), and starting all their
/// host-memory loads before any lookup runs lets the host misses overlap
/// instead of serializing. Purely a host-side hint: no simulator state is
/// read or written, so modeled behaviour is untouched on every
/// architecture (and this is a no-op off x86_64).
#[inline(always)]
pub(crate) fn prefetch_read<T>(r: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch instructions have no memory effects and SSE is
    // baseline on x86_64; any pointer value is allowed.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(std::ptr::from_ref(r).cast::<i8>());
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = r;
}

pub use cache::{AccessKind, AccessResult, Cache, CacheConfig, CacheStats};
pub use cfr_types::AddressingMode;
pub use dram::{Dram, DramConfig};
pub use page_table::PageTable;
pub use tlb::{Tlb, TlbConfig, TlbLookup, TlbStats, TwoLevelLookup, TwoLevelTlb};
