//! DRAM latency model.
//!
//! The paper's Table 1: 128 MB divided into 32 MB banks, 100-cycle access
//! latency. The model keeps per-bank access counters (useful for extension
//! studies) but charges a flat latency — exactly the fidelity sim-outorder's
//! `mem_access_latency` provides.

use serde::{Deserialize, Serialize};

/// DRAM configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Bank size in bytes.
    pub bank_bytes: u64,
    /// Access latency in cycles.
    pub latency: u32,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            capacity_bytes: 128 * 1024 * 1024,
            bank_bytes: 32 * 1024 * 1024,
            latency: 100,
        }
    }
}

/// The DRAM model.
#[derive(Clone, Debug)]
pub struct Dram {
    cfg: DramConfig,
    bank_accesses: Vec<u64>,
}

impl Dram {
    /// Builds a DRAM from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the bank size is zero or exceeds the capacity.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        assert!(
            cfg.bank_bytes > 0 && cfg.bank_bytes <= cfg.capacity_bytes,
            "bank size must be positive and no larger than capacity"
        );
        let banks = cfg.capacity_bytes.div_ceil(cfg.bank_bytes) as usize;
        Self {
            cfg,
            bank_accesses: vec![0; banks],
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Number of banks.
    #[must_use]
    pub fn banks(&self) -> usize {
        self.bank_accesses.len()
    }

    /// Performs one access, returning its latency in cycles.
    pub fn access(&mut self, addr: u64) -> u32 {
        let bank = (addr / self.cfg.bank_bytes) as usize % self.bank_accesses.len();
        self.bank_accesses[bank] += 1;
        self.cfg.latency
    }

    /// Total accesses across banks.
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.bank_accesses.iter().sum()
    }

    /// Accesses to one bank.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank_accesses(&self, bank: usize) -> u64 {
        self.bank_accesses[bank]
    }
}

impl Default for Dram {
    fn default() -> Self {
        Self::new(DramConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let d = Dram::default();
        assert_eq!(d.banks(), 4);
        assert_eq!(d.config().latency, 100);
    }

    #[test]
    fn access_returns_latency_and_counts() {
        let mut d = Dram::default();
        assert_eq!(d.access(0), 100);
        assert_eq!(d.access(33 * 1024 * 1024), 100);
        assert_eq!(d.total_accesses(), 2);
        assert_eq!(d.bank_accesses(0), 1);
        assert_eq!(d.bank_accesses(1), 1);
    }

    #[test]
    fn addresses_beyond_capacity_wrap() {
        let mut d = Dram::default();
        d.access(u64::MAX);
        assert_eq!(d.total_accesses(), 1);
    }

    #[test]
    #[should_panic(expected = "bank size")]
    fn zero_bank_panics() {
        let _ = Dram::new(DramConfig {
            capacity_bytes: 1024,
            bank_bytes: 0,
            latency: 1,
        });
    }
}
