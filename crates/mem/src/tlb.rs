//! Translation lookaside buffers: monolithic and two-level.

use cfr_types::{Pfn, Protection, RecordError, RecordReader, RecordWriter, TlbOrganization, Vpn};
use serde::{Deserialize, Serialize};

use crate::PageTable;

/// Configuration of one TLB level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Shape (entries, associativity).
    pub organization: TlbOrganization,
    /// Page-walk penalty charged on a miss, in cycles (Table 1: 50).
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// The paper's default iTLB: 32 entries, fully associative, 50-cycle
    /// miss penalty.
    #[must_use]
    pub fn default_itlb() -> Self {
        Self {
            organization: TlbOrganization::fully_associative(32),
            miss_penalty: 50,
        }
    }

    /// The paper's default dTLB: 128 entries, fully associative, 50-cycle
    /// miss penalty.
    #[must_use]
    pub fn default_dtlb() -> Self {
        Self {
            organization: TlbOrganization::fully_associative(128),
            miss_penalty: 50,
        }
    }
}

/// Outcome of one TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbLookup {
    /// Whether the translation was resident.
    pub hit: bool,
    /// The translation (filled from the page table on a miss).
    pub pfn: Pfn,
    /// Protection bits of the page.
    pub prot: Protection,
    /// Cycles charged beyond the (caller-owned) lookup cycle: 0 on a hit,
    /// the miss penalty on a miss.
    pub penalty: u32,
    /// Whether the translation's protection refused the requested access
    /// (e.g. an instruction fetch of a page allocated read/write) — the
    /// fault is *reported*, never silently a hit; see
    /// [`TlbStats::protection_faults`].
    pub fault: bool,
}

/// Access/hit/miss counters for one TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (and were refilled).
    pub misses: u64,
    /// Entries invalidated by OS action.
    pub invalidations: u64,
    /// Lookups whose translation's protection refused the requested
    /// access (§3.2: the OS owns the bits; a wrong-protection access must
    /// surface as a fault, not a silent hit).
    pub protection_faults: u64,
}

impl TlbStats {
    /// Miss rate in [0, 1]; 0 for an untouched TLB.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Serializes as `tlbstats2 <accesses> <hits> <misses> <invalidations>
    /// <protection_faults>` (persistent artifact store codec — the
    /// vendored `serde` is a no-op).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("tlbstats2");
        w.u64(self.accesses);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.invalidations);
        w.u64(self.protection_faults);
    }

    /// Parses a [`Self::to_record`] stream. The pre-fault-model `tlbstats`
    /// tag (4 counters, PR 2's run store) is still accepted with
    /// `protection_faults = 0`, so records migrated from a v1 store keep
    /// serving warm.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        let tag = r.token()?;
        if tag != "tlbstats" && tag != "tlbstats2" {
            return Err(RecordError::new(format!(
                "expected tag \"tlbstats2\", found {tag:?}"
            )));
        }
        let mut stats = Self {
            accesses: r.u64()?,
            hits: r.u64()?,
            misses: r.u64()?,
            invalidations: r.u64()?,
            protection_faults: 0,
        };
        if tag == "tlbstats2" {
            stats.protection_faults = r.u64()?;
        }
        Ok(stats)
    }
}

/// Sentinel for [`Tlb::mru`] slots: no last-hit entry to fast-path through.
const NO_MRU: usize = usize::MAX;

/// How many recently-hit entries the fast path checks before the way
/// scan. One would capture a single stream's page locality; a data TLB
/// interleaves several streams (stack, globals, heap), so a short
/// recency list is needed to keep the fast-path hit rate high.
const MRU_SLOTS: usize = 4;

/// Key mirror value for an invalid way (no real VPN reaches 2^64 - 1).
const NO_KEY: u64 = u64::MAX;

/// Bit position of the ASID tag inside a way key. Virtual addresses stay
/// below 2^60 and pages are ≥ 4 KiB, so VPNs fit comfortably below bit 48;
/// the top 16 bits of the key are free for an address-space id. ASID 0
/// (the reset value) leaves keys identical to the untagged layout, so a
/// single-process simulation is bit-for-bit unchanged.
const ASID_SHIFT: u32 = 48;

/// A set-associative (or fully-associative) TLB with true LRU replacement.
///
/// Lookups check the **last-hit entry first** (an MRU fast path): the
/// paper's thesis is that instruction streams have extreme page locality,
/// so the vast majority of lookups land on the same entry as the previous
/// one and skip the associative way scan entirely. The fast path performs
/// exactly the bookkeeping the scan would (tick, LRU stamp, hit counter),
/// so replacement behaviour and statistics are bit-identical.
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    /// VPN per way ([`NO_KEY`] = invalid), `sets * ways`, row-major by
    /// set: the way scan streams over this dense `u64` array — which the
    /// compiler can vectorize — and validity is the key itself. This is
    /// the structure-of-arrays layout the cache adopted from here: the
    /// old `TlbEntry { vpn, pfn, prot, valid, lru }` structs are gone,
    /// replaced by these parallel rows, so a scan touches only the bytes
    /// it compares.
    keys: Vec<u64>,
    /// LRU stamp per way, parallel to `keys`. (A dTLB is 128-way fully
    /// associative — too wide for the cache's packed per-set masks, so
    /// stamps stay the replacement mechanism here.)
    lru: Vec<u64>,
    /// Translation payload per way, parallel to `keys`; read only after a
    /// key matches.
    pfns: Vec<Pfn>,
    prots: Vec<Protection>,
    ways: usize,
    sets: u64,
    /// `sets - 1` when the set count is a power of two (the common case),
    /// letting [`Tlb::set_of`] mask instead of divide.
    set_mask: Option<u64>,
    /// Indices into `entries` of the most recently hit (or refilled)
    /// entries, most recent first; [`NO_MRU`] marks unused slots.
    mru: [usize; MRU_SLOTS],
    /// Current address-space id, pre-shifted to [`ASID_SHIFT`] and OR-ed
    /// into every key compare and store. 0 (the default) reproduces the
    /// untagged single-process layout exactly.
    asid_tag: u64,
    /// Extra cycles charged when a miss finds the page unmapped (the OS
    /// must service a demand fault before the walk can complete); 0 (the
    /// default) reproduces the fault-free cost model.
    demand_fault_penalty: u32,
    /// Misses that required a demand fault (page not yet mapped). Kept
    /// out of [`TlbStats`] so the persistent record codec is unchanged.
    demand_faults: u64,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Self {
        let ways = cfg.organization.associativity as usize;
        let sets = u64::from(cfg.organization.sets());
        Self {
            cfg,
            keys: vec![NO_KEY; ways * sets as usize],
            lru: vec![0; ways * sets as usize],
            pfns: vec![Pfn::default(); ways * sets as usize],
            prots: vec![Protection::default(); ways * sets as usize],
            ways,
            sets,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            mru: [NO_MRU; MRU_SLOTS],
            asid_tag: 0,
            demand_fault_penalty: 0,
            demand_faults: 0,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration this TLB was built with.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Shape of this TLB (for energy lookups).
    #[must_use]
    pub fn organization(&self) -> TlbOrganization {
        self.cfg.organization
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, vpn: Vpn) -> usize {
        match self.set_mask {
            Some(mask) => (vpn.raw() & mask) as usize,
            None => (vpn.raw() % self.sets) as usize,
        }
    }

    /// The way key for `vpn` under the current ASID: the tag lives in the
    /// otherwise-unused top bits, so one `u64` compare still covers
    /// validity, VPN match, *and* address-space match.
    #[inline]
    fn key(&self, vpn: Vpn) -> u64 {
        debug_assert!(vpn.raw() < 1 << ASID_SHIFT, "VPN overflows the ASID tag");
        self.asid_tag | vpn.raw()
    }

    /// Switches the TLB to address space `asid`. Resident entries of other
    /// address spaces stay resident but can no longer match (their keys
    /// carry a different tag) — the ASID-tagged alternative to a full
    /// flush on context switch. ASID 0 is the reset state.
    pub fn set_asid(&mut self, asid: u16) {
        self.asid_tag = u64::from(asid) << ASID_SHIFT;
    }

    /// The current address-space id.
    #[must_use]
    pub fn asid(&self) -> u16 {
        (self.asid_tag >> ASID_SHIFT) as u16
    }

    /// Sets the extra miss cost charged when the missing page is not yet
    /// mapped (a demand fault trapping to the OS before the walk).
    pub fn set_demand_fault_penalty(&mut self, cycles: u32) {
        self.demand_fault_penalty = cycles;
    }

    /// Misses that demand-faulted (page unmapped at lookup time).
    #[must_use]
    pub fn demand_faults(&self) -> u64 {
        self.demand_faults
    }

    /// Looks `vpn` up; on a miss, walks `page_table` and refills. `prot`
    /// plays two roles: it is the protection requested for a first-touch
    /// allocation — an iTLB passes [`Protection::code`], a dTLB
    /// [`Protection::data`] (the page table's "first touch wins" makes
    /// whatever is passed here permanent) — *and* the access right this
    /// lookup demands. A translation whose resident protection lacks any
    /// requested bit (an instruction fetch of a data page, a write to a
    /// code page) reports a **protection fault**: the lookup still
    /// returns the translation, but [`TlbLookup::fault`] is set and
    /// [`TlbStats::protection_faults`] counts it instead of the access
    /// silently passing as an ordinary hit.
    #[inline]
    pub fn lookup(&mut self, vpn: Vpn, page_table: &mut PageTable, prot: Protection) -> TlbLookup {
        if let Some((pfn, resident_prot)) = self.access(vpn) {
            let fault = self.note_fault(resident_prot, prot);
            return TlbLookup {
                hit: true,
                pfn,
                prot: resident_prot,
                penalty: 0,
                fault,
            };
        }
        // A miss on an unmapped page demand-faults: the OS maps the page
        // (the `translate` below) and the configured trap latency is
        // charged on top of the walk.
        let mut penalty = self.cfg.miss_penalty;
        if self.demand_fault_penalty > 0 && page_table.probe(vpn).is_none() {
            self.demand_faults += 1;
            penalty += self.demand_fault_penalty;
        }
        let (pfn, translated_prot) = page_table.translate(vpn, prot);
        self.refill(vpn, pfn, translated_prot);
        let fault = self.note_fault(translated_prot, prot);
        TlbLookup {
            hit: false,
            pfn,
            prot: translated_prot,
            penalty,
            fault,
        }
    }

    /// Checks `granted` against the `requested` access rights, counting a
    /// protection fault when any requested bit is missing.
    fn note_fault(&mut self, granted: Protection, requested: Protection) -> bool {
        let fault = !granted.permits(requested);
        if fault {
            self.stats.protection_faults += 1;
        }
        fault
    }

    /// Probe-style counted lookup: charges an access, updates LRU and
    /// hit/miss counters, but **never** walks the page table — a miss
    /// returns `None` and leaves the TLB (and the page table) untouched.
    ///
    /// This is the miss path a serial multi-level hierarchy needs: a
    /// level-1 miss must fall through to level 2 *without* a premature
    /// page walk; the caller refills via [`Tlb::install`] from whatever
    /// level (or walk) actually produced the translation.
    #[inline]
    pub fn access(&mut self, vpn: Vpn) -> Option<(Pfn, Protection)> {
        let key = self.key(vpn);
        self.tick += 1;
        self.stats.accesses += 1;
        // MRU fast path: a matching VPN is always in its own set, so
        // checking the recently-hit entries directly is sound for any
        // geometry. An invalid way's key is `NO_KEY`, which no real key
        // equals, so one compare covers validity, VPN, and ASID (and the
        // `get` bounds check covers unused `NO_MRU` slots).
        for pi in 0..MRU_SLOTS {
            let cand = self.mru[pi];
            if self.keys.get(cand) == Some(&key) {
                self.lru[cand] = self.tick;
                let hit = (self.pfns[cand], self.prots[cand]);
                if pi != 0 {
                    self.mru[..=pi].rotate_right(1);
                }
                self.stats.hits += 1;
                return Some(hit);
            }
        }
        let set = self.set_of(vpn);
        let base = set * self.ways;
        if let Some(off) = self.keys[base..base + self.ways]
            .iter()
            .position(|&k| k == key)
        {
            let i = base + off;
            self.lru[i] = self.tick;
            let hit = (self.pfns[i], self.prots[i]);
            self.promote_mru(i);
            self.stats.hits += 1;
            return Some(hit);
        }
        self.stats.misses += 1;
        None
    }

    /// Begins pulling `vpn`'s set metadata (key row and stamp row) toward
    /// the host caches without touching any simulator state — the TLB half
    /// of the batched-probe pattern (see [`crate::Cache::prefetch`]).
    /// Architecturally a no-op.
    #[inline]
    pub fn prefetch(&self, vpn: Vpn) {
        let base = self.set_of(vpn) * self.ways;
        crate::prefetch_read(&self.keys[base]);
        crate::prefetch_read(&self.lru[base]);
    }

    /// Moves entry index `i` to the front of the MRU list (inserting it
    /// if absent, dropping the oldest slot).
    #[inline]
    fn promote_mru(&mut self, i: usize) {
        if self.mru[0] == i {
            return;
        }
        let mut prev = i;
        for slot in &mut self.mru {
            std::mem::swap(slot, &mut prev);
            if prev == i {
                break;
            }
        }
    }

    /// Replaces the LRU victim of `vpn`'s set (or updates a resident
    /// entry) without touching any counter — shared by the miss-path
    /// refill and [`Tlb::install`].
    fn refill(&mut self, vpn: Vpn, pfn: Pfn, prot: Protection) {
        let key = self.key(vpn);
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let tick = self.tick;
        let keys_row = &self.keys[base..base + self.ways];
        if let Some(off) = keys_row.iter().position(|&k| k == key) {
            let i = base + off;
            self.pfns[i] = pfn;
            self.prots[i] = prot;
            self.lru[i] = tick;
            self.promote_mru(i);
            return;
        }
        // Victim: the first invalid way if any, else the first true-LRU
        // way. Invalid-way preference is explicit (the old
        // `min_by_key(lru + 1)` encoding wrapped if `lru == u64::MAX`).
        let victim = keys_row
            .iter()
            .position(|&k| k == NO_KEY)
            .unwrap_or_else(|| {
                let lru_row = &self.lru[base..base + self.ways];
                let mut min = 0;
                for (i, &stamp) in lru_row.iter().enumerate().skip(1) {
                    if stamp < lru_row[min] {
                        min = i;
                    }
                }
                min
            });
        let i = base + victim;
        self.keys[i] = key;
        self.pfns[i] = pfn;
        self.prots[i] = prot;
        self.lru[i] = tick;
        self.promote_mru(i);
    }

    /// Refills an entry without counting an access (used by a two-level TLB
    /// to install an L2-provided translation into L1).
    pub fn install(&mut self, vpn: Vpn, pfn: Pfn, prot: Protection) {
        self.tick += 1;
        self.refill(vpn, pfn, prot);
    }

    /// Whether `vpn` is resident (under the current ASID), without
    /// touching LRU or stats.
    #[must_use]
    pub fn probe(&self, vpn: Vpn) -> Option<Pfn> {
        let key = self.key(vpn);
        let set = self.set_of(vpn);
        let base = set * self.ways;
        self.keys[base..base + self.ways]
            .iter()
            .position(|&k| k == key)
            .map(|off| self.pfns[base + off])
    }

    /// Invalidates the entry for `vpn`, if resident — the OS hook the paper
    /// requires when a page is evicted or remapped.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let key = self.key(vpn);
        let set = self.set_of(vpn);
        let base = set * self.ways;
        if let Some(off) = self.keys[base..base + self.ways]
            .iter()
            .position(|&k| k == key)
        {
            let i = base + off;
            self.keys[i] = NO_KEY;
            for slot in &mut self.mru {
                if *slot == i {
                    *slot = NO_MRU;
                }
            }
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Invalidates every entry (address-space switch without ASIDs),
    /// clearing the MRU recency fast path with it, and returns how many
    /// entries were flushed (the shootdown cost driver).
    pub fn invalidate_all(&mut self) -> u64 {
        self.mru = [NO_MRU; MRU_SLOTS];
        let mut flushed = 0;
        for k in &mut self.keys {
            if *k != NO_KEY {
                *k = NO_KEY;
                flushed += 1;
            }
        }
        self.stats.invalidations += flushed;
        flushed
    }

    /// Invalidates every entry tagged with `asid` — a TLB shootdown of one
    /// address space (issued when an ASID is reassigned to a different
    /// process). Matching MRU slots are cleared so the recency fast path
    /// cannot resurrect a shot-down entry. Returns the flushed count.
    pub fn invalidate_asid(&mut self, asid: u16) -> u64 {
        let tag = u64::from(asid) << ASID_SHIFT;
        let mut flushed = 0;
        for (i, k) in self.keys.iter_mut().enumerate() {
            if *k != NO_KEY && *k & (0xFFFF << ASID_SHIFT) == tag {
                *k = NO_KEY;
                flushed += 1;
                for slot in &mut self.mru {
                    if *slot == i {
                        *slot = NO_MRU;
                    }
                }
            }
        }
        self.stats.invalidations += flushed;
        flushed
    }

    /// Number of valid entries.
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.keys.iter().filter(|&&k| k != NO_KEY).count()
    }
}

/// Outcome of a two-level TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoLevelLookup {
    /// Whether level 1 hit.
    pub l1_hit: bool,
    /// Whether level 2 was consulted and hit (`None` if L1 hit under serial
    /// lookup).
    pub l2_hit: Option<bool>,
    /// The translation.
    pub pfn: Pfn,
    /// Protection bits.
    pub prot: Protection,
    /// Cycles beyond the caller-owned L1 lookup cycle: the serial L2 lookup
    /// adds `l2_latency`; a full miss adds the walk penalty.
    pub penalty: u32,
    /// Whether the translation's protection refused the requested access
    /// (counted on the level that served the translation; see
    /// [`TlbLookup::fault`]).
    pub fault: bool,
}

/// A two-level TLB with *serial* lookup: level 2 is consulted only on a
/// level-1 miss (the energy-efficient arrangement; the paper discards the
/// parallel arrangement as "much worse" in energy, §4.3.2).
///
/// The paper optimistically charges a single extra cycle for the L2 lookup;
/// [`TwoLevelTlb::new`] takes that latency as a parameter so the Itanium-like
/// 10-cycle case is also expressible.
#[derive(Clone, Debug)]
pub struct TwoLevelTlb {
    l1: Tlb,
    l2: Tlb,
    l2_latency: u32,
    /// Extra cycles charged when a full miss finds the page unmapped; see
    /// [`Tlb::set_demand_fault_penalty`]. The walk (and hence the fault)
    /// happens here, not inside the level TLBs, so the hierarchy carries
    /// its own copy of the knob.
    demand_fault_penalty: u32,
    demand_faults: u64,
}

impl TwoLevelTlb {
    /// Builds a two-level TLB. `l2_latency` is the extra serial-lookup cost
    /// of the second level, in cycles.
    #[must_use]
    pub fn new(l1: TlbConfig, l2: TlbConfig, l2_latency: u32) -> Self {
        Self {
            l1: Tlb::new(l1),
            l2: Tlb::new(l2),
            l2_latency,
            demand_fault_penalty: 0,
            demand_faults: 0,
        }
    }

    /// Fig 6 configuration (i): 1-entry L1 + 32-entry FA L2.
    #[must_use]
    pub fn fig6_small() -> Self {
        Self::new(
            TlbConfig {
                organization: TlbOrganization::fully_associative(1),
                miss_penalty: 50,
            },
            TlbConfig {
                organization: TlbOrganization::fully_associative(32),
                miss_penalty: 50,
            },
            1,
        )
    }

    /// Fig 6 configuration (ii): 32-entry FA L1 + 96-entry FA L2 (as in the
    /// IA-64 dTLB).
    #[must_use]
    pub fn fig6_large() -> Self {
        Self::new(
            TlbConfig {
                organization: TlbOrganization::fully_associative(32),
                miss_penalty: 50,
            },
            TlbConfig {
                organization: TlbOrganization::fully_associative(96),
                miss_penalty: 50,
            },
            1,
        )
    }

    /// Level-1 TLB (for stats and energy shape).
    #[must_use]
    pub fn l1(&self) -> &Tlb {
        &self.l1
    }

    /// Level-2 TLB (for stats and energy shape).
    #[must_use]
    pub fn l2(&self) -> &Tlb {
        &self.l2
    }

    /// Serial lookup: L1, then L2 on an L1 miss, then the page walk —
    /// each stage consulted only when the previous one missed, exactly as
    /// a real serial hierarchy. An L2 hit refills L1 via
    /// [`Tlb::install`] and never touches the page table; only a full
    /// miss walks, refilling both levels. `prot` is the first-touch
    /// allocation protection (see [`Tlb::lookup`]).
    pub fn lookup(
        &mut self,
        vpn: Vpn,
        page_table: &mut PageTable,
        prot: Protection,
    ) -> TwoLevelLookup {
        if let Some((pfn, resident_prot)) = self.l1.access(vpn) {
            let fault = self.l1.note_fault(resident_prot, prot);
            return TwoLevelLookup {
                l1_hit: true,
                l2_hit: None,
                pfn,
                prot: resident_prot,
                penalty: 0,
                fault,
            };
        }
        if let Some((pfn, resident_prot)) = self.l2.access(vpn) {
            self.l1.install(vpn, pfn, resident_prot);
            let fault = self.l2.note_fault(resident_prot, prot);
            return TwoLevelLookup {
                l1_hit: false,
                l2_hit: Some(true),
                pfn,
                prot: resident_prot,
                penalty: self.l2_latency,
                fault,
            };
        }
        let mut penalty = self.l2_latency + self.l2.cfg.miss_penalty;
        if self.demand_fault_penalty > 0 && page_table.probe(vpn).is_none() {
            self.demand_faults += 1;
            penalty += self.demand_fault_penalty;
        }
        let (pfn, translated_prot) = page_table.translate(vpn, prot);
        self.l2.install(vpn, pfn, translated_prot);
        self.l1.install(vpn, pfn, translated_prot);
        // A full miss walked the page table; the walk's result is checked
        // (and any fault counted) at the level that owns the walk, L2.
        let fault = self.l2.note_fault(translated_prot, prot);
        TwoLevelLookup {
            l1_hit: false,
            l2_hit: Some(false),
            pfn,
            prot: translated_prot,
            penalty,
            fault,
        }
    }

    /// Begins pulling the L1 set's metadata toward the host caches (see
    /// [`Tlb::prefetch`]); L2 is consulted only on an L1 miss, so its rows
    /// are left to demand. Architecturally a no-op.
    #[inline]
    pub fn prefetch(&self, vpn: Vpn) {
        self.l1.prefetch(vpn);
    }

    /// Invalidates a page in both levels.
    pub fn invalidate(&mut self, vpn: Vpn) {
        self.l1.invalidate(vpn);
        self.l2.invalidate(vpn);
    }

    /// Flushes both levels (flush-on-switch without ASIDs), returning the
    /// total number of entries shot down.
    pub fn invalidate_all(&mut self) -> u64 {
        self.l1.invalidate_all() + self.l2.invalidate_all()
    }

    /// Shoots down one address space in both levels; see
    /// [`Tlb::invalidate_asid`].
    pub fn invalidate_asid(&mut self, asid: u16) -> u64 {
        self.l1.invalidate_asid(asid) + self.l2.invalidate_asid(asid)
    }

    /// Switches both levels to address space `asid`; see [`Tlb::set_asid`].
    pub fn set_asid(&mut self, asid: u16) {
        self.l1.set_asid(asid);
        self.l2.set_asid(asid);
    }

    /// Sets the demand-fault trap latency charged on a full miss of an
    /// unmapped page.
    pub fn set_demand_fault_penalty(&mut self, cycles: u32) {
        self.demand_fault_penalty = cycles;
    }

    /// Misses that demand-faulted (page unmapped at walk time).
    #[must_use]
    pub fn demand_faults(&self) -> u64 {
        self.demand_faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn itlb() -> (Tlb, PageTable) {
        (Tlb::new(TlbConfig::default_itlb()), PageTable::new())
    }

    #[test]
    fn miss_then_hit() {
        let (mut tlb, mut pt) = itlb();
        let a = tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!(!a.hit);
        assert_eq!(a.penalty, 50);
        let b = tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!(b.hit);
        assert_eq!(b.penalty, 0);
        assert_eq!(a.pfn, b.pfn);
        assert_eq!(tlb.stats().accesses, 2);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::fully_associative(2),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        tlb.lookup(Vpn::new(2), &mut pt, Protection::code());
        tlb.lookup(Vpn::new(1), &mut pt, Protection::code()); // touch 1; 2 is LRU
        tlb.lookup(Vpn::new(3), &mut pt, Protection::code()); // evicts 2
        assert!(tlb.probe(Vpn::new(1)).is_some());
        assert!(tlb.probe(Vpn::new(2)).is_none());
        assert!(tlb.probe(Vpn::new(3)).is_some());
    }

    #[test]
    fn single_entry_tlb_thrashes_on_alternation() {
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::fully_associative(1),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        for _ in 0..4 {
            assert!(!tlb.lookup(Vpn::new(1), &mut pt, Protection::code()).hit);
            assert!(!tlb.lookup(Vpn::new(2), &mut pt, Protection::code()).hit);
        }
        assert_eq!(tlb.stats().hits, 0);
    }

    #[test]
    fn set_associative_conflicts() {
        // 4 entries, 2-way: 2 sets. VPNs 0 and 2 share set 0.
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::set_associative(4, 2),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        tlb.lookup(Vpn::new(0), &mut pt, Protection::code());
        tlb.lookup(Vpn::new(2), &mut pt, Protection::code());
        tlb.lookup(Vpn::new(4), &mut pt, Protection::code()); // evicts 0 (LRU in set 0)
        assert!(tlb.probe(Vpn::new(0)).is_none());
        assert!(tlb.probe(Vpn::new(2)).is_some());
        // Set 1 untouched.
        tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!(tlb.probe(Vpn::new(1)).is_some());
    }

    #[test]
    fn translation_consistent_with_page_table() {
        let (mut tlb, mut pt) = itlb();
        let l = tlb.lookup(Vpn::new(42), &mut pt, Protection::code());
        assert_eq!(pt.probe(Vpn::new(42)).unwrap().0, l.pfn);
    }

    #[test]
    fn invalidate_forces_miss() {
        let (mut tlb, mut pt) = itlb();
        tlb.lookup(Vpn::new(7), &mut pt, Protection::code());
        assert!(tlb.invalidate(Vpn::new(7)));
        assert!(!tlb.invalidate(Vpn::new(7)), "already gone");
        assert!(!tlb.lookup(Vpn::new(7), &mut pt, Protection::code()).hit);
        assert_eq!(tlb.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all() {
        let (mut tlb, mut pt) = itlb();
        for i in 0..10 {
            tlb.lookup(Vpn::new(i), &mut pt, Protection::code());
        }
        assert_eq!(tlb.resident_entries(), 10);
        assert_eq!(tlb.invalidate_all(), 10, "flush reports its entry count");
        assert_eq!(tlb.resident_entries(), 0);
        assert_eq!(tlb.stats().invalidations, 10);
        assert_eq!(tlb.invalidate_all(), 0, "second flush finds nothing");
    }

    #[test]
    fn post_flush_lookup_cannot_hit_stale_state() {
        // Regression (flush-on-switch): `invalidate_all` must clear the
        // MRU recency fast path along with the way keys — a lookup right
        // after a flush must miss even for the page the fast path was
        // hottest on.
        let (mut tlb, mut pt) = itlb();
        for _ in 0..8 {
            tlb.lookup(Vpn::new(3), &mut pt, Protection::code());
        }
        let hits_before = tlb.stats().hits;
        tlb.invalidate_all();
        assert_eq!(tlb.access(Vpn::new(3)), None, "stale MRU entry served");
        assert_eq!(tlb.stats().hits, hits_before);
        let refetch = tlb.lookup(Vpn::new(3), &mut pt, Protection::code());
        assert!(!refetch.hit, "post-flush lookup must re-walk");
    }

    #[test]
    fn asid_isolates_address_spaces() {
        let (mut tlb, mut pt_a) = itlb();
        let mut pt_b = PageTable::new();
        tlb.set_asid(1);
        tlb.lookup(Vpn::new(5), &mut pt_a, Protection::code());
        assert!(tlb.probe(Vpn::new(5)).is_some());

        // Same VPN, different address space: must miss and refill its own
        // tagged entry, leaving ASID 1's entry resident.
        tlb.set_asid(2);
        assert!(tlb.probe(Vpn::new(5)).is_none());
        let other = tlb.lookup(Vpn::new(5), &mut pt_b, Protection::code());
        assert!(!other.hit, "cross-ASID hit");
        assert_eq!(tlb.resident_entries(), 2);

        // Back to ASID 1: the original entry still serves.
        tlb.set_asid(1);
        assert!(tlb.lookup(Vpn::new(5), &mut pt_a, Protection::code()).hit);
    }

    #[test]
    fn invalidate_asid_shoots_down_one_space_and_its_mru_slots() {
        let (mut tlb, mut pt) = itlb();
        tlb.set_asid(1);
        tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        tlb.set_asid(2);
        tlb.lookup(Vpn::new(2), &mut pt, Protection::code());
        tlb.lookup(Vpn::new(2), &mut pt, Protection::code()); // ASID 2's entry is MRU-front
        assert_eq!(tlb.invalidate_asid(2), 1);
        assert_eq!(tlb.access(Vpn::new(2)), None, "stale MRU after shootdown");
        assert_eq!(tlb.resident_entries(), 1, "ASID 1 untouched");
        tlb.set_asid(1);
        assert!(tlb.probe(Vpn::new(1)).is_some());
        assert_eq!(tlb.invalidate_asid(3), 0, "unknown ASID flushes nothing");
    }

    #[test]
    fn demand_fault_penalty_charged_on_unmapped_miss_only() {
        let (mut tlb, mut pt) = itlb();
        tlb.set_demand_fault_penalty(700);
        // First touch: the page is unmapped, so the miss traps.
        let cold = tlb.lookup(Vpn::new(11), &mut pt, Protection::code());
        assert!(!cold.hit);
        assert_eq!(cold.penalty, 50 + 700);
        assert_eq!(tlb.demand_faults(), 1);
        // Resident: no penalty at all.
        assert_eq!(
            tlb.lookup(Vpn::new(11), &mut pt, Protection::code())
                .penalty,
            0
        );
        // Evicted but still mapped: plain miss penalty, no trap.
        tlb.invalidate(Vpn::new(11));
        let warm = tlb.lookup(Vpn::new(11), &mut pt, Protection::code());
        assert_eq!(warm.penalty, 50);
        assert_eq!(tlb.demand_faults(), 1);
    }

    #[test]
    fn two_level_flush_and_demand_faults() {
        let mut t = TwoLevelTlb::fig6_large();
        let mut pt = PageTable::new();
        t.set_demand_fault_penalty(300);
        let cold = t.lookup(Vpn::new(4), &mut pt, Protection::code());
        assert_eq!(cold.penalty, 1 + 50 + 300);
        assert_eq!(t.demand_faults(), 1);
        t.lookup(Vpn::new(5), &mut pt, Protection::code()); // also first touch
        assert_eq!(t.demand_faults(), 2);
        // Both levels hold both pages: 4 entries flushed in total.
        assert_eq!(t.invalidate_all(), 4);
        assert!(t.l1().probe(Vpn::new(4)).is_none());
        assert!(t.l2().probe(Vpn::new(4)).is_none());
        // Mapped pages re-miss without a second demand fault.
        let back = t.lookup(Vpn::new(4), &mut pt, Protection::code());
        assert_eq!(back.penalty, 1 + 50);
        assert_eq!(t.demand_faults(), 2);
    }

    #[test]
    fn two_level_asid_tagging_spans_both_levels() {
        let mut t = TwoLevelTlb::fig6_small();
        let mut pt = PageTable::new();
        t.set_asid(3);
        t.lookup(Vpn::new(9), &mut pt, Protection::code());
        t.set_asid(4);
        assert!(t.l1().probe(Vpn::new(9)).is_none());
        assert!(t.l2().probe(Vpn::new(9)).is_none());
        assert_eq!(t.invalidate_asid(3), 2, "one entry per level shot down");
    }

    #[test]
    fn install_does_not_count_access() {
        let (mut tlb, mut pt) = itlb();
        let (pfn, prot) = pt.translate(Vpn::new(5), Protection::code());
        tlb.install(Vpn::new(5), pfn, prot);
        assert_eq!(tlb.stats().accesses, 0);
        assert!(tlb.lookup(Vpn::new(5), &mut pt, Protection::code()).hit);
    }

    #[test]
    fn miss_rate() {
        let (mut tlb, mut pt) = itlb();
        tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!((tlb.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_level_serial_path() {
        let mut t = TwoLevelTlb::fig6_small();
        let mut pt = PageTable::new();
        // Cold: L1 miss, L2 miss, full walk.
        let a = t.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!(!a.l1_hit);
        assert_eq!(a.l2_hit, Some(false));
        assert_eq!(a.penalty, 1 + 50);
        // Immediately again: L1 (1-entry) hit.
        let b = t.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!(b.l1_hit);
        assert_eq!(b.penalty, 0);
        // Another page, then back: L1 misses (displaced), L2 hits.
        t.lookup(Vpn::new(2), &mut pt, Protection::code());
        let c = t.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!(!c.l1_hit);
        assert_eq!(c.l2_hit, Some(true));
        assert_eq!(c.penalty, 1);
        assert_eq!(c.pfn, a.pfn);
    }

    #[test]
    fn two_level_invalidate_hits_both() {
        let mut t = TwoLevelTlb::fig6_small();
        let mut pt = PageTable::new();
        t.lookup(Vpn::new(1), &mut pt, Protection::code());
        t.invalidate(Vpn::new(1));
        let r = t.lookup(Vpn::new(1), &mut pt, Protection::code());
        assert!(!r.l1_hit);
        assert_eq!(r.l2_hit, Some(false));
    }

    #[test]
    fn dtlb_refill_allocates_data_protection() {
        // Regression: `lookup` used to hardcode `Protection::code()` when
        // refilling, so a dTLB's first touch allocated data pages as code —
        // permanently, since the page table's first touch wins.
        let mut dtlb = Tlb::new(TlbConfig::default_dtlb());
        let mut pt = PageTable::new();
        let miss = dtlb.lookup(Vpn::new(9), &mut pt, Protection::data());
        assert!(!miss.hit);
        assert_eq!(miss.prot, Protection::data());
        assert_eq!(pt.probe(Vpn::new(9)).unwrap().1, Protection::data());
        // The resident entry carries the allocated protection too.
        let hit = dtlb.lookup(Vpn::new(9), &mut pt, Protection::code());
        assert!(hit.hit);
        assert_eq!(hit.prot, Protection::data(), "first touch wins");
    }

    #[test]
    fn access_is_probe_style() {
        let (mut tlb, mut pt) = itlb();
        assert_eq!(tlb.access(Vpn::new(3)), None, "miss: no page-table fill");
        assert_eq!(pt.mapped_pages(), 0);
        assert_eq!(tlb.stats().accesses, 1);
        assert_eq!(tlb.stats().misses, 1);
        let filled = tlb.lookup(Vpn::new(3), &mut pt, Protection::code());
        assert_eq!(tlb.access(Vpn::new(3)), Some((filled.pfn, filled.prot)));
        assert_eq!(tlb.stats().hits, 1);
    }

    #[test]
    fn two_level_l2_hit_skips_the_page_table() {
        // Regression: the L1 miss path used to walk the page table (and
        // refill L1) *before* consulting L2 — a serial hierarchy must fall
        // through to L2 first and walk only on a full miss.
        let mut t = TwoLevelTlb::fig6_small();
        let mut warm_pt = PageTable::new();
        t.lookup(Vpn::new(1), &mut warm_pt, Protection::code());
        t.lookup(Vpn::new(2), &mut warm_pt, Protection::code()); // displaces 1 from the 1-entry L1
        assert!(t.l1().probe(Vpn::new(1)).is_none());

        // Hand the lookup an EMPTY page table: a pure L2 hit must not
        // touch it at all (the old code would have allocated into it).
        let mut empty_pt = PageTable::new();
        let (l1_before, l2_before) = (*t.l1().stats(), *t.l2().stats());
        let r = t.lookup(Vpn::new(1), &mut empty_pt, Protection::code());
        assert!(!r.l1_hit);
        assert_eq!(r.l2_hit, Some(true));
        assert_eq!(r.penalty, 1, "L2 latency only, no walk");
        assert_eq!(empty_pt.mapped_pages(), 0, "page table untouched");
        // Exactly one access and one miss at L1, one access and one hit at
        // L2 — nothing else moved.
        let (l1_after, l2_after) = (*t.l1().stats(), *t.l2().stats());
        assert_eq!(l1_after.accesses, l1_before.accesses + 1);
        assert_eq!(l1_after.misses, l1_before.misses + 1);
        assert_eq!(l1_after.hits, l1_before.hits);
        assert_eq!(l2_after.accesses, l2_before.accesses + 1);
        assert_eq!(l2_after.hits, l2_before.hits + 1);
        assert_eq!(l2_after.misses, l2_before.misses);
        // The L2 hit refilled L1 via install.
        assert!(t.l1().probe(Vpn::new(1)).is_some());
    }

    #[test]
    fn two_level_full_miss_walks_once_and_fills_both() {
        let mut t = TwoLevelTlb::fig6_small();
        let mut pt = PageTable::new();
        let r = t.lookup(Vpn::new(7), &mut pt, Protection::code());
        assert_eq!(r.l2_hit, Some(false));
        assert_eq!(pt.mapped_pages(), 1);
        assert!(t.l1().probe(Vpn::new(7)).is_some());
        assert!(t.l2().probe(Vpn::new(7)).is_some());
    }

    #[test]
    fn tlb_stats_record_round_trips() {
        let stats = TlbStats {
            accesses: 123_456_789,
            hits: 123_000_000,
            misses: 456_789,
            invalidations: 7,
            protection_faults: 3,
        };
        let mut w = RecordWriter::new();
        stats.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        assert_eq!(TlbStats::from_record(&mut r).unwrap(), stats);
        r.finish().unwrap();
        assert!(TlbStats::from_record(&mut RecordReader::new("cachestats 1 2 3 4 5")).is_err());
        assert!(TlbStats::from_record(&mut RecordReader::new("tlbstats2 1 2")).is_err());
    }

    #[test]
    fn tlb_stats_accepts_pre_fault_records() {
        // PR 2's run store wrote the 4-counter `tlbstats` tag; records
        // migrated from a v1 store must keep parsing (with zero faults)
        // so migration actually preserves warm runs.
        let mut r = RecordReader::new("tlbstats 10 8 2 1");
        let stats = TlbStats::from_record(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(
            stats,
            TlbStats {
                accesses: 10,
                hits: 8,
                misses: 2,
                invalidations: 1,
                protection_faults: 0,
            }
        );
    }

    #[test]
    fn wrong_protection_access_faults_instead_of_silently_hitting() {
        // Regression (§3.2 OS support): a dTLB allocates a page
        // read/write; an instruction fetch of that page must report a
        // protection fault, not pass as an ordinary hit.
        let mut dtlb = Tlb::new(TlbConfig::default_dtlb());
        let mut itlb = Tlb::new(TlbConfig::default_itlb());
        let mut pt = PageTable::new();
        let alloc = dtlb.lookup(Vpn::new(9), &mut pt, Protection::data());
        assert!(!alloc.fault, "matching first touch is clean");
        assert_eq!(dtlb.stats().protection_faults, 0);

        // Fetching from the data page: resident (page-table) prot is rw-,
        // the fetch requests r-x — missing EXECUTE is a fault.
        let fetch = itlb.lookup(Vpn::new(9), &mut pt, Protection::code());
        assert!(fetch.fault, "executing a data page faults");
        assert!(!fetch.hit, "cold iTLB: fault detected on the walk result");
        assert_eq!(fetch.prot, Protection::data(), "first touch won");
        assert_eq!(itlb.stats().protection_faults, 1);

        // The faulting translation is now resident: the *hit* path
        // reports (and counts) the fault too.
        let again = itlb.lookup(Vpn::new(9), &mut pt, Protection::code());
        assert!(again.hit && again.fault);
        assert_eq!(itlb.stats().protection_faults, 2);

        // And the symmetric case: writing a code page faults in the dTLB.
        itlb.lookup(Vpn::new(4), &mut pt, Protection::code());
        let write = dtlb.lookup(Vpn::new(4), &mut pt, Protection::data());
        assert!(write.fault, "writing a code page faults");
        assert_eq!(dtlb.stats().protection_faults, 1);
    }

    #[test]
    fn two_level_counts_faults_at_the_serving_level() {
        let mut t = TwoLevelTlb::fig6_small();
        let mut dtlb = Tlb::new(TlbConfig::default_dtlb());
        let mut pt = PageTable::new();
        dtlb.lookup(Vpn::new(3), &mut pt, Protection::data());

        // Full miss: the walk's result is checked at L2.
        let cold = t.lookup(Vpn::new(3), &mut pt, Protection::code());
        assert!(cold.fault);
        assert_eq!(t.l2().stats().protection_faults, 1);
        assert_eq!(t.l1().stats().protection_faults, 0);

        // L1 hit: counted at L1.
        let hot = t.lookup(Vpn::new(3), &mut pt, Protection::code());
        assert!(hot.l1_hit && hot.fault);
        assert_eq!(t.l1().stats().protection_faults, 1);

        // Displace from the 1-entry L1, then return: L2 hit counts at L2.
        t.lookup(Vpn::new(8), &mut pt, Protection::code());
        let l2_hit = t.lookup(Vpn::new(3), &mut pt, Protection::code());
        assert_eq!(l2_hit.l2_hit, Some(true));
        assert!(l2_hit.fault);
        assert_eq!(t.l2().stats().protection_faults, 2);
    }

    #[test]
    fn two_level_stats_visible() {
        let mut t = TwoLevelTlb::fig6_large();
        let mut pt = PageTable::new();
        for i in 0..40 {
            t.lookup(Vpn::new(i), &mut pt, Protection::code());
        }
        assert_eq!(t.l1().stats().accesses, 40);
        assert_eq!(t.l2().stats().accesses, 40); // all cold misses
        for i in 0..40 {
            t.lookup(Vpn::new(i), &mut pt, Protection::code());
        }
        // 32-entry L1 can hold at most 32 of the 40; some L2 hits now.
        assert!(t.l2().stats().hits > 0);
    }
}
