//! Translation lookaside buffers: monolithic and two-level.

use cfr_types::{Pfn, Protection, TlbOrganization, Vpn};
use serde::{Deserialize, Serialize};

use crate::PageTable;

/// Configuration of one TLB level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Shape (entries, associativity).
    pub organization: TlbOrganization,
    /// Page-walk penalty charged on a miss, in cycles (Table 1: 50).
    pub miss_penalty: u32,
}

impl TlbConfig {
    /// The paper's default iTLB: 32 entries, fully associative, 50-cycle
    /// miss penalty.
    #[must_use]
    pub fn default_itlb() -> Self {
        Self {
            organization: TlbOrganization::fully_associative(32),
            miss_penalty: 50,
        }
    }

    /// The paper's default dTLB: 128 entries, fully associative, 50-cycle
    /// miss penalty.
    #[must_use]
    pub fn default_dtlb() -> Self {
        Self {
            organization: TlbOrganization::fully_associative(128),
            miss_penalty: 50,
        }
    }
}

/// Outcome of one TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbLookup {
    /// Whether the translation was resident.
    pub hit: bool,
    /// The translation (filled from the page table on a miss).
    pub pfn: Pfn,
    /// Protection bits of the page.
    pub prot: Protection,
    /// Cycles charged beyond the (caller-owned) lookup cycle: 0 on a hit,
    /// the miss penalty on a miss.
    pub penalty: u32,
}

/// Access/hit/miss counters for one TLB.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (and were refilled).
    pub misses: u64,
    /// Entries invalidated by OS action.
    pub invalidations: u64,
}

impl TlbStats {
    /// Miss rate in [0, 1]; 0 for an untouched TLB.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct TlbEntry {
    vpn: Vpn,
    pfn: Pfn,
    prot: Protection,
    valid: bool,
    lru: u64,
}

/// A set-associative (or fully-associative) TLB with true LRU replacement.
#[derive(Clone, Debug)]
pub struct Tlb {
    cfg: TlbConfig,
    entries: Vec<TlbEntry>, // sets * ways, row-major by set
    ways: usize,
    sets: u64,
    tick: u64,
    stats: TlbStats,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    #[must_use]
    pub fn new(cfg: TlbConfig) -> Self {
        let ways = cfg.organization.associativity as usize;
        let sets = u64::from(cfg.organization.sets());
        Self {
            cfg,
            entries: vec![TlbEntry::default(); ways * sets as usize],
            ways,
            sets,
            tick: 0,
            stats: TlbStats::default(),
        }
    }

    /// The configuration this TLB was built with.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Shape of this TLB (for energy lookups).
    #[must_use]
    pub fn organization(&self) -> TlbOrganization {
        self.cfg.organization
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TlbStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.raw() % self.sets) as usize
    }

    /// Looks `vpn` up; on a miss, walks `page_table` and refills.
    pub fn lookup(&mut self, vpn: Vpn, page_table: &mut PageTable) -> TlbLookup {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let ways = &mut self.entries[base..base + self.ways];

        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.vpn == vpn) {
            e.lru = self.tick;
            self.stats.hits += 1;
            return TlbLookup {
                hit: true,
                pfn: e.pfn,
                prot: e.prot,
                penalty: 0,
            };
        }

        self.stats.misses += 1;
        let (pfn, prot) = page_table.translate(vpn, Protection::code());
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("TLB has at least one way");
        *victim = TlbEntry {
            vpn,
            pfn,
            prot,
            valid: true,
            lru: self.tick,
        };
        TlbLookup {
            hit: false,
            pfn,
            prot,
            penalty: self.cfg.miss_penalty,
        }
    }

    /// Refills an entry without counting an access (used by a two-level TLB
    /// to install an L2-provided translation into L1).
    pub fn install(&mut self, vpn: Vpn, pfn: Pfn, prot: Protection) {
        self.tick += 1;
        let set = self.set_of(vpn);
        let base = set * self.ways;
        let ways = &mut self.entries[base..base + self.ways];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.vpn == vpn) {
            e.pfn = pfn;
            e.prot = prot;
            e.lru = self.tick;
            return;
        }
        let victim = ways
            .iter_mut()
            .min_by_key(|e| if e.valid { e.lru + 1 } else { 0 })
            .expect("TLB has at least one way");
        *victim = TlbEntry {
            vpn,
            pfn,
            prot,
            valid: true,
            lru: self.tick,
        };
    }

    /// Whether `vpn` is resident, without touching LRU or stats.
    #[must_use]
    pub fn probe(&self, vpn: Vpn) -> Option<Pfn> {
        let set = self.set_of(vpn);
        let base = set * self.ways;
        self.entries[base..base + self.ways]
            .iter()
            .find(|e| e.valid && e.vpn == vpn)
            .map(|e| e.pfn)
    }

    /// Invalidates the entry for `vpn`, if resident — the OS hook the paper
    /// requires when a page is evicted or remapped.
    pub fn invalidate(&mut self, vpn: Vpn) -> bool {
        let set = self.set_of(vpn);
        let base = set * self.ways;
        if let Some(e) = self.entries[base..base + self.ways]
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn)
        {
            e.valid = false;
            self.stats.invalidations += 1;
            true
        } else {
            false
        }
    }

    /// Invalidates every entry (address-space switch without ASIDs).
    pub fn invalidate_all(&mut self) {
        for e in &mut self.entries {
            if e.valid {
                e.valid = false;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Number of valid entries.
    #[must_use]
    pub fn resident_entries(&self) -> usize {
        self.entries.iter().filter(|e| e.valid).count()
    }
}

/// Outcome of a two-level TLB lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoLevelLookup {
    /// Whether level 1 hit.
    pub l1_hit: bool,
    /// Whether level 2 was consulted and hit (`None` if L1 hit under serial
    /// lookup).
    pub l2_hit: Option<bool>,
    /// The translation.
    pub pfn: Pfn,
    /// Protection bits.
    pub prot: Protection,
    /// Cycles beyond the caller-owned L1 lookup cycle: the serial L2 lookup
    /// adds `l2_latency`; a full miss adds the walk penalty.
    pub penalty: u32,
}

/// A two-level TLB with *serial* lookup: level 2 is consulted only on a
/// level-1 miss (the energy-efficient arrangement; the paper discards the
/// parallel arrangement as "much worse" in energy, §4.3.2).
///
/// The paper optimistically charges a single extra cycle for the L2 lookup;
/// [`TwoLevelTlb::new`] takes that latency as a parameter so the Itanium-like
/// 10-cycle case is also expressible.
#[derive(Clone, Debug)]
pub struct TwoLevelTlb {
    l1: Tlb,
    l2: Tlb,
    l2_latency: u32,
}

impl TwoLevelTlb {
    /// Builds a two-level TLB. `l2_latency` is the extra serial-lookup cost
    /// of the second level, in cycles.
    #[must_use]
    pub fn new(l1: TlbConfig, l2: TlbConfig, l2_latency: u32) -> Self {
        Self {
            l1: Tlb::new(l1),
            l2: Tlb::new(l2),
            l2_latency,
        }
    }

    /// Fig 6 configuration (i): 1-entry L1 + 32-entry FA L2.
    #[must_use]
    pub fn fig6_small() -> Self {
        Self::new(
            TlbConfig {
                organization: TlbOrganization::fully_associative(1),
                miss_penalty: 50,
            },
            TlbConfig {
                organization: TlbOrganization::fully_associative(32),
                miss_penalty: 50,
            },
            1,
        )
    }

    /// Fig 6 configuration (ii): 32-entry FA L1 + 96-entry FA L2 (as in the
    /// IA-64 dTLB).
    #[must_use]
    pub fn fig6_large() -> Self {
        Self::new(
            TlbConfig {
                organization: TlbOrganization::fully_associative(32),
                miss_penalty: 50,
            },
            TlbConfig {
                organization: TlbOrganization::fully_associative(96),
                miss_penalty: 50,
            },
            1,
        )
    }

    /// Level-1 TLB (for stats and energy shape).
    #[must_use]
    pub fn l1(&self) -> &Tlb {
        &self.l1
    }

    /// Level-2 TLB (for stats and energy shape).
    #[must_use]
    pub fn l2(&self) -> &Tlb {
        &self.l2
    }

    /// Serial lookup: L1, then L2 on an L1 miss, then the page walk.
    pub fn lookup(&mut self, vpn: Vpn, page_table: &mut PageTable) -> TwoLevelLookup {
        let l1 = self.l1.lookup(vpn, page_table);
        if l1.hit {
            return TwoLevelLookup {
                l1_hit: true,
                l2_hit: None,
                pfn: l1.pfn,
                prot: l1.prot,
                penalty: 0,
            };
        }
        // The L1 "lookup" above already refilled from the page table; undo
        // its stats-free fiction by consulting L2 properly: L2 hit means the
        // walk penalty is replaced by the L2 latency.
        let l2 = self.l2.lookup(vpn, page_table);
        self.l1.install(vpn, l2.pfn, l2.prot);
        let penalty = if l2.hit {
            self.l2_latency
        } else {
            self.l2_latency + l2.penalty
        };
        TwoLevelLookup {
            l1_hit: false,
            l2_hit: Some(l2.hit),
            pfn: l2.pfn,
            prot: l2.prot,
            penalty,
        }
    }

    /// Invalidates a page in both levels.
    pub fn invalidate(&mut self, vpn: Vpn) {
        self.l1.invalidate(vpn);
        self.l2.invalidate(vpn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn itlb() -> (Tlb, PageTable) {
        (Tlb::new(TlbConfig::default_itlb()), PageTable::new())
    }

    #[test]
    fn miss_then_hit() {
        let (mut tlb, mut pt) = itlb();
        let a = tlb.lookup(Vpn::new(1), &mut pt);
        assert!(!a.hit);
        assert_eq!(a.penalty, 50);
        let b = tlb.lookup(Vpn::new(1), &mut pt);
        assert!(b.hit);
        assert_eq!(b.penalty, 0);
        assert_eq!(a.pfn, b.pfn);
        assert_eq!(tlb.stats().accesses, 2);
        assert_eq!(tlb.stats().hits, 1);
        assert_eq!(tlb.stats().misses, 1);
    }

    #[test]
    fn capacity_eviction_is_lru() {
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::fully_associative(2),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        tlb.lookup(Vpn::new(1), &mut pt);
        tlb.lookup(Vpn::new(2), &mut pt);
        tlb.lookup(Vpn::new(1), &mut pt); // touch 1; 2 is LRU
        tlb.lookup(Vpn::new(3), &mut pt); // evicts 2
        assert!(tlb.probe(Vpn::new(1)).is_some());
        assert!(tlb.probe(Vpn::new(2)).is_none());
        assert!(tlb.probe(Vpn::new(3)).is_some());
    }

    #[test]
    fn single_entry_tlb_thrashes_on_alternation() {
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::fully_associative(1),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        for _ in 0..4 {
            assert!(!tlb.lookup(Vpn::new(1), &mut pt).hit);
            assert!(!tlb.lookup(Vpn::new(2), &mut pt).hit);
        }
        assert_eq!(tlb.stats().hits, 0);
    }

    #[test]
    fn set_associative_conflicts() {
        // 4 entries, 2-way: 2 sets. VPNs 0 and 2 share set 0.
        let mut tlb = Tlb::new(TlbConfig {
            organization: TlbOrganization::set_associative(4, 2),
            miss_penalty: 50,
        });
        let mut pt = PageTable::new();
        tlb.lookup(Vpn::new(0), &mut pt);
        tlb.lookup(Vpn::new(2), &mut pt);
        tlb.lookup(Vpn::new(4), &mut pt); // evicts 0 (LRU in set 0)
        assert!(tlb.probe(Vpn::new(0)).is_none());
        assert!(tlb.probe(Vpn::new(2)).is_some());
        // Set 1 untouched.
        tlb.lookup(Vpn::new(1), &mut pt);
        assert!(tlb.probe(Vpn::new(1)).is_some());
    }

    #[test]
    fn translation_consistent_with_page_table() {
        let (mut tlb, mut pt) = itlb();
        let l = tlb.lookup(Vpn::new(42), &mut pt);
        assert_eq!(pt.probe(Vpn::new(42)).unwrap().0, l.pfn);
    }

    #[test]
    fn invalidate_forces_miss() {
        let (mut tlb, mut pt) = itlb();
        tlb.lookup(Vpn::new(7), &mut pt);
        assert!(tlb.invalidate(Vpn::new(7)));
        assert!(!tlb.invalidate(Vpn::new(7)), "already gone");
        assert!(!tlb.lookup(Vpn::new(7), &mut pt).hit);
        assert_eq!(tlb.stats().invalidations, 1);
    }

    #[test]
    fn invalidate_all() {
        let (mut tlb, mut pt) = itlb();
        for i in 0..10 {
            tlb.lookup(Vpn::new(i), &mut pt);
        }
        assert_eq!(tlb.resident_entries(), 10);
        tlb.invalidate_all();
        assert_eq!(tlb.resident_entries(), 0);
        assert_eq!(tlb.stats().invalidations, 10);
    }

    #[test]
    fn install_does_not_count_access() {
        let (mut tlb, mut pt) = itlb();
        let (pfn, prot) = pt.translate(Vpn::new(5), Protection::code());
        tlb.install(Vpn::new(5), pfn, prot);
        assert_eq!(tlb.stats().accesses, 0);
        assert!(tlb.lookup(Vpn::new(5), &mut pt).hit);
    }

    #[test]
    fn miss_rate() {
        let (mut tlb, mut pt) = itlb();
        tlb.lookup(Vpn::new(1), &mut pt);
        tlb.lookup(Vpn::new(1), &mut pt);
        assert!((tlb.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn two_level_serial_path() {
        let mut t = TwoLevelTlb::fig6_small();
        let mut pt = PageTable::new();
        // Cold: L1 miss, L2 miss, full walk.
        let a = t.lookup(Vpn::new(1), &mut pt);
        assert!(!a.l1_hit);
        assert_eq!(a.l2_hit, Some(false));
        assert_eq!(a.penalty, 1 + 50);
        // Immediately again: L1 (1-entry) hit.
        let b = t.lookup(Vpn::new(1), &mut pt);
        assert!(b.l1_hit);
        assert_eq!(b.penalty, 0);
        // Another page, then back: L1 misses (displaced), L2 hits.
        t.lookup(Vpn::new(2), &mut pt);
        let c = t.lookup(Vpn::new(1), &mut pt);
        assert!(!c.l1_hit);
        assert_eq!(c.l2_hit, Some(true));
        assert_eq!(c.penalty, 1);
        assert_eq!(c.pfn, a.pfn);
    }

    #[test]
    fn two_level_invalidate_hits_both() {
        let mut t = TwoLevelTlb::fig6_small();
        let mut pt = PageTable::new();
        t.lookup(Vpn::new(1), &mut pt);
        t.invalidate(Vpn::new(1));
        let r = t.lookup(Vpn::new(1), &mut pt);
        assert!(!r.l1_hit);
        assert_eq!(r.l2_hit, Some(false));
    }

    #[test]
    fn two_level_stats_visible() {
        let mut t = TwoLevelTlb::fig6_large();
        let mut pt = PageTable::new();
        for i in 0..40 {
            t.lookup(Vpn::new(i), &mut pt);
        }
        assert_eq!(t.l1().stats().accesses, 40);
        assert_eq!(t.l2().stats().accesses, 40); // all cold misses
        for i in 0..40 {
            t.lookup(Vpn::new(i), &mut pt);
        }
        // 32-entry L1 can hold at most 32 of the 40; some L2 hits now.
        assert!(t.l2().stats().hits > 0);
    }
}
