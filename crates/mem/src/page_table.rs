//! A deterministic virtual→physical page mapping.
//!
//! Frames are allocated on first touch. The VPN→PFN assignment is a
//! scrambled (but reproducible) bijection of the allocation order, so
//! physically-indexed structures see realistic frame scatter rather than an
//! identity mapping, while runs remain bit-for-bit repeatable.
//!
//! The map itself is a hand-rolled **open-addressed table** (Fibonacci
//! hash of the VPN, linear probing, tombstoned deletion) rather than
//! `std::collections::HashMap`: the page table sits on the simulator's
//! hot path (every TLB miss, every VI-VT iL1 miss), and SipHash plus the
//! std map's per-lookup overhead are measurable there. The table is fully
//! deterministic — no random hasher state — and its behaviour is
//! cross-checked against a `HashMap` reference model by the property
//! suite.

use cfr_types::{Pfn, Protection, Vpn};

/// Multiplying an odd constant modulo 2^k is a bijection, so truncating the
/// product to `FRAME_BITS` still yields unique frames for up to 2^FRAME_BITS
/// allocations.
const FRAME_SCRAMBLE: u64 = 0x9E37_79B1;
const FRAME_BITS: u32 = 28;

/// Fibonacci multiplier (2^64 / φ, forced odd) for the VPN hash.
const HASH_SCRAMBLE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Initial slot-array size; always a power of two.
const INITIAL_CAPACITY: usize = 64;

/// Key of a never-used slot: a probe chain may stop here. Real VPNs stay
/// below both sentinels (page numbers are addresses shifted right by the
/// page bits, so `< 2^52` for any page size the simulator models).
const EMPTY_KEY: u64 = u64::MAX;

/// Key of a deleted slot: a probe chain must continue past, but inserts
/// may reuse it.
const TOMBSTONE_KEY: u64 = u64::MAX - 1;

/// The OS page table: allocates and remembers translations, and supports the
/// eviction/remap hooks the paper's §3.2 OS support needs.
///
/// Layout is structure-of-arrays: probe chains walk a dense `u64` key
/// array (8 bytes per slot, with [`EMPTY_KEY`]/[`TOMBSTONE_KEY`] encoding
/// slot state in the key itself — the same key-mirror pattern as the TLB
/// and cache), and the frame/protection payload lives in a parallel array
/// read only on a key match. A chain over the old `enum Slot` walked
/// 32-byte variants; here it streams one host cache line per eight slots.
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    /// Power-of-two key array (empty until the first insert).
    keys: Vec<u64>,
    /// Payload per slot, parallel to `keys`; meaningful iff the key is a
    /// real VPN.
    frames: Vec<(Pfn, Protection)>,
    /// Live (VPN-keyed) slots.
    live: usize,
    /// Occupied (live + tombstone) slots — what load factor is
    /// measured against, so long tombstone chains trigger a rebuild.
    used: usize,
    allocations: u64,
}

impl PageTable {
    /// Creates an empty page table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_pfn(&mut self) -> Pfn {
        let n = self.allocations;
        self.allocations += 1;
        Pfn::new(n.wrapping_mul(FRAME_SCRAMBLE) & ((1 << FRAME_BITS) - 1))
    }

    /// Home slot of `vpn` in a table of `cap` slots (`cap` a power of two).
    #[inline]
    fn home(vpn: Vpn, cap: usize) -> usize {
        // Fibonacci hashing: take the top bits of the scrambled VPN, which
        // mixes high and low VPN bits into the index (pure masking would
        // degenerate for the simulator's contiguous page ranges).
        (vpn.raw().wrapping_mul(HASH_SCRAMBLE) >> (64 - cap.trailing_zeros())) as usize
    }

    /// Grows (or initially allocates) the slot arrays and rehashes every
    /// live entry. Tombstones are dropped, so `used == live` afterwards.
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(INITIAL_CAPACITY);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY_KEY; new_cap]);
        let old_frames = std::mem::replace(
            &mut self.frames,
            vec![(Pfn::default(), Protection::default()); new_cap],
        );
        self.used = self.live;
        for (key, payload) in old_keys.into_iter().zip(old_frames) {
            if key < TOMBSTONE_KEY {
                let mut i = Self::home(Vpn::new(key), new_cap);
                loop {
                    if self.keys[i] == EMPTY_KEY {
                        self.keys[i] = key;
                        self.frames[i] = payload;
                        break;
                    }
                    i = (i + 1) & (new_cap - 1);
                }
            }
        }
    }

    /// Index of the live slot holding `vpn`, if any.
    #[inline]
    fn find(&self, vpn: Vpn) -> Option<usize> {
        if self.keys.is_empty() {
            return None;
        }
        let key = vpn.raw();
        let mask = self.keys.len() - 1;
        let mut i = Self::home(vpn, self.keys.len());
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(i);
            }
            if k == EMPTY_KEY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Translates `vpn`, allocating a frame with `prot` protection on first
    /// touch. Subsequent calls return the same frame (until a
    /// [`remap`](Self::remap)).
    #[inline]
    pub fn translate(&mut self, vpn: Vpn, prot: Protection) -> (Pfn, Protection) {
        debug_assert!(vpn.raw() < TOMBSTONE_KEY, "VPN collides with sentinels");
        // Keep at least one `Empty` slot per probe chain: grow at 7/8
        // occupancy (tombstones included, so deletions cannot degrade
        // probing indefinitely).
        if self.keys.is_empty() || (self.used + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let key = vpn.raw();
        let mask = self.keys.len() - 1;
        let mut i = Self::home(vpn, self.keys.len());
        let mut reuse: Option<usize> = None;
        loop {
            let k = self.keys[i];
            if k == key {
                return self.frames[i];
            }
            if k == EMPTY_KEY {
                break;
            }
            if k == TOMBSTONE_KEY && reuse.is_none() {
                reuse = Some(i);
            }
            i = (i + 1) & mask;
        }
        let pfn = self.fresh_pfn();
        match reuse {
            Some(t) => {
                self.keys[t] = key;
                self.frames[t] = (pfn, prot);
            }
            None => {
                self.keys[i] = key;
                self.frames[i] = (pfn, prot);
                self.used += 1;
            }
        }
        self.live += 1;
        (pfn, prot)
    }

    /// Looks up an existing translation without allocating.
    #[must_use]
    pub fn probe(&self, vpn: Vpn) -> Option<(Pfn, Protection)> {
        self.find(vpn).map(|i| self.frames[i])
    }

    /// Moves `vpn` to a fresh frame (page migration / swap-in at a new
    /// location). Returns the new frame, or `None` if the page was never
    /// mapped. Any cached copy of the old translation — in a TLB *or in the
    /// CFR* — is now stale; the paper requires the OS to invalidate both.
    pub fn remap(&mut self, vpn: Vpn) -> Option<Pfn> {
        let i = self.find(vpn)?;
        let pfn = self.fresh_pfn();
        self.frames[i].0 = pfn;
        Some(pfn)
    }

    /// Removes the mapping for `vpn` (page evicted to backing store).
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pfn> {
        let i = self.find(vpn)?;
        let pfn = self.frames[i].0;
        self.keys[i] = TOMBSTONE_KEY;
        self.live -= 1;
        Some(pfn)
    }

    /// Number of live mappings.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
pub(crate) mod reference {
    //! The pre-optimization `HashMap`-backed page table, kept as the
    //! reference model the property suite cross-checks the open-addressed
    //! table against.

    use std::collections::HashMap;

    use cfr_types::{Pfn, Protection, Vpn};

    use super::{FRAME_BITS, FRAME_SCRAMBLE};

    /// `HashMap`-backed reference page table (identical observable
    /// behaviour, slower).
    #[derive(Clone, Debug, Default)]
    pub struct HashPageTable {
        map: HashMap<Vpn, (Pfn, Protection)>,
        allocations: u64,
    }

    impl HashPageTable {
        pub fn new() -> Self {
            Self::default()
        }

        fn fresh_pfn(&mut self) -> Pfn {
            let n = self.allocations;
            self.allocations += 1;
            Pfn::new(n.wrapping_mul(FRAME_SCRAMBLE) & ((1 << FRAME_BITS) - 1))
        }

        pub fn translate(&mut self, vpn: Vpn, prot: Protection) -> (Pfn, Protection) {
            if let Some(&entry) = self.map.get(&vpn) {
                return entry;
            }
            let pfn = self.fresh_pfn();
            self.map.insert(vpn, (pfn, prot));
            (pfn, prot)
        }

        pub fn probe(&self, vpn: Vpn) -> Option<(Pfn, Protection)> {
            self.map.get(&vpn).copied()
        }

        pub fn remap(&mut self, vpn: Vpn) -> Option<Pfn> {
            if !self.map.contains_key(&vpn) {
                return None;
            }
            let pfn = self.fresh_pfn();
            let entry = self.map.get_mut(&vpn).expect("checked above");
            entry.0 = pfn;
            Some(pfn)
        }

        pub fn unmap(&mut self, vpn: Vpn) -> Option<Pfn> {
            self.map.remove(&vpn).map(|(pfn, _)| pfn)
        }

        pub fn mapped_pages(&self) -> usize {
            self.map.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new();
        let (a, _) = pt.translate(Vpn::new(5), Protection::code());
        let (b, _) = pt.translate(Vpn::new(5), Protection::code());
        assert_eq!(a, b);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let (pfn, _) = pt.translate(Vpn::new(i), Protection::data());
            assert!(seen.insert(pfn), "duplicate frame for page {i}");
        }
        assert_eq!(pt.mapped_pages(), 10_000, "growth preserves every entry");
        for i in 0..10_000 {
            assert!(pt.probe(Vpn::new(i)).is_some(), "page {i} lost in growth");
        }
    }

    #[test]
    fn frames_are_scrambled_not_identity() {
        let mut pt = PageTable::new();
        let (a, _) = pt.translate(Vpn::new(0), Protection::code());
        let (b, _) = pt.translate(Vpn::new(1), Protection::code());
        assert_ne!(b.raw(), a.raw() + 1, "frames should not be sequential");
    }

    #[test]
    fn protection_is_remembered() {
        let mut pt = PageTable::new();
        pt.translate(Vpn::new(9), Protection::data());
        let (_, prot) = pt.translate(Vpn::new(9), Protection::code());
        assert_eq!(prot, Protection::data(), "first touch wins");
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut pt = PageTable::new();
        assert_eq!(pt.probe(Vpn::new(1)), None);
        assert_eq!(pt.mapped_pages(), 0);
        pt.translate(Vpn::new(1), Protection::code());
        assert!(pt.probe(Vpn::new(1)).is_some());
    }

    #[test]
    fn remap_changes_frame() {
        let mut pt = PageTable::new();
        let (old, _) = pt.translate(Vpn::new(3), Protection::code());
        let new = pt.remap(Vpn::new(3)).unwrap();
        assert_ne!(old, new);
        let (cur, _) = pt.translate(Vpn::new(3), Protection::code());
        assert_eq!(cur, new);
        assert_eq!(pt.remap(Vpn::new(999)), None);
    }

    #[test]
    fn unmap_removes() {
        let mut pt = PageTable::new();
        pt.translate(Vpn::new(3), Protection::code());
        assert!(pt.unmap(Vpn::new(3)).is_some());
        assert_eq!(pt.probe(Vpn::new(3)), None);
        assert_eq!(pt.unmap(Vpn::new(3)), None);
    }

    #[test]
    fn unmap_then_translate_reuses_the_chain() {
        // Tombstone handling: a VPN whose probe chain crosses a deleted
        // slot must still be findable, and a re-translate must not
        // duplicate it.
        let mut pt = PageTable::new();
        for i in 0..100 {
            pt.translate(Vpn::new(i), Protection::code());
        }
        for i in (0..100).step_by(2) {
            assert!(pt.unmap(Vpn::new(i)).is_some());
        }
        assert_eq!(pt.mapped_pages(), 50);
        for i in (1..100).step_by(2) {
            assert!(pt.probe(Vpn::new(i)).is_some(), "survivor {i} lost");
        }
        for i in (0..100).step_by(2) {
            pt.translate(Vpn::new(i), Protection::data());
        }
        assert_eq!(pt.mapped_pages(), 100);
    }

    #[test]
    fn heavy_churn_stays_bounded_and_correct() {
        // Repeated unmap/translate cycles must not wedge probing or leak
        // occupancy (tombstones are reclaimed on growth).
        let mut pt = PageTable::new();
        for round in 0..50u64 {
            for i in 0..64 {
                pt.translate(Vpn::new(round * 64 + i), Protection::data());
            }
            for i in 0..64 {
                assert!(pt.unmap(Vpn::new(round * 64 + i)).is_some());
            }
        }
        assert_eq!(pt.mapped_pages(), 0);
        pt.translate(Vpn::new(7), Protection::code());
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = PageTable::new();
        let mut b = PageTable::new();
        for i in [5u64, 1, 9, 2] {
            assert_eq!(
                a.translate(Vpn::new(i), Protection::code()),
                b.translate(Vpn::new(i), Protection::code())
            );
        }
    }
}
