//! A deterministic virtual→physical page mapping.
//!
//! Frames are allocated on first touch. The VPN→PFN assignment is a
//! scrambled (but reproducible) bijection of the allocation order, so
//! physically-indexed structures see realistic frame scatter rather than an
//! identity mapping, while runs remain bit-for-bit repeatable.

use std::collections::HashMap;

use cfr_types::{Pfn, Protection, Vpn};

/// Multiplying an odd constant modulo 2^k is a bijection, so truncating the
/// product to `FRAME_BITS` still yields unique frames for up to 2^FRAME_BITS
/// allocations.
const FRAME_SCRAMBLE: u64 = 0x9E37_79B1;
const FRAME_BITS: u32 = 28;

/// The OS page table: allocates and remembers translations, and supports the
/// eviction/remap hooks the paper's §3.2 OS support needs.
#[derive(Clone, Debug, Default)]
pub struct PageTable {
    map: HashMap<Vpn, (Pfn, Protection)>,
    allocations: u64,
}

impl PageTable {
    /// Creates an empty page table.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_pfn(&mut self) -> Pfn {
        let n = self.allocations;
        self.allocations += 1;
        Pfn::new(n.wrapping_mul(FRAME_SCRAMBLE) & ((1 << FRAME_BITS) - 1))
    }

    /// Translates `vpn`, allocating a frame with `prot` protection on first
    /// touch. Subsequent calls return the same frame (until a
    /// [`remap`](Self::remap)).
    pub fn translate(&mut self, vpn: Vpn, prot: Protection) -> (Pfn, Protection) {
        if let Some(&entry) = self.map.get(&vpn) {
            return entry;
        }
        let pfn = self.fresh_pfn();
        self.map.insert(vpn, (pfn, prot));
        (pfn, prot)
    }

    /// Looks up an existing translation without allocating.
    #[must_use]
    pub fn probe(&self, vpn: Vpn) -> Option<(Pfn, Protection)> {
        self.map.get(&vpn).copied()
    }

    /// Moves `vpn` to a fresh frame (page migration / swap-in at a new
    /// location). Returns the new frame, or `None` if the page was never
    /// mapped. Any cached copy of the old translation — in a TLB *or in the
    /// CFR* — is now stale; the paper requires the OS to invalidate both.
    pub fn remap(&mut self, vpn: Vpn) -> Option<Pfn> {
        if !self.map.contains_key(&vpn) {
            return None;
        }
        let pfn = self.fresh_pfn();
        let entry = self.map.get_mut(&vpn).expect("checked above");
        entry.0 = pfn;
        Some(pfn)
    }

    /// Removes the mapping for `vpn` (page evicted to backing store).
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pfn> {
        self.map.remove(&vpn).map(|(pfn, _)| pfn)
    }

    /// Number of live mappings.
    #[must_use]
    pub fn mapped_pages(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translation_is_stable() {
        let mut pt = PageTable::new();
        let (a, _) = pt.translate(Vpn::new(5), Protection::code());
        let (b, _) = pt.translate(Vpn::new(5), Protection::code());
        assert_eq!(a, b);
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let mut pt = PageTable::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let (pfn, _) = pt.translate(Vpn::new(i), Protection::data());
            assert!(seen.insert(pfn), "duplicate frame for page {i}");
        }
    }

    #[test]
    fn frames_are_scrambled_not_identity() {
        let mut pt = PageTable::new();
        let (a, _) = pt.translate(Vpn::new(0), Protection::code());
        let (b, _) = pt.translate(Vpn::new(1), Protection::code());
        assert_ne!(b.raw(), a.raw() + 1, "frames should not be sequential");
    }

    #[test]
    fn protection_is_remembered() {
        let mut pt = PageTable::new();
        pt.translate(Vpn::new(9), Protection::data());
        let (_, prot) = pt.translate(Vpn::new(9), Protection::code());
        assert_eq!(prot, Protection::data(), "first touch wins");
    }

    #[test]
    fn probe_does_not_allocate() {
        let mut pt = PageTable::new();
        assert_eq!(pt.probe(Vpn::new(1)), None);
        assert_eq!(pt.mapped_pages(), 0);
        pt.translate(Vpn::new(1), Protection::code());
        assert!(pt.probe(Vpn::new(1)).is_some());
    }

    #[test]
    fn remap_changes_frame() {
        let mut pt = PageTable::new();
        let (old, _) = pt.translate(Vpn::new(3), Protection::code());
        let new = pt.remap(Vpn::new(3)).unwrap();
        assert_ne!(old, new);
        let (cur, _) = pt.translate(Vpn::new(3), Protection::code());
        assert_eq!(cur, new);
        assert_eq!(pt.remap(Vpn::new(999)), None);
    }

    #[test]
    fn unmap_removes() {
        let mut pt = PageTable::new();
        pt.translate(Vpn::new(3), Protection::code());
        assert!(pt.unmap(Vpn::new(3)).is_some());
        assert_eq!(pt.probe(Vpn::new(3)), None);
        assert_eq!(pt.unmap(Vpn::new(3)), None);
    }

    #[test]
    fn determinism_across_instances() {
        let mut a = PageTable::new();
        let mut b = PageTable::new();
        for i in [5u64, 1, 9, 2] {
            assert_eq!(
                a.translate(Vpn::new(i), Protection::code()),
                b.translate(Vpn::new(i), Protection::code())
            );
        }
    }
}
