//! Property-based cross-checks of the hot-path fast paths against
//! straightforward reference models.
//!
//! The optimized structures — the SoA, MRU-fast-pathed [`Tlb`] and
//! [`Cache`] (bitmask [`SetState`](crate::cache::SetState) per set), and
//! the open-addressed [`PageTable`] — must be *observationally identical*
//! to the pre-optimization implementations. [`RefTlb`] and [`RefCache`]
//! below are deliberately **retained AoS models**: one struct per
//! way/entry, a plain linear scan, explicit invalid-then-LRU victim
//! choice, no memoized last-hit entry — the layout the SoA refactor
//! replaced. Each property drives an optimized instance and its reference
//! through the same randomized operation sequence and asserts every
//! result (hit/miss, translation, writeback address — which pins the
//! victim choice) and every counter agrees at every step.
//!
//! Runs on the vendored `proptest` shim (seeded, deterministic; see
//! `vendor/README.md`).

use proptest::prelude::*;

use cfr_types::{Pfn, Protection, TlbOrganization, Vpn};

use crate::cache::{AccessKind, Cache, CacheConfig};
use crate::page_table::reference::HashPageTable;
use crate::page_table::PageTable;
use crate::tlb::{Tlb, TlbConfig};
use cfr_types::CacheOrganization;

// ---- reference models -------------------------------------------------

/// The pre-MRU TLB: linear way scan on every access, explicit
/// invalid-then-LRU victim choice, no last-hit memo.
#[derive(Clone, Debug, Default, Copy)]
struct RefTlbEntry {
    vpn: Vpn,
    pfn: Pfn,
    prot: Protection,
    valid: bool,
    lru: u64,
}

#[derive(Clone, Debug)]
struct RefTlb {
    entries: Vec<RefTlbEntry>,
    ways: usize,
    sets: u64,
    tick: u64,
    accesses: u64,
    hits: u64,
    misses: u64,
}

impl RefTlb {
    fn new(org: TlbOrganization) -> Self {
        let ways = org.associativity as usize;
        let sets = u64::from(org.sets());
        Self {
            entries: vec![RefTlbEntry::default(); ways * sets as usize],
            ways,
            sets,
            tick: 0,
            accesses: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_of(&self, vpn: Vpn) -> usize {
        (vpn.raw() % self.sets) as usize
    }

    fn access(&mut self, vpn: Vpn) -> Option<(Pfn, Protection)> {
        self.tick += 1;
        self.accesses += 1;
        let base = self.set_of(vpn) * self.ways;
        let tick = self.tick;
        if let Some(e) = self.entries[base..base + self.ways]
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn)
        {
            e.lru = tick;
            self.hits += 1;
            Some((e.pfn, e.prot))
        } else {
            self.misses += 1;
            None
        }
    }

    fn install(&mut self, vpn: Vpn, pfn: Pfn, prot: Protection) {
        self.tick += 1;
        let base = self.set_of(vpn) * self.ways;
        let tick = self.tick;
        let ways = &mut self.entries[base..base + self.ways];
        if let Some(e) = ways.iter_mut().find(|e| e.valid && e.vpn == vpn) {
            e.pfn = pfn;
            e.prot = prot;
            e.lru = tick;
            return;
        }
        let victim = match ways.iter().position(|e| !e.valid) {
            Some(i) => i,
            None => {
                let mut min = 0;
                for (i, e) in ways.iter().enumerate().skip(1) {
                    if e.lru < ways[min].lru {
                        min = i;
                    }
                }
                min
            }
        };
        ways[victim] = RefTlbEntry {
            vpn,
            pfn,
            prot,
            valid: true,
            lru: tick,
        };
    }

    fn invalidate(&mut self, vpn: Vpn) -> bool {
        let base = self.set_of(vpn) * self.ways;
        if let Some(e) = self.entries[base..base + self.ways]
            .iter_mut()
            .find(|e| e.valid && e.vpn == vpn)
        {
            e.valid = false;
            true
        } else {
            false
        }
    }
}

/// The pre-MRU cache: set/tag by division, linear way scan, no last-hit
/// block memo.
#[derive(Clone, Copy, Debug, Default)]
struct RefWay {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

#[derive(Clone, Debug)]
struct RefCache {
    ways: Vec<RefWay>,
    assoc: usize,
    sets: u64,
    block_bits: u32,
    tick: u64,
    accesses: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl RefCache {
    fn new(org: CacheOrganization) -> Self {
        let sets = org.sets();
        let assoc = org.associativity as usize;
        Self {
            ways: vec![RefWay::default(); sets as usize * assoc],
            assoc,
            sets,
            block_bits: org.block_bytes.trailing_zeros(),
            tick: 0,
            accesses: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    fn access(&mut self, addr: u64, kind: AccessKind) -> (bool, Option<u64>) {
        self.tick += 1;
        self.accesses += 1;
        let block = addr >> self.block_bits;
        let set = (block % self.sets) as usize;
        let tag = block / self.sets;
        let base = set * self.assoc;
        let tick = self.tick;
        let sets = self.sets;
        let block_bits = self.block_bits;
        let ways = &mut self.ways[base..base + self.assoc];
        if let Some(w) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            w.lru = tick;
            if kind == AccessKind::Write {
                w.dirty = true;
            }
            self.hits += 1;
            return (true, None);
        }
        self.misses += 1;
        let victim_idx = match ways.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                let mut min = 0;
                for (i, w) in ways.iter().enumerate().skip(1) {
                    if w.lru < ways[min].lru {
                        min = i;
                    }
                }
                min
            }
        };
        let victim = &mut ways[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.writebacks += 1;
            Some(((victim.tag * sets) + set as u64) << block_bits)
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = kind == AccessKind::Write;
        victim.lru = tick;
        (false, writeback)
    }
}

// ---- properties -------------------------------------------------------

fn tlb_org(shape: u64) -> TlbOrganization {
    // A spread of small shapes: FA 1/2/8, and 2-way set-associative 8.
    match shape % 4 {
        0 => TlbOrganization::fully_associative(1),
        1 => TlbOrganization::fully_associative(2),
        2 => TlbOrganization::fully_associative(8),
        _ => TlbOrganization::set_associative(8, 2),
    }
}

proptest! {
    /// The MRU-fast-pathed TLB agrees with the linear-scan reference on
    /// every lookup result and every counter, across lookups (with page
    /// table), probe-style accesses, installs, and invalidations.
    #[test]
    fn tlb_fast_path_matches_reference(
        shape in 0u64..4,
        ops in proptest::collection::vec((0u64..4, 0u64..12, proptest::bool::ANY), 1..300),
    ) {
        let org = tlb_org(shape);
        let mut fast = Tlb::new(TlbConfig { organization: org, miss_penalty: 50 });
        let mut reference = RefTlb::new(org);
        let mut pt = PageTable::new();
        for &(op, page, prefetch) in &ops {
            let vpn = Vpn::new(page);
            if prefetch {
                // The batched-probe warm-up is architecturally a no-op:
                // interleaving it anywhere must not perturb parity.
                fast.prefetch(vpn);
            }
            match op {
                0 | 1 => {
                    // lookup == access + refill-on-miss, against the same
                    // page table the reference consults.
                    let got = fast.lookup(vpn, &mut pt, Protection::code());
                    let want = match reference.access(vpn) {
                        Some((pfn, prot)) => (true, pfn, prot),
                        None => {
                            let (pfn, prot) = pt.translate(vpn, Protection::code());
                            reference.install(vpn, pfn, prot);
                            (false, pfn, prot)
                        }
                    };
                    prop_assert_eq!((got.hit, got.pfn, got.prot), want);
                }
                2 => {
                    let got = fast.access(vpn);
                    let want = reference.access(vpn);
                    prop_assert_eq!(got, want);
                }
                _ => {
                    let got = fast.invalidate(vpn);
                    let want = reference.invalidate(vpn);
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(fast.stats().accesses, reference.accesses);
            prop_assert_eq!(fast.stats().hits, reference.hits);
            prop_assert_eq!(fast.stats().misses, reference.misses);
        }
        // Final residency agrees entry-for-entry.
        for page in 0..12 {
            let vpn = Vpn::new(page);
            let resident = reference
                .entries
                .iter()
                .find(|e| e.valid && e.vpn == vpn)
                .map(|e| e.pfn);
            prop_assert_eq!(fast.probe(vpn), resident);
        }
    }

    /// The MRU-fast-pathed cache agrees with the divide-and-scan
    /// reference on every hit/miss, every writeback address, and every
    /// counter, for direct-mapped and set-associative shapes — including
    /// 16 ways, the widest the packed per-set bitmasks admit (the
    /// `full_mask` all-ones edge case).
    #[test]
    fn cache_fast_path_matches_reference(
        assoc_sel in 0u64..4,
        ops in proptest::collection::vec(
            (0u64..0x400, proptest::bool::ANY, proptest::bool::ANY),
            1..400,
        ),
    ) {
        let assoc = [1u32, 2, 4, 16][assoc_sel as usize];
        let org = CacheOrganization {
            size_bytes: u64::from(64 * assoc), // 4 sets x 16-byte blocks
            associativity: assoc,
            block_bytes: 16,
        };
        let mut fast = Cache::new(CacheConfig { organization: org, hit_latency: 1 });
        let mut reference = RefCache::new(org);
        for &(addr, write, prefetch) in &ops {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            if prefetch {
                // Architecturally a no-op (host-cache warm-up only).
                fast.prefetch(addr);
            }
            let got = fast.access(addr, kind);
            let (hit, writeback) = reference.access(addr, kind);
            prop_assert_eq!(got.hit, hit, "addr {:#x}", addr);
            prop_assert_eq!(got.writeback, writeback, "addr {:#x}", addr);
            prop_assert_eq!(fast.stats().accesses, reference.accesses);
            prop_assert_eq!(fast.stats().hits, reference.hits);
            prop_assert_eq!(fast.stats().misses, reference.misses);
            prop_assert_eq!(fast.stats().writebacks, reference.writebacks);
        }
    }

    /// An ASID-tagged TLB holding a **single** address space is
    /// step-identical to the untagged reference model: with one ASID the
    /// tag bits are a constant fold into every key, so hits, misses,
    /// victim choice, counters, and residency must all be unchanged —
    /// whichever ASID value that is.
    #[test]
    fn single_asid_tlb_matches_untagged_reference(
        shape in 0u64..4,
        asid in 0u64..0x10000,
        ops in proptest::collection::vec((0u64..4, 0u64..12, proptest::bool::ANY), 1..300),
    ) {
        let org = tlb_org(shape);
        let mut tagged = Tlb::new(TlbConfig { organization: org, miss_penalty: 50 });
        tagged.set_asid(asid as u16);
        let mut reference = RefTlb::new(org);
        let mut pt = PageTable::new();
        for &(op, page, prefetch) in &ops {
            let vpn = Vpn::new(page);
            if prefetch {
                tagged.prefetch(vpn);
            }
            match op {
                0 | 1 => {
                    let got = tagged.lookup(vpn, &mut pt, Protection::code());
                    let want = match reference.access(vpn) {
                        Some((pfn, prot)) => (true, pfn, prot),
                        None => {
                            let (pfn, prot) = pt.translate(vpn, Protection::code());
                            reference.install(vpn, pfn, prot);
                            (false, pfn, prot)
                        }
                    };
                    prop_assert_eq!((got.hit, got.pfn, got.prot), want);
                }
                2 => {
                    prop_assert_eq!(tagged.access(vpn), reference.access(vpn));
                }
                _ => {
                    prop_assert_eq!(tagged.invalidate(vpn), reference.invalidate(vpn));
                }
            }
            prop_assert_eq!(tagged.stats().accesses, reference.accesses);
            prop_assert_eq!(tagged.stats().hits, reference.hits);
            prop_assert_eq!(tagged.stats().misses, reference.misses);
        }
        for page in 0..12 {
            let vpn = Vpn::new(page);
            let resident = reference
                .entries
                .iter()
                .find(|e| e.valid && e.vpn == vpn)
                .map(|e| e.pfn);
            prop_assert_eq!(tagged.probe(vpn), resident);
        }
    }

    /// Flush-on-switch never serves a pre-switch translation: after
    /// `invalidate_all`, nothing is resident, and the incoming process's
    /// first lookup of every page misses and returns a translation from
    /// *its own* page table — observable because the outgoing process
    /// allocated its pages as code and the incoming one allocates data,
    /// and the page table's first touch wins.
    #[test]
    fn flush_on_switch_never_serves_a_pre_switch_translation(
        shape in 0u64..4,
        warmup in proptest::collection::vec(0u64..12, 1..100),
        probes in proptest::collection::vec(0u64..12, 1..50),
    ) {
        let org = tlb_org(shape);
        let mut tlb = Tlb::new(TlbConfig { organization: org, miss_penalty: 50 });
        let mut pt_out = PageTable::new();
        for &page in &warmup {
            tlb.lookup(Vpn::new(page), &mut pt_out, Protection::code());
        }

        // Context switch, flush mode: every resident entry is shot down.
        tlb.invalidate_all();
        prop_assert_eq!(tlb.resident_entries(), 0);
        for page in 0..12 {
            prop_assert!(tlb.probe(Vpn::new(page)).is_none());
        }

        // The incoming process (own page table, data pages): its first
        // lookup of each page must miss and must carry the incoming
        // process's protection — a stale pre-switch entry would hit with
        // the outgoing process's code protection.
        let mut pt_in = PageTable::new();
        let mut seen = std::collections::HashSet::new();
        for &page in &probes {
            let got = tlb.lookup(Vpn::new(page), &mut pt_in, Protection::data());
            if seen.insert(page) {
                prop_assert!(!got.hit, "pre-switch translation served for page {}", page);
            }
            prop_assert_eq!(got.prot, Protection::data());
        }
    }

    /// The open-addressed page table agrees with the `HashMap` reference
    /// across interleaved translate / probe / remap / unmap sequences,
    /// including tombstone reuse and growth.
    #[test]
    fn page_table_matches_hashmap_reference(
        ops in proptest::collection::vec((0u64..4, 0u64..48, proptest::bool::ANY), 1..500),
    ) {
        let mut fast = PageTable::new();
        let mut reference = HashPageTable::new();
        for &(op, page, as_code) in &ops {
            let vpn = Vpn::new(page);
            let prot = if as_code { Protection::code() } else { Protection::data() };
            match op {
                0 | 1 => {
                    prop_assert_eq!(fast.translate(vpn, prot), reference.translate(vpn, prot));
                }
                2 => {
                    prop_assert_eq!(fast.remap(vpn), reference.remap(vpn));
                }
                _ => {
                    prop_assert_eq!(fast.unmap(vpn), reference.unmap(vpn));
                }
            }
            prop_assert_eq!(fast.probe(vpn), reference.probe(vpn));
            prop_assert_eq!(fast.mapped_pages(), reference.mapped_pages());
        }
        // Every page the reference still maps is found with the right
        // translation, and no unmapped page is.
        for page in 0..48 {
            let vpn = Vpn::new(page);
            prop_assert_eq!(fast.probe(vpn), reference.probe(vpn));
        }
    }
}

/// The packed per-set record is the unit the hot loop streams over — one
/// per set, adjacent in a dense array. Growing it past a cache line (64
/// bytes) would defeat the point of packing it; today it is 6 bytes
/// (valid/dirty 16-way bitmasks + MRU/LRU way bytes).
#[test]
fn per_set_record_stays_within_a_cache_line() {
    let size = std::mem::size_of::<crate::cache::SetState>();
    assert!(size <= 64, "SetState grew to {size} bytes");
}
