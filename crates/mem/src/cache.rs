//! Set-associative, true-LRU, write-back/write-allocate blocking cache.
//!
//! The cache is deliberately *address-space agnostic*: it indexes and tags
//! whatever `u64` key the caller supplies. The paper's PI-PT / VI-PT / VI-VT
//! distinction is about **which** address (virtual or physical, for index
//! and for tag) reaches a cache — that policy lives with the fetch engine,
//! not here. A VI-VT iL1 is this cache fed virtual addresses; a PI-PT iL1 is
//! this cache fed physical ones.

use cfr_types::{CacheOrganization, RecordError, RecordReader, RecordWriter};
use serde::{Deserialize, Serialize};

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Geometry (capacity, ways, block size).
    pub organization: CacheOrganization,
    /// Latency of a hit, in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's default iL1: 8 KB direct-mapped, 32-byte blocks, 1 cycle.
    #[must_use]
    pub fn default_il1() -> Self {
        Self {
            organization: CacheOrganization {
                size_bytes: 8 * 1024,
                associativity: 1,
                block_bytes: 32,
            },
            hit_latency: 1,
        }
    }

    /// The paper's default dL1: 8 KB 2-way, 32-byte blocks, 1 cycle.
    #[must_use]
    pub fn default_dl1() -> Self {
        Self {
            organization: CacheOrganization {
                size_bytes: 8 * 1024,
                associativity: 2,
                block_bytes: 32,
            },
            hit_latency: 1,
        }
    }

    /// The paper's default unified L2: 1 MB 2-way, 128-byte blocks, 10
    /// cycles.
    #[must_use]
    pub fn default_l2() -> Self {
        Self {
            organization: CacheOrganization {
                size_bytes: 1024 * 1024,
                associativity: 2,
                block_bytes: 128,
            },
            hit_latency: 10,
        }
    }
}

/// Read or write access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load or an instruction fetch.
    Read,
    /// A store (write-allocate).
    Write,
}

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Block-aligned address of a dirty block evicted by this access, if
    /// any. The caller owns writing it back to the next level.
    pub writeback: Option<u64>,
}

/// Hit/miss/writeback counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty evictions handed to the caller.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; 0 for an untouched cache.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Serializes as `cachestats <accesses> <hits> <misses> <writebacks>`
    /// (persistent run store codec — the vendored `serde` is a no-op).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("cachestats");
        w.u64(self.accesses);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.writebacks);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("cachestats")?;
        Ok(Self {
            accesses: r.u64()?,
            hits: r.u64()?,
            misses: r.u64()?,
            writebacks: r.u64()?,
        })
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Sentinel for [`Cache::mru_block`]: no last-hit block to fast-path
/// through. Real block addresses are `addr >> block_bits < 2^60`, so the
/// all-ones value can never collide with one.
const NO_MRU_BLOCK: u64 = u64::MAX;

/// A blocking, set-associative, true-LRU, write-back/write-allocate cache.
///
/// Accesses check the **last-hit block first** (an MRU fast path):
/// with a 32-byte block, eight consecutive instruction fetches land on
/// the same block, so most accesses — especially on the direct-mapped
/// iL1 — skip the set/tag decomposition and the way scan entirely. The
/// fast path performs exactly the bookkeeping the scan would (tick, LRU
/// stamp, dirty bit, hit counter), so replacement behaviour and
/// statistics are bit-identical.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>, // sets * associativity, row-major by set
    assoc: usize,
    sets: u64,
    /// `(sets - 1, log2(sets))` when the set count is a power of two (the
    /// common case), letting [`Cache::set_and_tag`] mask and shift instead
    /// of dividing.
    set_mask_shift: Option<(u64, u32)>,
    /// Block address (`addr >> block_bits`) of the most recently hit or
    /// refilled block; [`NO_MRU_BLOCK`] when invalid.
    mru_block: u64,
    /// Index into `ways` of that block's way (valid iff `mru_block` is).
    mru_way: usize,
    block_bits: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the organization is degenerate (see
    /// [`CacheOrganization::sets`]).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.organization.sets();
        let assoc = cfg.organization.associativity as usize;
        Self {
            cfg,
            ways: vec![Way::default(); sets as usize * assoc],
            assoc,
            sets,
            set_mask_shift: sets
                .is_power_of_two()
                .then(|| (sets - 1, sets.trailing_zeros())),
            mru_block: NO_MRU_BLOCK,
            mru_way: 0,
            block_bits: cfg.organization.block_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency in cycles.
    #[must_use]
    pub fn hit_latency(&self) -> u32 {
        self.cfg.hit_latency
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.block_bits;
        match self.set_mask_shift {
            Some((mask, shift)) => ((block & mask) as usize, block >> shift),
            None => ((block % self.sets) as usize, block / self.sets),
        }
    }

    /// Accesses `addr`, allocating on a miss. Returns hit/miss and any dirty
    /// eviction the caller must write back.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let block = addr >> self.block_bits;
        // MRU fast path: same block as the last hit — no set/tag split,
        // no way scan.
        if block == self.mru_block {
            let way = &mut self.ways[self.mru_way];
            way.lru = self.tick;
            if kind == AccessKind::Write {
                way.dirty = true;
            }
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;

        for i in base..base + self.assoc {
            let way = &mut self.ways[i];
            if way.valid && way.tag == tag {
                way.lru = self.tick;
                if kind == AccessKind::Write {
                    way.dirty = true;
                }
                self.mru_block = block;
                self.mru_way = i;
                self.stats.hits += 1;
                return AccessResult {
                    hit: true,
                    writeback: None,
                };
            }
        }

        self.stats.misses += 1;
        let sets = self.sets;
        let block_bits = self.block_bits;
        // Victim: the first invalid way if any, else the first true-LRU
        // way. Invalid-way preference is explicit (the old
        // `min_by_key(lru + 1)` encoding wrapped if `lru == u64::MAX`).
        let ways = &mut self.ways[base..base + self.assoc];
        let victim_idx = ways.iter().position(|w| !w.valid).unwrap_or_else(|| {
            let mut min = 0;
            for (i, w) in ways.iter().enumerate().skip(1) {
                if w.lru < ways[min].lru {
                    min = i;
                }
            }
            min
        });
        let victim = &mut ways[victim_idx];
        let writeback = if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            Some(((victim.tag * sets) + set as u64) << block_bits)
        } else {
            None
        };
        victim.tag = tag;
        victim.valid = true;
        victim.dirty = kind == AccessKind::Write;
        victim.lru = self.tick;
        self.mru_block = block;
        self.mru_way = base + victim_idx;
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Whether `addr` is resident, without touching LRU state or stats.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;
        self.ways[base..base + self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Invalidates everything (e.g., on an address-space switch for a
    /// virtually-tagged cache without ASIDs).
    pub fn invalidate_all(&mut self) {
        self.mru_block = NO_MRU_BLOCK;
        for w in &mut self.ways {
            w.valid = false;
            w.dirty = false;
        }
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_record_round_trips() {
        let stats = CacheStats {
            accesses: u64::MAX,
            hits: 3,
            misses: 2,
            writebacks: 1,
        };
        let mut w = RecordWriter::new();
        stats.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        assert_eq!(CacheStats::from_record(&mut r).unwrap(), stats);
        r.finish().unwrap();
        assert!(CacheStats::from_record(&mut RecordReader::new("tlbstats 1 2 3 4")).is_err());
    }

    fn tiny(assoc: u32) -> Cache {
        // 4 sets x assoc ways x 16-byte blocks.
        Cache::new(CacheConfig {
            organization: CacheOrganization {
                size_bytes: u64::from(64 * assoc),
                associativity: assoc,
                block_bytes: 16,
            },
            hit_latency: 1,
        })
    }

    #[test]
    fn default_configs_match_table1() {
        let il1 = Cache::new(CacheConfig::default_il1());
        assert_eq!(il1.config().organization.sets(), 256);
        let dl1 = Cache::new(CacheConfig::default_dl1());
        assert_eq!(dl1.config().organization.sets(), 128);
        let l2 = Cache::new(CacheConfig::default_l2());
        assert_eq!(l2.config().organization.sets(), 4096);
        assert_eq!(l2.hit_latency(), 10);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(1);
        assert!(!c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x10F, AccessKind::Read).hit, "same block");
        assert!(!c.access(0x110, AccessKind::Read).hit, "next block");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = tiny(1); // 4 sets, 16B blocks: addresses 64 apart conflict
        c.access(0x000, AccessKind::Read);
        c.access(0x040, AccessKind::Read); // same set, evicts
        assert!(!c.access(0x000, AccessKind::Read).hit);
    }

    #[test]
    fn two_way_holds_two_conflicting_blocks() {
        let mut c = tiny(2);
        c.access(0x000, AccessKind::Read);
        c.access(0x040, AccessKind::Read);
        assert!(c.access(0x000, AccessKind::Read).hit);
        assert!(c.access(0x040, AccessKind::Read).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        c.access(0x000, AccessKind::Read); // way A
        c.access(0x040, AccessKind::Read); // way B
        c.access(0x000, AccessKind::Read); // touch A -> B is LRU
        c.access(0x080, AccessKind::Read); // evicts B
        assert!(c.access(0x000, AccessKind::Read).hit);
        assert!(!c.access(0x040, AccessKind::Read).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Write);
        let r = c.access(0x040, AccessKind::Read); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        let r = c.access(0x040, AccessKind::Read);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        c.access(0x000, AccessKind::Write);
        let r = c.access(0x040, AccessKind::Read);
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn writeback_address_is_block_aligned() {
        let mut c = tiny(1);
        c.access(0x137, AccessKind::Write);
        let r = c.access(0x177, AccessKind::Read); // same set (0x130>>4=19, %4=3; 0x170>>4=23,%4=3)
        assert_eq!(r.writeback, Some(0x130));
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        let before = *c.stats();
        assert!(c.probe(0x00F));
        assert!(!c.probe(0x040));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = tiny(2);
        c.access(0x000, AccessKind::Write);
        c.access(0x040, AccessKind::Read);
        assert_eq!(c.resident_blocks(), 2);
        c.invalidate_all();
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.access(0x000, AccessKind::Read).hit);
        // Dirty state must not leak a writeback after invalidation.
        assert!(c.access(0x040, AccessKind::Read).writeback.is_none());
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        c.access(0x000, AccessKind::Read);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
