//! Set-associative, true-LRU, write-back/write-allocate blocking cache.
//!
//! The cache is deliberately *address-space agnostic*: it indexes and tags
//! whatever `u64` key the caller supplies. The paper's PI-PT / VI-PT / VI-VT
//! distinction is about **which** address (virtual or physical, for index
//! and for tag) reaches a cache — that policy lives with the fetch engine,
//! not here. A VI-VT iL1 is this cache fed virtual addresses; a PI-PT iL1 is
//! this cache fed physical ones.

use cfr_types::{CacheOrganization, RecordError, RecordReader, RecordWriter};
use serde::{Deserialize, Serialize};

/// Configuration of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Geometry (capacity, ways, block size).
    pub organization: CacheOrganization,
    /// Latency of a hit, in cycles.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// The paper's default iL1: 8 KB direct-mapped, 32-byte blocks, 1 cycle.
    #[must_use]
    pub fn default_il1() -> Self {
        Self {
            organization: CacheOrganization {
                size_bytes: 8 * 1024,
                associativity: 1,
                block_bytes: 32,
            },
            hit_latency: 1,
        }
    }

    /// The paper's default dL1: 8 KB 2-way, 32-byte blocks, 1 cycle.
    #[must_use]
    pub fn default_dl1() -> Self {
        Self {
            organization: CacheOrganization {
                size_bytes: 8 * 1024,
                associativity: 2,
                block_bytes: 32,
            },
            hit_latency: 1,
        }
    }

    /// The paper's default unified L2: 1 MB 2-way, 128-byte blocks, 10
    /// cycles.
    #[must_use]
    pub fn default_l2() -> Self {
        Self {
            organization: CacheOrganization {
                size_bytes: 1024 * 1024,
                associativity: 2,
                block_bytes: 128,
            },
            hit_latency: 10,
        }
    }
}

/// Read or write access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load or an instruction fetch.
    Read,
    /// A store (write-allocate).
    Write,
}

/// Outcome of one cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the block was present.
    pub hit: bool,
    /// Block-aligned address of a dirty block evicted by this access, if
    /// any. The caller owns writing it back to the next level.
    pub writeback: Option<u64>,
}

/// Hit/miss/writeback counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses.
    pub misses: u64,
    /// Dirty evictions handed to the caller.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate in [0, 1]; 0 for an untouched cache.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Serializes as `cachestats <accesses> <hits> <misses> <writebacks>`
    /// (persistent run store codec — the vendored `serde` is a no-op).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("cachestats");
        w.u64(self.accesses);
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.writebacks);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("cachestats")?;
        Ok(Self {
            accesses: r.u64()?,
            hits: r.u64()?,
            misses: r.u64()?,
            writebacks: r.u64()?,
        })
    }
}

/// Sentinel for [`Cache::mru_block`]: no last-hit block to fast-path
/// through. Real block addresses are `addr >> block_bits < 2^60`, so the
/// all-ones value can never collide with one.
const NO_MRU_BLOCK: u64 = u64::MAX;

/// Key-mirror value for an invalid way. Real tags are block addresses
/// divided by the set count (`< 2^60`, see [`NO_MRU_BLOCK`]), so the
/// all-ones value can never collide with one — a single dense scan of
/// the key row therefore answers "valid way holding this tag" with no
/// separate validity check.
const NO_TAG: u64 = u64::MAX;

/// Sentinel for [`SetState::lru_way`]: the set's LRU way is not cached
/// and the next victim choice must scan the stamp row.
const UNKNOWN_LRU: u8 = u8::MAX;

/// Packed per-set hot state: everything a lookup touches besides the key
/// and stamp rows, in one ≤ 64-byte record (pinned by a size test) so a
/// set probe pulls a single host cache line of bookkeeping.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SetState {
    /// Bitmask of valid ways (bit `w` = way `w`; associativity ≤ 16, so
    /// the whole record is 6 bytes and a 1 MB L2's per-set array fits in
    /// ~48 KB of host memory instead of ~200 KB).
    valid: u16,
    /// Bitmask of dirty ways.
    dirty: u16,
    /// MRU hint: the way most recently touched in this set. The way scan
    /// probes it first — a cross-set access pattern defeats the global
    /// last-block fast path but usually re-lands on the same way per set.
    /// Purely an ordering hint; never affects results.
    mru_way: u8,
    /// LRU summary: the way the victim rule would evict from a full set,
    /// or [`UNKNOWN_LRU`]. Maintained exactly: a scan caches the
    /// runner-up stamp's way (which becomes LRU once the victim is
    /// restamped), and any touch of the cached way invalidates it — so a
    /// full-set miss streak pays for every *other* stamp-row scan.
    lru_way: u8,
}

impl Default for SetState {
    fn default() -> Self {
        Self {
            valid: 0,
            dirty: 0,
            mru_way: 0,
            lru_way: UNKNOWN_LRU,
        }
    }
}

impl SetState {
    /// Picks the replacement victim: the first invalid way if any, else
    /// the true-LRU way (the pinned preference order; the old
    /// `min_by_key(lru + 1)` encoding wrapped if `lru == u64::MAX`).
    ///
    /// Stamps are unique — each is a distinct tick — so the minimum is
    /// unambiguous. A full-set scan also caches the runner-up in
    /// [`SetState::lru_way`]: once the caller restamps the victim, the
    /// runner-up *is* the set's LRU, so the next miss (absent an
    /// intervening touch of that way) skips the scan.
    #[inline]
    fn victim(&mut self, assoc: usize, lru_row: &[u64]) -> usize {
        debug_assert_eq!(self.valid, full_mask(assoc), "caller handles invalid ways");
        if self.lru_way != UNKNOWN_LRU {
            let way = self.lru_way as usize;
            // The victim is about to become MRU and the runner-up is
            // unknown without a scan; re-arm lazily.
            self.lru_way = UNKNOWN_LRU;
            return way;
        }
        let mut min = 0;
        for (i, &stamp) in lru_row.iter().enumerate().skip(1) {
            if stamp < lru_row[min] {
                min = i;
            }
        }
        let mut second = usize::from(min == 0);
        for (i, &stamp) in lru_row.iter().enumerate() {
            if i != min && stamp < lru_row[second] {
                second = i;
            }
        }
        self.lru_way = second as u8;
        min
    }
}

/// Valid-mask value of a fully-populated set.
#[inline]
fn full_mask(assoc: usize) -> u16 {
    match assoc {
        16 => u16::MAX,
        _ => (1u16 << assoc) - 1,
    }
}

/// A blocking, set-associative, true-LRU, write-back/write-allocate cache.
///
/// Metadata is laid out **structure-of-arrays**: a dense tag-key row per
/// set (`u64` each, [`NO_TAG`] = invalid — the same key-mirror pattern the
/// TLB proved), a dense LRU-stamp row, and one packed [`SetState`] record
/// of per-set hot state. A tag walk or victim scan streams one or two
/// host cache lines instead of striding over 32-byte way structs — on the
/// modeled 1 MB L2, whose way metadata is larger than the host L1, that
/// is the difference between one host miss per probe and several.
///
/// Accesses check the **last-hit block first** (an MRU fast path):
/// with a 32-byte block, eight consecutive instruction fetches land on
/// the same block, so most accesses — especially on the direct-mapped
/// iL1 — skip the set/tag decomposition and the way scan entirely. The
/// fast path performs exactly the bookkeeping the scan would (tick, LRU
/// stamp, dirty bit, hit counter), so replacement behaviour and
/// statistics are bit-identical.
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    /// Tag per way ([`NO_TAG`] = invalid), `sets * associativity`,
    /// row-major by set.
    keys: Vec<u64>,
    /// LRU stamp per way, parallel to `keys`. Compared only between valid
    /// ways, whose stamps are distinct ticks. **Empty for associativity
    /// ≤ 2**: a direct-mapped set has one victim candidate, and a 2-way
    /// set's true-LRU way is always the one [`SetState::mru_way`] does
    /// *not* name — so the paper's entire Table 1 hierarchy (DM iL1,
    /// 2-way dL1, 2-way L2) runs with zero stamp traffic.
    lru: Vec<u64>,
    /// One packed hot-state record per set.
    set_state: Vec<SetState>,
    assoc: usize,
    sets: u64,
    /// `(sets - 1, log2(sets))` when the set count is a power of two (the
    /// common case), letting [`Cache::set_and_tag`] mask and shift instead
    /// of dividing.
    set_mask_shift: Option<(u64, u32)>,
    /// Block address (`addr >> block_bits`) of the most recently hit or
    /// refilled block; [`NO_MRU_BLOCK`] when invalid.
    mru_block: u64,
    /// Set and way (within the set) of that block (valid iff `mru_block`
    /// is).
    mru_set: usize,
    mru_way: usize,
    block_bits: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache.
    ///
    /// # Panics
    ///
    /// Panics if the organization is degenerate (see
    /// [`CacheOrganization::sets`]).
    #[must_use]
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.organization.sets();
        let assoc = cfg.organization.associativity as usize;
        assert!(
            (1..=16).contains(&assoc),
            "associativity {assoc} exceeds the 16-way per-set bitmasks \
             (wide CAM-style structures belong in `Tlb`)"
        );
        Self {
            cfg,
            keys: vec![NO_TAG; sets as usize * assoc],
            lru: if assoc > 2 {
                vec![0; sets as usize * assoc]
            } else {
                Vec::new()
            },
            set_state: vec![SetState::default(); sets as usize],
            assoc,
            sets,
            set_mask_shift: sets
                .is_power_of_two()
                .then(|| (sets - 1, sets.trailing_zeros())),
            mru_block: NO_MRU_BLOCK,
            mru_set: 0,
            mru_way: 0,
            block_bits: cfg.organization.block_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Hit latency in cycles.
    #[must_use]
    pub fn hit_latency(&self) -> u32 {
        self.cfg.hit_latency
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let block = addr >> self.block_bits;
        match self.set_mask_shift {
            Some((mask, shift)) => ((block & mask) as usize, block >> shift),
            None => ((block % self.sets) as usize, block / self.sets),
        }
    }

    /// The one place hit-path and refill LRU bookkeeping lives: records
    /// `way` as the set's MRU and — only for associativity > 2, where
    /// stamps exist — stamps it at the current tick, dropping the cached
    /// LRU summary if this touch outdated it. For associativity ≤ 2 the
    /// MRU hint alone determines replacement, so a touch is one `u16`
    /// store into the packed set record.
    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.set_state[set].mru_way = way as u8;
        if self.assoc > 2 {
            self.lru[set * self.assoc + way] = self.tick;
            let st = &mut self.set_state[set];
            if st.lru_way == way as u8 {
                st.lru_way = UNKNOWN_LRU;
            }
        }
    }

    /// Picks the replacement victim for `set` (the pinned preference
    /// order: first invalid way by index, else the true-LRU way).
    #[inline]
    fn pick_victim(&mut self, set: usize) -> usize {
        let valid = self.set_state[set].valid;
        if valid != full_mask(self.assoc) {
            return (!valid).trailing_zeros() as usize;
        }
        match self.assoc {
            // Direct-mapped: the only way.
            1 => 0,
            // 2-way true LRU: the way not touched most recently. Exactly
            // the stamp argmin — within a full set both stamps are
            // distinct ticks and `mru_way` holds the later one.
            2 => 1 - self.set_state[set].mru_way as usize,
            _ => {
                let base = set * self.assoc;
                self.set_state[set].victim(self.assoc, &self.lru[base..base + self.assoc])
            }
        }
    }

    /// Accesses `addr`, allocating on a miss. Returns hit/miss and any dirty
    /// eviction the caller must write back.
    #[inline]
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let block = addr >> self.block_bits;
        // MRU fast path: same block as the last hit — no set/tag split,
        // no way scan.
        if block == self.mru_block {
            self.touch(self.mru_set, self.mru_way);
            if kind == AccessKind::Write {
                self.set_state[self.mru_set].dirty |= 1 << self.mru_way;
            }
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }
        let (set, tag) = self.set_and_tag(addr);
        debug_assert!(tag < NO_TAG, "tag collides with the invalid sentinel");
        let base = set * self.assoc;

        // Way lookup: the set's MRU-hint way first, then the dense key
        // row (at most one way can hold the tag, so order never changes
        // the result).
        let keys_row = &self.keys[base..base + self.assoc];
        let hint = self.set_state[set].mru_way as usize;
        let found = if hint < self.assoc && keys_row[hint] == tag {
            Some(hint)
        } else {
            keys_row.iter().position(|&k| k == tag)
        };
        if let Some(way) = found {
            self.touch(set, way);
            if kind == AccessKind::Write {
                self.set_state[set].dirty |= 1 << way;
            }
            self.mru_block = block;
            self.mru_set = set;
            self.mru_way = way;
            self.stats.hits += 1;
            return AccessResult {
                hit: true,
                writeback: None,
            };
        }

        self.stats.misses += 1;
        let victim = self.pick_victim(set);
        let vbit = 1u16 << victim;
        let st = &mut self.set_state[set];
        let writeback = if st.valid & st.dirty & vbit != 0 {
            self.stats.writebacks += 1;
            Some(((self.keys[base + victim] * self.sets) + set as u64) << self.block_bits)
        } else {
            None
        };
        st.valid |= vbit;
        if kind == AccessKind::Write {
            st.dirty |= vbit;
        } else {
            st.dirty &= !vbit;
        }
        self.touch(set, victim);
        self.keys[base + victim] = tag;
        self.mru_block = block;
        self.mru_set = set;
        self.mru_way = victim;
        AccessResult {
            hit: false,
            writeback,
        }
    }

    /// Begins pulling `addr`'s set metadata (key row, stamp row, packed
    /// set record) toward the host caches without touching any simulator
    /// state. Issued ahead of an *independent* companion lookup (the iTLB
    /// probe of the same fetch, the dTLB probe of the same data access),
    /// the two host-memory misses overlap instead of serializing.
    /// Architecturally a no-op: results, counters, and replacement state
    /// are untouched.
    #[inline]
    pub fn prefetch(&self, addr: u64) {
        let (set, _) = self.set_and_tag(addr);
        let base = set * self.assoc;
        crate::prefetch_read(&self.keys[base]);
        if self.assoc > 2 {
            crate::prefetch_read(&self.lru[base]);
        }
        crate::prefetch_read(&self.set_state[set]);
    }

    /// Whether `addr` is resident, without touching LRU state or stats.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set * self.assoc;
        self.keys[base..base + self.assoc].contains(&tag)
    }

    /// Invalidates everything (e.g., on an address-space switch for a
    /// virtually-tagged cache without ASIDs).
    pub fn invalidate_all(&mut self) {
        self.mru_block = NO_MRU_BLOCK;
        self.keys.fill(NO_TAG);
        self.set_state.fill(SetState::default());
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.set_state
            .iter()
            .map(|s| s.valid.count_ones() as usize)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_record_round_trips() {
        let stats = CacheStats {
            accesses: u64::MAX,
            hits: 3,
            misses: 2,
            writebacks: 1,
        };
        let mut w = RecordWriter::new();
        stats.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        assert_eq!(CacheStats::from_record(&mut r).unwrap(), stats);
        r.finish().unwrap();
        assert!(CacheStats::from_record(&mut RecordReader::new("tlbstats 1 2 3 4")).is_err());
    }

    fn tiny(assoc: u32) -> Cache {
        // 4 sets x assoc ways x 16-byte blocks.
        Cache::new(CacheConfig {
            organization: CacheOrganization {
                size_bytes: u64::from(64 * assoc),
                associativity: assoc,
                block_bytes: 16,
            },
            hit_latency: 1,
        })
    }

    #[test]
    fn default_configs_match_table1() {
        let il1 = Cache::new(CacheConfig::default_il1());
        assert_eq!(il1.config().organization.sets(), 256);
        let dl1 = Cache::new(CacheConfig::default_dl1());
        assert_eq!(dl1.config().organization.sets(), 128);
        let l2 = Cache::new(CacheConfig::default_l2());
        assert_eq!(l2.config().organization.sets(), 4096);
        assert_eq!(l2.hit_latency(), 10);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny(1);
        assert!(!c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x100, AccessKind::Read).hit);
        assert!(c.access(0x10F, AccessKind::Read).hit, "same block");
        assert!(!c.access(0x110, AccessKind::Read).hit, "next block");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = tiny(1); // 4 sets, 16B blocks: addresses 64 apart conflict
        c.access(0x000, AccessKind::Read);
        c.access(0x040, AccessKind::Read); // same set, evicts
        assert!(!c.access(0x000, AccessKind::Read).hit);
    }

    #[test]
    fn two_way_holds_two_conflicting_blocks() {
        let mut c = tiny(2);
        c.access(0x000, AccessKind::Read);
        c.access(0x040, AccessKind::Read);
        assert!(c.access(0x000, AccessKind::Read).hit);
        assert!(c.access(0x040, AccessKind::Read).hit);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        c.access(0x000, AccessKind::Read); // way A
        c.access(0x040, AccessKind::Read); // way B
        c.access(0x000, AccessKind::Read); // touch A -> B is LRU
        c.access(0x080, AccessKind::Read); // evicts B
        assert!(c.access(0x000, AccessKind::Read).hit);
        assert!(!c.access(0x040, AccessKind::Read).hit);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Write);
        let r = c.access(0x040, AccessKind::Read); // evicts dirty 0x000
        assert_eq!(r.writeback, Some(0x000));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        let r = c.access(0x040, AccessKind::Read);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        c.access(0x000, AccessKind::Write);
        let r = c.access(0x040, AccessKind::Read);
        assert_eq!(r.writeback, Some(0x000));
    }

    #[test]
    fn writeback_address_is_block_aligned() {
        let mut c = tiny(1);
        c.access(0x137, AccessKind::Write);
        let r = c.access(0x177, AccessKind::Read); // same set (0x130>>4=19, %4=3; 0x170>>4=23,%4=3)
        assert_eq!(r.writeback, Some(0x130));
    }

    #[test]
    fn probe_does_not_disturb() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        let before = *c.stats();
        assert!(c.probe(0x00F));
        assert!(!c.probe(0x040));
        assert_eq!(*c.stats(), before);
    }

    #[test]
    fn invalidate_all_empties() {
        let mut c = tiny(2);
        c.access(0x000, AccessKind::Write);
        c.access(0x040, AccessKind::Read);
        assert_eq!(c.resident_blocks(), 2);
        c.invalidate_all();
        assert_eq!(c.resident_blocks(), 0);
        assert!(!c.access(0x000, AccessKind::Read).hit);
        // Dirty state must not leak a writeback after invalidation.
        assert!(c.access(0x040, AccessKind::Read).writeback.is_none());
    }

    #[test]
    fn post_flush_access_cannot_hit_via_last_hit_fast_path() {
        // Regression (flush-on-switch): the last-hit block fast path must
        // be cleared by `invalidate_all` — an access right after a flush
        // must miss even on the block the fast path was parked on.
        let mut c = tiny(2);
        for _ in 0..8 {
            c.access(0x000, AccessKind::Read); // park the MRU block fast path
        }
        let hits_before = c.stats().hits;
        c.invalidate_all();
        let after = c.access(0x000, AccessKind::Read);
        assert!(!after.hit, "stale last-hit block served after flush");
        assert_eq!(c.stats().hits, hits_before);
    }

    #[test]
    fn miss_rate() {
        let mut c = tiny(1);
        c.access(0x000, AccessKind::Read);
        c.access(0x000, AccessKind::Read);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }
}
