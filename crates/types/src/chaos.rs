//! Deterministic fault injection for the store stack.
//!
//! The store's robustness story — "every failure is a miss" — is easy
//! to assert and hard to trust. This module makes it *demonstrable*
//! under adversarial schedules while keeping every run reproducible:
//!
//! - [`FaultPlan`] — a seeded schedule of faults. Every decision is a
//!   pure function of `(seed, domain, operation index)` via
//!   [`SplitMix64`], so the same seed injects the same faults at the
//!   same operations, run after run.
//! - [`ChaosBackend`] — wraps any [`StoreBackend`] and injects local
//!   faults: missing loads, delayed returns, corrupted record bytes,
//!   dropped saves, and torn (crash-mid-append) shard tails.
//! - [`ChaosProxy`] — a TCP shim between [`RemoteStore`] and the
//!   daemon that injects network faults: connection resets mid-frame,
//!   byte-level truncation, stalls past the client's read timeout,
//!   duplicated frames, and garbage bytes.
//!
//! Both injectors are selected via [`CHAOS_SEED_ENV`] /
//! [`CHAOS_PLAN_ENV`] (see [`FaultPlan::from_env`]) so tests and the
//! `chaos_soak` harness can turn the screws without code changes.
//!
//! Fault decisions are deterministic by operation count. Network chunk
//! boundaries, however, depend on OS timing, so a [`ChaosProxy`]
//! schedule is deterministic *per chunk sequence*, not bit-for-bit
//! per run — which is fine, because the invariant the soak harness
//! checks is stronger: the simulation's stdout must be byte-identical
//! to a fault-free run *no matter where* the faults land.
//!
//! [`RemoteStore`]: crate::net::RemoteStore

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::record::fnv1a64;
use crate::store::{ClaimOutcome, StoreBackend, SHARD_COUNT, STORE_FORMAT_VERSION};

/// Environment variable holding the chaos seed. When set (to a `u64`),
/// `cfr_core::Store::open_default` wraps its backend in a
/// [`ChaosBackend`] driven by [`FaultPlan::from_env`].
pub const CHAOS_SEED_ENV: &str = "CFR_CHAOS_SEED";

/// Environment variable tuning fault rates on top of the seed, as a
/// lenient `key=value,key=value` list (see [`FaultPlan::with`]).
pub const CHAOS_PLAN_ENV: &str = "CFR_CHAOS_PLAN";

/// SplitMix64 — the same tiny, high-quality PRNG the workload crate
/// uses for trace generation, copied here (the dependency arrow points
/// workload → types) so fault schedules are seeded identically across
/// crates.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole future is determined by `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    #[allow(clippy::cast_precision_loss)]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A local (in-process) fault injected by [`ChaosBackend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BackendFault {
    /// The load reports a miss even though the record may exist.
    Miss,
    /// The operation returns late (models a slow disk / contended lock).
    Delay,
    /// The loaded value comes back corrupted (models bit rot that
    /// slipped past the framing checks).
    Corrupt,
    /// The save is dropped (models a full disk / EIO on append).
    SaveErr,
    /// The save crashes mid-append, leaving a torn record at the shard
    /// tail (models power loss; recovery must resync past it).
    Torn,
}

/// A network fault injected by [`ChaosProxy`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProxyFault {
    /// The connection is reset mid-frame.
    Reset,
    /// The chunk is truncated byte-level, then the connection drops.
    Truncate,
    /// The chunk is delayed past the peer's read timeout.
    Stall,
    /// The chunk is delivered twice, then the connection drops (the
    /// reset bounds how long a desynchronized reply stream can be
    /// misread — the client's reply validation catches the rest).
    Duplicate,
    /// Garbage bytes replace the chunk, then the connection drops.
    Garbage,
}

/// A seeded, deterministic fault schedule.
///
/// Rates are probabilities in `[0, 1]` per operation (backend) or per
/// forwarded chunk (proxy). The decision for operation `n` is a pure
/// function of `(seed, domain, n)`, so two runs with the same seed and
/// the same operation sequence inject identical faults.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// The seed every decision derives from.
    pub seed: u64,
    /// Backend: probability a load reports a miss.
    pub miss: f64,
    /// Backend: probability an operation is delayed by [`Self::delay_ms`].
    pub delay: f64,
    /// Backend: probability a loaded value is corrupted.
    pub corrupt: f64,
    /// Backend: probability a save is dropped.
    pub save_err: f64,
    /// Backend: probability a save tears mid-append.
    pub torn: f64,
    /// Proxy: probability a chunk triggers a connection reset.
    pub reset: f64,
    /// Proxy: probability a chunk is truncated.
    pub truncate: f64,
    /// Proxy: probability a chunk stalls for [`Self::stall_ms`].
    pub stall: f64,
    /// Proxy: probability a chunk is duplicated.
    pub dup: f64,
    /// Proxy: probability a chunk is replaced with garbage.
    pub garbage: f64,
    /// Milliseconds a [`BackendFault::Delay`] sleeps.
    pub delay_ms: u64,
    /// Milliseconds a [`ProxyFault::Stall`] sleeps.
    pub stall_ms: u64,
}

/// Domain tag mixed into the per-operation seed so backend and proxy
/// schedules are independent streams off one seed.
const DOMAIN_BACKEND: u64 = 1;
const DOMAIN_PROXY: u64 = 2;

impl FaultPlan {
    /// The default chaos mix: every fault class enabled at low rates —
    /// enough to exercise each recovery path over a few thousand
    /// operations without drowning the run in retries.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            miss: 0.01,
            delay: 0.01,
            corrupt: 0.005,
            save_err: 0.01,
            torn: 0.002,
            reset: 0.01,
            truncate: 0.005,
            stall: 0.002,
            dup: 0.005,
            garbage: 0.002,
            delay_ms: 2,
            stall_ms: 50,
        }
    }

    /// A plan with every rate at zero — a no-op injector that tests
    /// enable one fault at a time on (see [`Self::with`]).
    #[must_use]
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            miss: 0.0,
            delay: 0.0,
            corrupt: 0.0,
            save_err: 0.0,
            torn: 0.0,
            reset: 0.0,
            truncate: 0.0,
            stall: 0.0,
            dup: 0.0,
            garbage: 0.0,
            delay_ms: 2,
            stall_ms: 50,
        }
    }

    /// Applies a lenient `key=value,key=value` spec on top of this
    /// plan. Keys are the rate field names (`miss`, `delay`, `corrupt`,
    /// `save_err`, `torn`, `reset`, `truncate`, `stall`, `dup`,
    /// `garbage`) plus `delay_ms`/`stall_ms`; unknown keys and
    /// unparseable values are ignored, rates are clamped to `[0, 1]`.
    #[must_use]
    pub fn with(mut self, spec: &str) -> Self {
        for pair in spec.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                continue;
            };
            let key = key.trim();
            let value = value.trim();
            if let Ok(ms) = value.parse::<u64>() {
                match key {
                    "delay_ms" => {
                        self.delay_ms = ms;
                        continue;
                    }
                    "stall_ms" => {
                        self.stall_ms = ms;
                        continue;
                    }
                    _ => {}
                }
            }
            let Ok(rate) = value.parse::<f64>() else {
                continue;
            };
            let rate = rate.clamp(0.0, 1.0);
            match key {
                "miss" => self.miss = rate,
                "delay" => self.delay = rate,
                "corrupt" => self.corrupt = rate,
                "save_err" => self.save_err = rate,
                "torn" => self.torn = rate,
                "reset" => self.reset = rate,
                "truncate" => self.truncate = rate,
                "stall" => self.stall = rate,
                "dup" => self.dup = rate,
                "garbage" => self.garbage = rate,
                _ => {}
            }
        }
        self
    }

    /// The plan the environment selects: `Some` iff [`CHAOS_SEED_ENV`]
    /// holds a `u64`, with [`CHAOS_PLAN_ENV`] applied on top when set.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let seed = std::env::var(CHAOS_SEED_ENV)
            .ok()?
            .trim()
            .parse::<u64>()
            .ok()?;
        let plan = Self::new(seed);
        match std::env::var(CHAOS_PLAN_ENV) {
            Ok(spec) => Some(plan.with(&spec)),
            Err(_) => Some(plan),
        }
    }

    /// One uniform draw for operation `op` in `domain` — pure in
    /// `(seed, domain, op)`, independent across domains.
    fn draw(&self, domain: u64, op: u64) -> f64 {
        let mixed = self
            .seed
            .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(op.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        SplitMix64::new(mixed).next_f64()
    }

    /// The backend fault (if any) scheduled for operation `op`.
    #[must_use]
    pub fn backend_fault(&self, op: u64) -> Option<BackendFault> {
        let x = self.draw(DOMAIN_BACKEND, op);
        let mut edge = 0.0;
        let table = [
            (self.miss, BackendFault::Miss),
            (self.delay, BackendFault::Delay),
            (self.corrupt, BackendFault::Corrupt),
            (self.save_err, BackendFault::SaveErr),
            (self.torn, BackendFault::Torn),
        ];
        for (rate, fault) in table {
            edge += rate;
            if x < edge {
                return Some(fault);
            }
        }
        None
    }

    /// The proxy fault (if any) scheduled for forwarded chunk `op`.
    #[must_use]
    pub fn proxy_fault(&self, op: u64) -> Option<ProxyFault> {
        let x = self.draw(DOMAIN_PROXY, op);
        let mut edge = 0.0;
        let table = [
            (self.reset, ProxyFault::Reset),
            (self.truncate, ProxyFault::Truncate),
            (self.stall, ProxyFault::Stall),
            (self.dup, ProxyFault::Duplicate),
            (self.garbage, ProxyFault::Garbage),
        ];
        for (rate, fault) in table {
            edge += rate;
            if x < edge {
                return Some(fault);
            }
        }
        None
    }
}

// ------------------------------------------------------- ChaosBackend

/// A [`StoreBackend`] decorator that injects [`BackendFault`]s on a
/// deterministic schedule.
///
/// Each operation consumes one schedule slot; a fault class that does
/// not apply to the operation's kind is a no-op for that slot
/// (`Miss`/`Corrupt` on a save, `SaveErr`/`Torn` on a load), which
/// keeps the schedule aligned with the operation count regardless of
/// the load/save mix.
///
/// Every injected fault is *inside* the store contract: a missing or
/// corrupted load is a miss (corrupt values fail the typed record
/// parse upstream), a dropped save is a write error, a torn append is
/// exactly what the open-time scan resyncs past. The simulation's
/// outputs must therefore be byte-identical with or without the
/// injector — that is the invariant `chaos_soak` proves.
#[derive(Debug)]
pub struct ChaosBackend {
    inner: Arc<dyn StoreBackend>,
    plan: FaultPlan,
    ops: AtomicU64,
    shard_dir: Option<PathBuf>,
    injected: AtomicU64,
    dropped_saves: AtomicU64,
}

impl ChaosBackend {
    /// Wraps `inner` with the fault schedule in `plan`.
    #[must_use]
    pub fn new(inner: Arc<dyn StoreBackend>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            ops: AtomicU64::new(0),
            shard_dir: None,
            injected: AtomicU64::new(0),
            dropped_saves: AtomicU64::new(0),
        }
    }

    /// Points torn-append injection at a real shard directory. Without
    /// it, [`BackendFault::Torn`] degrades to a dropped save (there is
    /// no tail to tear when the inner backend is remote).
    #[must_use]
    pub fn with_shard_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.shard_dir = Some(dir.into());
        self
    }

    /// Total faults injected so far (diagnostics / soak report).
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The fault (if any) for the next operation slot.
    fn next_fault(&self) -> Option<BackendFault> {
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let fault = self.plan.backend_fault(op);
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }

    /// Appends a torn record (header + key + half the value, no
    /// trailing newline) to the key's shard file — the exact on-disk
    /// state a crash mid-append leaves behind.
    fn tear_append(&self, ns: &str, key: &str, value: &str) -> bool {
        let Some(dir) = &self.shard_dir else {
            return false;
        };
        let shard = fnv1a64(&format!("{ns}\n{key}")) % u64::from(SHARD_COUNT);
        let path = dir.join(format!("shard-{shard:02}.cfr"));
        let record = format!(
            "rec {STORE_FORMAT_VERSION} {ns} 0 {} {}\n{key}\n{value}\n",
            key.len(),
            value.len()
        );
        let cut = record.len() - value.len() / 2 - 2;
        let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&path) else {
            return false;
        };
        f.write_all(&record.as_bytes()[..cut]).is_ok()
    }
}

impl StoreBackend for ChaosBackend {
    fn load(&self, ns: &str, key: &str) -> Option<String> {
        match self.next_fault() {
            Some(BackendFault::Miss) => return None,
            Some(BackendFault::Delay) => {
                std::thread::sleep(Duration::from_millis(self.plan.delay_ms));
            }
            Some(BackendFault::Corrupt) => {
                // A corrupt prefix breaks every typed record codec's
                // leading tag, so the caller's parse fails and the
                // load degrades to a miss — modelling rot that slipped
                // past framing. Single line, so text framing holds.
                return self.inner.load(ns, key).map(|v| format!("corrupt!{v}"));
            }
            _ => {}
        }
        self.inner.load(ns, key)
    }

    fn save(&self, ns: &str, key: &str, value: &str) {
        match self.next_fault() {
            Some(BackendFault::SaveErr) => {
                self.dropped_saves.fetch_add(1, Ordering::Relaxed);
            }
            Some(BackendFault::Torn) => {
                self.dropped_saves.fetch_add(1, Ordering::Relaxed);
                self.tear_append(ns, key, value);
            }
            Some(BackendFault::Delay) => {
                std::thread::sleep(Duration::from_millis(self.plan.delay_ms));
                self.inner.save(ns, key, value);
            }
            _ => self.inner.save(ns, key, value),
        }
    }

    fn load_many(&self, items: &[(String, String)]) -> Vec<Option<String>> {
        items.iter().map(|(ns, key)| self.load(ns, key)).collect()
    }

    fn save_many(&self, items: &[(String, String, String)]) {
        for (ns, key, value) in items {
            self.save(ns, key, value);
        }
    }

    fn claim(&self, ns: &str, key: &str, lease: Duration) -> ClaimOutcome {
        match self.next_fault() {
            // A faulted claim degrades exactly like a coordinator-less
            // backend: compute locally, no dedup.
            Some(BackendFault::Miss) => ClaimOutcome::Unsupported,
            Some(BackendFault::Delay) => {
                std::thread::sleep(Duration::from_millis(self.plan.delay_ms));
                self.inner.claim(ns, key, lease)
            }
            _ => self.inner.claim(ns, key, lease),
        }
    }

    fn wait_for(&self, ns: &str, key: &str, timeout: Duration) -> Option<String> {
        match self.next_fault() {
            Some(BackendFault::Miss) => None,
            _ => self.inner.wait_for(ns, key, timeout),
        }
    }

    fn write_errors(&self) -> u64 {
        self.inner.write_errors() + self.dropped_saves.load(Ordering::Relaxed)
    }

    fn namespace_records(&self, ns: &str) -> usize {
        self.inner.namespace_records(ns)
    }

    fn describe(&self) -> String {
        format!("chaos(seed={})+{}", self.plan.seed, self.inner.describe())
    }
}

// --------------------------------------------------------- ChaosProxy

/// A TCP shim between a store client and the daemon that injects
/// [`ProxyFault`]s on a deterministic per-chunk schedule.
///
/// Point the client at [`ChaosProxy::addr`] instead of the daemon.
/// Each accepted connection gets two pump threads (client→daemon and
/// daemon→client) sharing one operation counter, so fault decisions
/// stay globally sequenced. Faults that break the stream
/// (`Reset`/`Truncate`/`Duplicate`/`Garbage`) drop *that* connection;
/// the client's reconnect machinery takes it from there.
#[derive(Debug)]
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    injected: Arc<AtomicU64>,
}

/// How long a proxy pump blocks in `read` before re-checking the stop
/// flag — bounds shutdown latency without busy-waiting.
const PUMP_TICK: Duration = Duration::from_millis(50);

impl ChaosProxy {
    /// Starts a proxy on an ephemeral localhost port forwarding to
    /// `upstream`, injecting faults per `plan`.
    ///
    /// # Errors
    /// Fails only if the listener cannot bind.
    pub fn start(upstream: SocketAddr, plan: FaultPlan) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let injected = Arc::new(AtomicU64::new(0));
        let ops = Arc::new(AtomicU64::new(0));

        let accept = {
            let stop = Arc::clone(&stop);
            let injected = Arc::clone(&injected);
            std::thread::spawn(move || {
                let mut pumps: Vec<JoinHandle<()>> = Vec::new();
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = conn else { continue };
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let _ = client.set_read_timeout(Some(PUMP_TICK));
                    let _ = server.set_read_timeout(Some(PUMP_TICK));
                    let (Ok(c2), Ok(s2)) = (client.try_clone(), server.try_clone()) else {
                        continue;
                    };
                    let up = PumpSide {
                        from: client,
                        to: server,
                        plan: plan.clone(),
                        ops: Arc::clone(&ops),
                        stop: Arc::clone(&stop),
                        injected: Arc::clone(&injected),
                    };
                    let down = PumpSide {
                        from: s2,
                        to: c2,
                        plan: plan.clone(),
                        ops: Arc::clone(&ops),
                        stop: Arc::clone(&stop),
                        injected: Arc::clone(&injected),
                    };
                    pumps.push(std::thread::spawn(move || up.run()));
                    pumps.push(std::thread::spawn(move || down.run()));
                }
                for pump in pumps {
                    let _ = pump.join();
                }
            })
        };

        Ok(Self {
            addr,
            stop,
            accept: Some(accept),
            injected,
        })
    }

    /// The address clients should connect to.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Total network faults injected so far.
    #[must_use]
    pub fn injected_faults(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Stops accepting, drops every live pump, and joins the threads.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One direction of a proxied connection.
struct PumpSide {
    from: TcpStream,
    to: TcpStream,
    plan: FaultPlan,
    ops: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    injected: Arc<AtomicU64>,
}

impl PumpSide {
    /// Forwards chunks until EOF, error, stop, or a stream-breaking
    /// fault; tears both stream halves down on exit so the sibling
    /// pump unblocks too.
    fn run(self) {
        let PumpSide {
            mut from,
            mut to,
            plan,
            ops,
            stop,
            injected,
        } = self;
        let mut buf = [0u8; 16 * 1024];
        loop {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let n = match from.read(&mut buf) {
                Ok(0) => break,
                Ok(n) => n,
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            };
            let op = ops.fetch_add(1, Ordering::Relaxed);
            let fault = plan.proxy_fault(op);
            if fault.is_some() {
                injected.fetch_add(1, Ordering::Relaxed);
            }
            match fault {
                None => {
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                Some(ProxyFault::Stall) => {
                    std::thread::sleep(Duration::from_millis(plan.stall_ms));
                    if to.write_all(&buf[..n]).is_err() {
                        break;
                    }
                }
                Some(ProxyFault::Truncate) => {
                    let _ = to.write_all(&buf[..n / 2]);
                    break;
                }
                Some(ProxyFault::Reset) => break,
                Some(ProxyFault::Duplicate) => {
                    let _ = to.write_all(&buf[..n]);
                    let _ = to.write_all(&buf[..n]);
                    break;
                }
                Some(ProxyFault::Garbage) => {
                    let _ = to.write_all(b"\xffchaos garbage\xff");
                    break;
                }
            }
        }
        let _ = from.shutdown(Shutdown::Both);
        let _ = to.shutdown(Shutdown::Both);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ArtifactStore;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfr-chaos-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn same_seed_means_same_schedule() {
        let a = FaultPlan::new(42);
        let b = FaultPlan::new(42);
        for op in 0..10_000 {
            assert_eq!(a.backend_fault(op), b.backend_fault(op));
            assert_eq!(a.proxy_fault(op), b.proxy_fault(op));
        }
    }

    #[test]
    fn domains_are_independent_streams() {
        let plan = FaultPlan::new(7).with("miss=0.5,reset=0.5");
        let backend: Vec<_> = (0..256).map(|op| plan.backend_fault(op)).collect();
        let proxy: Vec<_> = (0..256).map(|op| plan.proxy_fault(op)).collect();
        let backend_hits = backend.iter().filter(|f| f.is_some()).count();
        let proxy_hits = proxy.iter().filter(|f| f.is_some()).count();
        assert!(backend_hits > 64 && backend_hits < 192);
        assert!(proxy_hits > 64 && proxy_hits < 192);
        // The two schedules must not be the same sequence in disguise.
        let aligned = backend
            .iter()
            .zip(&proxy)
            .filter(|(b, p)| b.is_some() == p.is_some())
            .count();
        assert!(aligned < 256);
    }

    #[test]
    fn plan_spec_parses_leniently() {
        let plan = FaultPlan::quiet(1).with("miss=0.25, torn = 1.5, junk=oops, stall_ms=125,,");
        assert!((plan.miss - 0.25).abs() < 1e-12);
        assert!((plan.torn - 1.0).abs() < 1e-12, "rates clamp to [0,1]");
        assert_eq!(plan.stall_ms, 125);
        assert!((plan.reset - 0.0).abs() < 1e-12);
    }

    #[test]
    fn forced_miss_hides_every_record() {
        let dir = temp_dir("forced-miss");
        let store =
            Arc::new(ArtifactStore::open(&dir, crate::store::GcPolicy::unbounded()).unwrap());
        store.save("runs", "k", "v");
        let chaos = ChaosBackend::new(store, FaultPlan::quiet(3).with("miss=1"));
        for _ in 0..32 {
            assert_eq!(chaos.load("runs", "k"), None);
        }
        assert!(chaos.injected_faults() >= 32);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn forced_corrupt_prefixes_the_value() {
        let dir = temp_dir("forced-corrupt");
        let store =
            Arc::new(ArtifactStore::open(&dir, crate::store::GcPolicy::unbounded()).unwrap());
        store.save("runs", "k", "v");
        let chaos = ChaosBackend::new(store, FaultPlan::quiet(3).with("corrupt=1"));
        assert_eq!(chaos.load("runs", "k"), Some("corrupt!v".to_string()));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dropped_saves_count_as_write_errors() {
        let dir = temp_dir("dropped-saves");
        let store =
            Arc::new(ArtifactStore::open(&dir, crate::store::GcPolicy::unbounded()).unwrap());
        let chaos = ChaosBackend::new(Arc::clone(&store) as Arc<dyn StoreBackend>, {
            FaultPlan::quiet(9).with("save_err=1")
        });
        chaos.save("runs", "k", "v");
        assert_eq!(chaos.write_errors(), 1);
        assert_eq!(store.load("runs", "k"), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn quiet_proxy_passes_bytes_through() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let echo = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut buf = [0u8; 64];
            let n = conn.read(&mut buf).unwrap();
            conn.write_all(&buf[..n]).unwrap();
        });
        let mut proxy = ChaosProxy::start(upstream, FaultPlan::quiet(5)).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"ping").unwrap();
        let mut reply = [0u8; 4];
        conn.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"ping");
        assert_eq!(proxy.injected_faults(), 0);
        proxy.stop();
        echo.join().unwrap();
    }

    #[test]
    fn reset_proxy_drops_the_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let upstream = listener.local_addr().unwrap();
        let sink = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let mut buf = [0u8; 64];
                while matches!(conn.read(&mut buf), Ok(n) if n > 0) {}
            }
        });
        let mut proxy = ChaosProxy::start(upstream, FaultPlan::quiet(5).with("reset=1")).unwrap();
        let mut conn = TcpStream::connect(proxy.addr()).unwrap();
        conn.write_all(b"doomed").unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut buf = [0u8; 16];
        // The proxy never forwards and tears the conn down: EOF or error.
        assert!(!matches!(conn.read(&mut buf), Ok(n) if n > 0));
        proxy.stop();
        sink.join().unwrap();
    }

    #[test]
    fn from_env_requires_a_seed() {
        // Never mutates the environment (set_var is unsafe in this
        // edition and racy under the parallel test harness) — just
        // documents that absent/garbage seeds disable chaos entirely.
        if std::env::var(CHAOS_SEED_ENV).is_err() {
            assert_eq!(FaultPlan::from_env(), None);
        }
    }
}
