//! Shape descriptors for hardware structures (TLBs, caches).
//!
//! These live in `cfr-types` because both the energy model (`cfr-energy`)
//! and the behavioural models (`cfr-mem`) are parameterized by the same
//! shapes — per-access energy and hit/miss behaviour must always describe
//! the *same* structure.

use serde::{Deserialize, Serialize};

/// Shape of a TLB: entry count and associativity.
///
/// `associativity == entries` means fully associative (a CAM);
/// `entries == 1` degenerates to a register + comparator, which is how the
/// paper's 1-entry configuration is built (its §4.3.2 notes that even a
/// 1-entry level-1 TLB "needs a comparison to check whether the translation
/// exists").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlbOrganization {
    /// Total number of entries.
    pub entries: u32,
    /// Ways per set.
    pub associativity: u32,
}

impl TlbOrganization {
    /// A fully-associative TLB of `entries` entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    #[must_use]
    pub fn fully_associative(entries: u32) -> Self {
        assert!(entries > 0, "a TLB needs at least one entry");
        Self {
            entries,
            associativity: entries,
        }
    }

    /// A set-associative TLB.
    ///
    /// # Panics
    ///
    /// Panics if arguments are zero, `ways > entries`, or `entries` is not a
    /// multiple of `ways`.
    #[must_use]
    pub fn set_associative(entries: u32, ways: u32) -> Self {
        assert!(entries > 0 && ways > 0, "zero-sized TLB");
        assert!(ways <= entries, "more ways than entries");
        assert!(
            entries.is_multiple_of(ways),
            "entries must be a multiple of ways"
        );
        Self {
            entries,
            associativity: ways,
        }
    }

    /// Whether this organization is a CAM (fully associative, > 1 entry).
    #[must_use]
    pub fn is_cam(&self) -> bool {
        self.entries > 1 && self.associativity == self.entries
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> u32 {
        self.entries / self.associativity
    }
}

/// Shape of a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheOrganization {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Block (line) size in bytes.
    pub block_bytes: u32,
}

impl CacheOrganization {
    /// Number of sets.
    ///
    /// # Panics
    ///
    /// Panics if the organization is degenerate (zero block size or more
    /// way-bytes than capacity, or non-power-of-two geometry).
    #[must_use]
    pub fn sets(&self) -> u64 {
        let way_bytes = u64::from(self.block_bytes) * u64::from(self.associativity);
        assert!(
            way_bytes > 0 && way_bytes <= self.size_bytes,
            "degenerate cache"
        );
        assert!(
            self.size_bytes.is_power_of_two() && self.block_bytes.is_power_of_two(),
            "cache geometry must be powers of two"
        );
        self.size_bytes / way_bytes
    }
}

/// How the L1 instruction cache is indexed and tagged (paper §2).
///
/// The paper's three viable combinations; PI-VT is "not really in much use"
/// and excluded, exactly as in the paper. L2 is always PI-PT.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressingMode {
    /// Physically indexed, physically tagged: the iTLB sits *before* the
    /// iL1 index on the critical path; translation is needed on every fetch.
    PiPt,
    /// Virtually indexed, physically tagged: iTLB looked up in parallel with
    /// iL1 indexing — off the critical path, but still an energy cost on
    /// every fetch.
    ViPt,
    /// Virtually indexed, virtually tagged: the iTLB is consulted only on an
    /// iL1 miss, serially before the (physical) L2 — power-efficient but the
    /// lookup adds latency on the miss path.
    ViVt,
}

impl AddressingMode {
    /// All three modes, in the paper's presentation order.
    pub const ALL: [AddressingMode; 3] = [
        AddressingMode::PiPt,
        AddressingMode::ViPt,
        AddressingMode::ViVt,
    ];

    /// Whether a fetch demands a translation even on an iL1 hit.
    #[must_use]
    pub fn translates_every_fetch(self) -> bool {
        !matches!(self, AddressingMode::ViVt)
    }

    /// Whether the iTLB lookup is serial with (in front of) the iL1 access.
    #[must_use]
    pub fn itlb_serial_with_il1(self) -> bool {
        matches!(self, AddressingMode::PiPt)
    }
}

impl core::fmt::Display for AddressingMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            AddressingMode::PiPt => "PI-PT",
            AddressingMode::ViPt => "VI-PT",
            AddressingMode::ViVt => "VI-VT",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fa_tlb_is_cam() {
        let fa = TlbOrganization::fully_associative(32);
        assert!(fa.is_cam());
        assert_eq!(fa.sets(), 1);
    }

    #[test]
    fn set_associative_sets() {
        let sa = TlbOrganization::set_associative(16, 2);
        assert!(!sa.is_cam());
        assert_eq!(sa.sets(), 8);
    }

    #[test]
    fn single_entry_is_not_cam() {
        assert!(!TlbOrganization::fully_associative(1).is_cam());
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entries_panics() {
        let _ = TlbOrganization::fully_associative(0);
    }

    #[test]
    #[should_panic(expected = "multiple of ways")]
    fn ragged_panics() {
        let _ = TlbOrganization::set_associative(10, 4);
    }

    #[test]
    fn cache_sets() {
        let c = CacheOrganization {
            size_bytes: 8192,
            associativity: 2,
            block_bytes: 32,
        };
        assert_eq!(c.sets(), 128);
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn cache_non_pow2_panics() {
        let c = CacheOrganization {
            size_bytes: 3000,
            associativity: 1,
            block_bytes: 32,
        };
        let _ = c.sets();
    }

    #[test]
    fn addressing_mode_properties() {
        assert!(AddressingMode::PiPt.translates_every_fetch());
        assert!(AddressingMode::ViPt.translates_every_fetch());
        assert!(!AddressingMode::ViVt.translates_every_fetch());
        assert!(AddressingMode::PiPt.itlb_serial_with_il1());
        assert!(!AddressingMode::ViPt.itlb_serial_with_il1());
        assert_eq!(format!("{}", AddressingMode::ViVt), "VI-VT");
        assert_eq!(AddressingMode::ALL.len(), 3);
    }
}
