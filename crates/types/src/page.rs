//! Page geometry: splitting addresses into page number and offset.

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::{Pfn, PhysAddr, VirtAddr, Vpn};

/// Describes a power-of-two page size and performs every VPN/offset
/// split-and-join in the workspace.
///
/// The paper's default is 4 KB pages (Table 1); its §4.4 observes that CFR
/// coverage — and therefore the savings of every scheme — grows with the
/// page size, which the `fig_pagesize` bench sweeps.
///
/// ```
/// use cfr_types::{PageGeometry, VirtAddr};
///
/// let geom = PageGeometry::new(4096)?;
/// assert_eq!(geom.offset_bits(), 12);
/// let a = VirtAddr::new(0x5432);
/// let b = VirtAddr::new(0x5FFC);
/// assert!(geom.same_page(a, b));
/// # Ok::<(), cfr_types::PageGeometryError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PageGeometry {
    page_bytes: u64,
    offset_bits: u32,
}

/// Error returned by [`PageGeometry::new`] for invalid page sizes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PageGeometryError {
    /// The requested page size was not a power of two.
    NotPowerOfTwo {
        /// The rejected size in bytes.
        bytes: u64,
    },
    /// The requested page size was smaller than one instruction.
    TooSmall {
        /// The rejected size in bytes.
        bytes: u64,
    },
}

impl fmt::Display for PageGeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotPowerOfTwo { bytes } => {
                write!(f, "page size {bytes} is not a power of two")
            }
            Self::TooSmall { bytes } => {
                write!(f, "page size {bytes} is smaller than one instruction")
            }
        }
    }
}

impl std::error::Error for PageGeometryError {}

impl PageGeometry {
    /// Creates a geometry for pages of `page_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PageGeometryError`] if `page_bytes` is not a power of two or
    /// is smaller than one instruction ([`crate::INSTRUCTION_BYTES`]).
    pub const fn new(page_bytes: u64) -> Result<Self, PageGeometryError> {
        if !page_bytes.is_power_of_two() {
            return Err(PageGeometryError::NotPowerOfTwo { bytes: page_bytes });
        }
        if page_bytes < crate::INSTRUCTION_BYTES {
            return Err(PageGeometryError::TooSmall { bytes: page_bytes });
        }
        Ok(Self {
            page_bytes,
            offset_bits: page_bytes.trailing_zeros(),
        })
    }

    /// The paper's default geometry: 4 KB pages.
    #[must_use]
    pub const fn default_4k() -> Self {
        match Self::new(4096) {
            Ok(g) => g,
            Err(_) => unreachable!(),
        }
    }

    /// Page size in bytes.
    #[inline]
    #[must_use]
    pub const fn page_bytes(self) -> u64 {
        self.page_bytes
    }

    /// Number of offset bits (log2 of the page size).
    #[inline]
    #[must_use]
    pub const fn offset_bits(self) -> u32 {
        self.offset_bits
    }

    /// Number of instructions that fit on one page.
    #[inline]
    #[must_use]
    pub const fn instructions_per_page(self) -> u64 {
        self.page_bytes / crate::INSTRUCTION_BYTES
    }

    /// Virtual page number of `va`.
    #[inline]
    #[must_use]
    pub const fn vpn(self, va: VirtAddr) -> Vpn {
        Vpn::new(va.raw() >> self.offset_bits)
    }

    /// Physical frame number of `pa`.
    #[inline]
    #[must_use]
    pub const fn pfn(self, pa: PhysAddr) -> Pfn {
        Pfn::new(pa.raw() >> self.offset_bits)
    }

    /// Offset of `va` within its page.
    #[inline]
    #[must_use]
    pub const fn offset(self, va: VirtAddr) -> u64 {
        va.raw() & (self.page_bytes - 1)
    }

    /// Builds the physical address `pfn ++ offset` — the operation the CFR
    /// performs on every bypassed fetch (Figure 1 of the paper).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `offset` fits within the page.
    #[inline]
    #[must_use]
    pub fn join(self, pfn: Pfn, offset: u64) -> PhysAddr {
        debug_assert!(offset < self.page_bytes, "offset {offset} exceeds page");
        PhysAddr::new((pfn.raw() << self.offset_bits) | offset)
    }

    /// Builds a virtual address `vpn ++ offset`.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `offset` fits within the page.
    #[inline]
    #[must_use]
    pub fn join_virt(self, vpn: Vpn, offset: u64) -> VirtAddr {
        debug_assert!(offset < self.page_bytes, "offset {offset} exceeds page");
        VirtAddr::new((vpn.raw() << self.offset_bits) | offset)
    }

    /// First address of the page containing `va`.
    #[inline]
    #[must_use]
    pub const fn page_base(self, va: VirtAddr) -> VirtAddr {
        VirtAddr::new(va.raw() & !(self.page_bytes - 1))
    }

    /// Whether two virtual addresses lie on the same page — the comparison
    /// the HoA comparator performs on every fetch.
    #[inline]
    #[must_use]
    pub const fn same_page(self, a: VirtAddr, b: VirtAddr) -> bool {
        (a.raw() >> self.offset_bits) == (b.raw() >> self.offset_bits)
    }

    /// Whether `va` is the *last* instruction slot on its page (the
    /// BOUNDARY case trigger: the next sequential instruction is on the next
    /// page).
    #[inline]
    #[must_use]
    pub const fn is_last_slot(self, va: VirtAddr) -> bool {
        self.offset(va) == self.page_bytes - crate::INSTRUCTION_BYTES
    }
}

impl Default for PageGeometry {
    fn default() -> Self {
        Self::default_4k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_sizes() {
        assert_eq!(
            PageGeometry::new(3000),
            Err(PageGeometryError::NotPowerOfTwo { bytes: 3000 })
        );
        assert_eq!(
            PageGeometry::new(2),
            Err(PageGeometryError::TooSmall { bytes: 2 })
        );
        assert!(PageGeometry::new(4096).is_ok());
    }

    #[test]
    fn default_is_4k() {
        let g = PageGeometry::default();
        assert_eq!(g.page_bytes(), 4096);
        assert_eq!(g.offset_bits(), 12);
        assert_eq!(g.instructions_per_page(), 1024);
    }

    #[test]
    fn split_and_join_round_trip() {
        let g = PageGeometry::default_4k();
        let va = VirtAddr::new(0x0042_0ABC);
        assert_eq!(g.vpn(va).raw(), 0x420);
        assert_eq!(g.offset(va), 0xABC);
        assert_eq!(g.join_virt(g.vpn(va), g.offset(va)), va);
        let pa = g.join(Pfn::new(0x77), 0xABC);
        assert_eq!(pa.raw(), 0x77ABC);
        assert_eq!(g.pfn(pa).raw(), 0x77);
    }

    #[test]
    fn same_page_boundaries() {
        let g = PageGeometry::default_4k();
        assert!(g.same_page(VirtAddr::new(0x1000), VirtAddr::new(0x1FFF)));
        assert!(!g.same_page(VirtAddr::new(0x1FFF), VirtAddr::new(0x2000)));
    }

    #[test]
    fn last_slot_detection() {
        let g = PageGeometry::default_4k();
        assert!(g.is_last_slot(VirtAddr::new(0x1FFC)));
        assert!(!g.is_last_slot(VirtAddr::new(0x1FF8)));
        assert!(!g.is_last_slot(VirtAddr::new(0x2000)));
    }

    #[test]
    fn page_base() {
        let g = PageGeometry::default_4k();
        assert_eq!(g.page_base(VirtAddr::new(0x1234)), VirtAddr::new(0x1000));
        assert_eq!(g.page_base(VirtAddr::new(0x1000)), VirtAddr::new(0x1000));
    }

    #[test]
    fn larger_pages() {
        let g = PageGeometry::new(65536).unwrap();
        assert_eq!(g.offset_bits(), 16);
        let va = VirtAddr::new(0x12_3456);
        assert_eq!(g.vpn(va).raw(), 0x12);
        assert_eq!(g.offset(va), 0x3456);
    }
}
