//! Wire framing: the text frame (protocol v1, kept for compatibility)
//! and the length-prefixed binary frame (protocol v2), both recognized
//! by one total decoder.

use std::io::{self, Read};
use std::sync::OnceLock;

use super::MAX_FRAME_ENV;

/// Text frame magic: protocol version 1. Bumping it makes every frame
/// from the other version decode as `Invalid` (a clean error, never a
/// panic).
pub const PROTOCOL_MAGIC: &str = "cfr1";

/// Binary frame magic. Shares the `cfr` prefix with the text magic so
/// the prefix-plausibility check is one comparison; the fourth byte
/// selects the format.
pub const BIN_MAGIC: &[u8; 4] = b"cfrb";

/// Binary frame header size: the magic plus a 4-byte little-endian
/// payload length.
pub const BIN_HEADER_BYTES: usize = 8;

/// Default upper bound on one frame's payload. A length header beyond
/// the configured bound ([`max_frame_bytes`]) is corrupt by definition —
/// the decoder rejects it before allocating.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Longest legal text-frame header: `cfr1 <8-digit-max length>\n` fits
/// well within this; anything longer without a newline is garbage.
pub const MAX_HEADER_BYTES: usize = 16;

/// Smallest admissible [`MAX_FRAME_ENV`] override: control frames
/// (stats, errors, claim verbs) must always fit.
const MIN_FRAME_BYTES: usize = 4096;

/// The effective frame payload bound: [`MAX_FRAME_ENV`] when set to a
/// parseable byte count (clamped to ≥ 4096), else [`MAX_FRAME_BYTES`].
/// Read once per process — the guard exists to stop a *corrupt length
/// prefix* from allocating gigabytes, so it sits on every decode path.
#[must_use]
pub fn max_frame_bytes() -> usize {
    static LIMIT: OnceLock<usize> = OnceLock::new();
    *LIMIT.get_or_init(|| {
        std::env::var(MAX_FRAME_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map_or(MAX_FRAME_BYTES, |v| v.max(MIN_FRAME_BYTES))
    })
}

/// Which frame format a payload traveled in. Servers mirror the
/// request's format; clients pick per [`Request::Hello`] negotiation.
///
/// [`Request::Hello`]: super::Request::Hello
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireFormat {
    /// `cfr1 <len>\n<payload>\n`, payload UTF-8 text (protocol v1).
    Text,
    /// `cfrb <len LE u32><payload>`, payload raw bytes (protocol v2).
    Binary,
}

/// One decoded frame payload, tagged with the format it arrived in.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WirePayload {
    /// A text-frame payload (validated UTF-8).
    Text(String),
    /// A binary-frame payload.
    Binary(Vec<u8>),
}

impl WirePayload {
    /// The format this payload traveled in (what a reply should mirror).
    #[must_use]
    pub fn format(&self) -> WireFormat {
        match self {
            Self::Text(_) => WireFormat::Text,
            Self::Binary(_) => WireFormat::Binary,
        }
    }
}

/// Encodes one payload as a text wire frame (`cfr1 <len>\n<payload>\n`).
#[must_use]
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + MAX_HEADER_BYTES + 1);
    out.extend_from_slice(format!("{PROTOCOL_MAGIC} {}\n", payload.len()).as_bytes());
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// Encodes one payload as a binary wire frame (`cfrb` + LE length).
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes (far beyond any
/// configurable frame bound).
#[must_use]
pub fn encode_frame_bin(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("frame payload over 4 GiB");
    let mut out = Vec::with_capacity(BIN_HEADER_BYTES + payload.len());
    out.extend_from_slice(BIN_MAGIC);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What [`decode_frame`] found at the head of a byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameDecode {
    /// The buffer holds a prefix of a well-formed frame; read more bytes.
    Incomplete,
    /// The buffer can never become a well-formed frame: bad magic, bad
    /// length, missing terminator, or non-UTF-8 payload. The connection
    /// should answer with an error and/or disconnect.
    Invalid,
    /// One complete frame; `consumed` bytes belong to it.
    Frame {
        /// The decoded payload text.
        payload: String,
        /// Total frame length in bytes (header + payload + terminator).
        consumed: usize,
    },
}

/// What [`decode_wire_frame`] found at the head of a byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireDecode {
    /// The buffer holds a prefix of a well-formed frame; read more bytes.
    Incomplete,
    /// The buffer can never become a well-formed frame.
    Invalid,
    /// One complete frame in either format.
    Frame {
        /// The decoded payload, tagged with its format.
        payload: WirePayload,
        /// Total frame length in bytes.
        consumed: usize,
    },
}

/// Decodes the **text** frame at the head of `buf` (protocol v1 surface,
/// unchanged). Total over arbitrary bytes: every input yields
/// `Incomplete`, `Invalid`, or `Frame` — never a panic, never an
/// allocation proportional to a corrupt length header.
#[must_use]
pub fn decode_frame(buf: &[u8]) -> FrameDecode {
    match decode_text_frame(buf, max_frame_bytes()) {
        WireDecode::Incomplete => FrameDecode::Incomplete,
        WireDecode::Invalid => FrameDecode::Invalid,
        WireDecode::Frame { payload, consumed } => match payload {
            WirePayload::Text(payload) => FrameDecode::Frame { payload, consumed },
            WirePayload::Binary(_) => unreachable!("text decoder yields text payloads"),
        },
    }
}

/// Decodes the frame at the head of `buf`, accepting **either** format
/// (the magic's fourth byte selects). Total over arbitrary bytes.
#[must_use]
pub fn decode_wire_frame(buf: &[u8]) -> WireDecode {
    decode_wire_frame_limit(buf, max_frame_bytes())
}

/// [`decode_wire_frame`] with an explicit payload bound (the env-free
/// core, also what the guard tests drive directly).
#[must_use]
pub fn decode_wire_frame_limit(buf: &[u8], max_payload: usize) -> WireDecode {
    // Disambiguate on the fourth byte; while fewer than four bytes are
    // buffered, stay Incomplete iff they are a plausible shared prefix.
    match buf.get(3) {
        None => {
            if buf.iter().zip(b"cfr").all(|(&b, &e)| b == e) {
                WireDecode::Incomplete
            } else {
                WireDecode::Invalid
            }
        }
        Some(b'b') => decode_bin_frame(buf, max_payload),
        Some(_) => decode_text_frame(buf, max_payload),
    }
}

fn decode_bin_frame(buf: &[u8], max_payload: usize) -> WireDecode {
    debug_assert!(buf.len() >= 4);
    if &buf[..4] != BIN_MAGIC {
        return WireDecode::Invalid;
    }
    if buf.len() < BIN_HEADER_BYTES {
        return WireDecode::Incomplete;
    }
    let len = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]) as usize;
    if len > max_payload {
        return WireDecode::Invalid;
    }
    let total = BIN_HEADER_BYTES + len;
    if buf.len() < total {
        return WireDecode::Incomplete;
    }
    WireDecode::Frame {
        payload: WirePayload::Binary(buf[BIN_HEADER_BYTES..total].to_vec()),
        consumed: total,
    }
}

fn decode_text_frame(buf: &[u8], max_payload: usize) -> WireDecode {
    let header_region = &buf[..buf.len().min(MAX_HEADER_BYTES)];
    let Some(nl) = header_region.iter().position(|&b| b == b'\n') else {
        if buf.len() >= MAX_HEADER_BYTES {
            return WireDecode::Invalid; // no newline where one must be
        }
        // Incomplete only while the bytes so far are a plausible header
        // prefix: the magic, a space, then decimal digits.
        let shape = b"cfr1 ";
        for (i, &b) in buf.iter().enumerate() {
            let plausible = match shape.get(i) {
                Some(&expected) => b == expected,
                None => b.is_ascii_digit(),
            };
            if !plausible {
                return WireDecode::Invalid;
            }
        }
        return WireDecode::Incomplete;
    };
    let Ok(header) = core::str::from_utf8(&buf[..nl]) else {
        return WireDecode::Invalid;
    };
    let mut tokens = header.split(' ');
    if tokens.next() != Some(PROTOCOL_MAGIC) {
        return WireDecode::Invalid;
    }
    let Some(len_text) = tokens.next() else {
        return WireDecode::Invalid;
    };
    // Digits only: `parse` alone would accept a leading `+`.
    if tokens.next().is_some()
        || len_text.is_empty()
        || !len_text.bytes().all(|b| b.is_ascii_digit())
    {
        return WireDecode::Invalid;
    }
    let Ok(len) = len_text.parse::<usize>() else {
        return WireDecode::Invalid;
    };
    if len > max_payload {
        return WireDecode::Invalid;
    }
    let Some(total) = (nl + 1).checked_add(len).and_then(|t| t.checked_add(1)) else {
        return WireDecode::Invalid;
    };
    if buf.len() < total {
        return WireDecode::Incomplete;
    }
    if buf[total - 1] != b'\n' {
        return WireDecode::Invalid;
    }
    match core::str::from_utf8(&buf[nl + 1..total - 1]) {
        Ok(payload) => WireDecode::Frame {
            payload: WirePayload::Text(payload.to_string()),
            consumed: total,
        },
        Err(_) => WireDecode::Invalid,
    }
}

/// A streaming frame reader: buffers partial reads across calls so a
/// frame split over several TCP segments (or interrupted by a read
/// timeout) reassembles correctly. Accepts both wire formats.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes buffered but not yet consumed as a frame. Between
    /// request/reply exchanges this must be zero — leftover bytes mean
    /// the peer sent more frames than were requested (a duplicated or
    /// desynchronized reply stream), and the connection is poisoned.
    #[must_use]
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Reads one frame from `stream`. `Ok(None)` is a clean EOF at a
    /// frame boundary; `ErrorKind::InvalidData` means the peer sent bytes
    /// that can never become a frame (the caller should error-reply
    /// and/or disconnect); timeouts surface as the underlying
    /// `WouldBlock`/`TimedOut` error with the partial frame retained for
    /// the next call.
    ///
    /// # Errors
    ///
    /// Any I/O error from `stream`, plus `InvalidData` for corrupt and
    /// `UnexpectedEof` for mid-frame EOFs.
    pub fn read_frame(&mut self, stream: &mut impl Read) -> io::Result<Option<WirePayload>> {
        loop {
            match decode_wire_frame(&self.buf) {
                WireDecode::Frame { payload, consumed } => {
                    self.buf.drain(..consumed);
                    return Ok(Some(payload));
                }
                WireDecode::Invalid => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "malformed frame",
                    ));
                }
                WireDecode::Incomplete => {}
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame",
                    ))
                };
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_frame_round_trips() {
        for payload in ["", "x", "get runs 3\nkey", "line\nwith\nnewlines", "π ≠ τ"] {
            let bytes = encode_frame(payload);
            match decode_frame(&bytes) {
                FrameDecode::Frame {
                    payload: got,
                    consumed,
                } => {
                    assert_eq!(got, payload);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("{payload:?} decoded to {other:?}"),
            }
            // The dual-format decoder agrees and tags the format.
            match decode_wire_frame(&bytes) {
                WireDecode::Frame {
                    payload: WirePayload::Text(got),
                    consumed,
                } => {
                    assert_eq!(got, payload);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("{payload:?} wire-decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn binary_frame_round_trips() {
        for payload in [
            b"".as_slice(),
            b"x",
            b"\x00\xff\x01binary bytes",
            &[7u8; 4096],
        ] {
            let bytes = encode_frame_bin(payload);
            match decode_wire_frame(&bytes) {
                WireDecode::Frame {
                    payload: WirePayload::Binary(got),
                    consumed,
                } => {
                    assert_eq!(got, payload);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("binary payload decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn frame_prefixes_are_incomplete_and_garbage_is_invalid() {
        let bytes = encode_frame("hello world");
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..cut]),
                FrameDecode::Incomplete,
                "prefix of a valid text frame at {cut}"
            );
        }
        let bin = encode_frame_bin(b"hello world");
        for cut in 0..bin.len() {
            assert_eq!(
                decode_wire_frame(&bin[..cut]),
                WireDecode::Incomplete,
                "prefix of a valid binary frame at {cut}"
            );
        }
        for garbage in [
            b"nonsense bytes here".as_slice(),
            b"cfr2 5\nhello\n",
            b"cfr1 x\npayload\n",
            b"cfr1 +5\nhello\n",
            b"cfr1 99999999999999999999\n",
            b"cfr1 5\nhelloX",
            b"cfrB\x05\x00\x00\x00hello", // magic is case-sensitive
        ] {
            assert_eq!(decode_frame(garbage), FrameDecode::Invalid, "{garbage:?}");
            assert_eq!(
                decode_wire_frame(garbage),
                WireDecode::Invalid,
                "{garbage:?}"
            );
        }
        // A binary frame is not a *text* frame (v1 callers see Invalid,
        // not a misparse).
        assert_eq!(decode_frame(&bin), FrameDecode::Invalid);
    }

    #[test]
    fn corrupt_length_headers_are_rejected_before_allocating() {
        let huge = format!("cfr1 {}\n", MAX_FRAME_BYTES + 1);
        assert_eq!(decode_frame(huge.as_bytes()), FrameDecode::Invalid);
        let mut bin = BIN_MAGIC.to_vec();
        bin.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_wire_frame(&bin), WireDecode::Invalid);
    }

    #[test]
    fn frame_limit_is_enforced_in_both_formats() {
        // A payload over an explicit bound is Invalid even when complete
        // and well-formed; at the bound it decodes.
        let payload = "0123456789";
        let text = encode_frame(payload);
        let bin = encode_frame_bin(payload.as_bytes());
        assert_eq!(decode_wire_frame_limit(&text, 9), WireDecode::Invalid);
        assert_eq!(decode_wire_frame_limit(&bin, 9), WireDecode::Invalid);
        assert!(matches!(
            decode_wire_frame_limit(&text, 10),
            WireDecode::Frame { .. }
        ));
        assert!(matches!(
            decode_wire_frame_limit(&bin, 10),
            WireDecode::Frame { .. }
        ));
    }
}
