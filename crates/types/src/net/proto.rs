//! The request/response grammar, in both codecs.
//!
//! Payloads are either UTF-8 **text** (protocol v1's grammar, extended
//! with the batch/claim/hello verbs) or **binary** (tag byte + length-
//! prefixed fields). Both codecs are total over arbitrary input and
//! enforce the same field validity rules, so a message decoded from one
//! codec always re-encodes cleanly in the other — the text↔binary
//! equivalence the property tests pin.

use crate::store::GcReport;

use super::frame::{encode_frame, encode_frame_bin, WireFormat, WirePayload};

pub(crate) fn valid_ns(ns: &str) -> bool {
    !ns.is_empty() && !ns.contains(char::is_whitespace)
}

pub(crate) fn valid_key(key: &str) -> bool {
    !key.is_empty() && !key.contains('\n')
}

pub(crate) fn valid_value(value: &str) -> bool {
    !value.contains('\n')
}

fn valid_feature(token: &str) -> bool {
    valid_ns(token)
}

/// One client request. The daemon's whole command surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Look `(ns, key)` up.
    Get {
        /// Namespace (single whitespace-free token).
        ns: String,
        /// Single-line record-string key.
        key: String,
    },
    /// Persist `(ns, key) → value`.
    Put {
        /// Namespace (single whitespace-free token).
        ns: String,
        /// Single-line record-string key.
        key: String,
        /// Single-line record-string value.
        value: String,
    },
    /// Look a whole batch of `(ns, key)` pairs up in one round trip.
    MGet {
        /// The probed `(ns, key)` pairs, in reply order.
        items: Vec<(String, String)>,
    },
    /// Persist a whole batch of `(ns, key, value)` records.
    MPut {
        /// The records to store.
        items: Vec<(String, String, String)>,
    },
    /// Ask for the exclusive right to compute a missing `(ns, key)`:
    /// the stored value if someone already published it, `granted` if
    /// the claim is now held by this connection (for `lease_ms`), `busy`
    /// if another live claim holds it.
    Claim {
        /// Namespace (single whitespace-free token).
        ns: String,
        /// Single-line record-string key.
        key: String,
        /// Requested lease, in milliseconds (server-clamped).
        lease_ms: u64,
    },
    /// Park until `(ns, key)` is published (`hit`), its claim expires or
    /// is released unpublished (`miss`), or `timeout_ms` elapses
    /// (`miss`). Never blocks when no claim is active — that is an
    /// immediate `miss`/`hit`.
    Wait {
        /// Namespace (single whitespace-free token).
        ns: String,
        /// Single-line record-string key.
        key: String,
        /// Longest time to stay parked, in milliseconds (server-clamped).
        timeout_ms: u64,
    },
    /// Version/feature negotiation: the reply lists what the server
    /// speaks (`binary`, `batch`, `claim`).
    Hello {
        /// The client's protocol version.
        version: u32,
    },
    /// Report occupancy (live records/bytes, per-namespace counts) and
    /// service counters.
    Stats,
    /// Liveness probe: uptime, shard occupancy, and whether the daemon
    /// is draining. Cheaper than `STATS` and safe to poll.
    Health,
    /// Run a GC/compaction pass under the daemon's policy now.
    Gc,
    /// Stop accepting connections and exit — via the graceful drain
    /// path: stop accepting, answer in-flight frames, fail parked
    /// waiters fast, fsync, release the lock.
    Shutdown,
}

// Binary tags. A tag outside this table decodes to a descriptive error.
const TAG_GET: u8 = 1;
const TAG_PUT: u8 = 2;
const TAG_STATS: u8 = 3;
const TAG_GC: u8 = 4;
const TAG_SHUTDOWN: u8 = 5;
const TAG_MGET: u8 = 6;
const TAG_MPUT: u8 = 7;
const TAG_CLAIM: u8 = 8;
const TAG_WAIT: u8 = 9;
const TAG_HELLO: u8 = 10;
const TAG_HEALTH: u8 = 11;

const TAG_HIT: u8 = 1;
const TAG_MISS: u8 = 2;
const TAG_DONE: u8 = 3;
const TAG_RSTATS: u8 = 4;
const TAG_GCDONE: u8 = 5;
const TAG_ERR: u8 = 6;
const TAG_MGOT: u8 = 7;
const TAG_GRANTED: u8 = 8;
const TAG_BUSY: u8 = 9;
const TAG_RHELLO: u8 = 10;
const TAG_RHEALTH: u8 = 11;

/// A little-endian cursor over a binary payload: every read is
/// bounds-checked and returns a descriptive error, so the binary
/// decoders are total over arbitrary bytes.
struct BinReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| format!("truncated {what}"))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let end = self.pos + 4;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated {what}"))?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let end = self.pos + 8;
        let bytes = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated {what}"))?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8-byte slice")))
    }

    fn str_field(&mut self, what: &str) -> Result<String, String> {
        let len = self.u32(what)? as usize;
        // Bounds-check before allocating: a corrupt length never
        // allocates beyond the payload actually received.
        let end = self
            .pos
            .checked_add(len)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated {what}"))?;
        let s = core::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| format!("{what} is not UTF-8"))?;
        self.pos = end;
        Ok(s.to_string())
    }

    fn finish(self, what: &str) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!("{what}: trailing bytes"))
        }
    }
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    let len = u32::try_from(s.len()).expect("field over 4 GiB");
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

impl Request {
    /// Serializes this request as a text frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Self::Get { ns, key } => format!("get {ns} {}\n{key}", key.len()),
            Self::Put { ns, key, value } => {
                format!("put {ns} {} {}\n{key}\n{value}", key.len(), value.len())
            }
            Self::MGet { items } => {
                let mut out = format!("mget {}", items.len());
                for (ns, key) in items {
                    out.push('\n');
                    out.push_str(ns);
                    out.push('\n');
                    out.push_str(key);
                }
                out
            }
            Self::MPut { items } => {
                let mut out = format!("mput {}", items.len());
                for (ns, key, value) in items {
                    out.push('\n');
                    out.push_str(ns);
                    out.push('\n');
                    out.push_str(key);
                    out.push('\n');
                    out.push_str(value);
                }
                out
            }
            Self::Claim { ns, key, lease_ms } => {
                format!("claim {ns} {} {lease_ms}\n{key}", key.len())
            }
            Self::Wait {
                ns,
                key,
                timeout_ms,
            } => format!("wait {ns} {} {timeout_ms}\n{key}", key.len()),
            Self::Hello { version } => format!("hello {version}"),
            Self::Stats => "stats".to_string(),
            Self::Health => "health".to_string(),
            Self::Gc => "gc".to_string(),
            Self::Shutdown => "shutdown".to_string(),
        }
    }

    /// Serializes this request as a binary frame payload.
    #[must_use]
    pub fn encode_bin(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Get { ns, key } => {
                out.push(TAG_GET);
                push_str(&mut out, ns);
                push_str(&mut out, key);
            }
            Self::Put { ns, key, value } => {
                out.push(TAG_PUT);
                push_str(&mut out, ns);
                push_str(&mut out, key);
                push_str(&mut out, value);
            }
            Self::MGet { items } => {
                out.push(TAG_MGET);
                out.extend_from_slice(
                    &u32::try_from(items.len())
                        .expect("batch over u32::MAX items")
                        .to_le_bytes(),
                );
                for (ns, key) in items {
                    push_str(&mut out, ns);
                    push_str(&mut out, key);
                }
            }
            Self::MPut { items } => {
                out.push(TAG_MPUT);
                out.extend_from_slice(
                    &u32::try_from(items.len())
                        .expect("batch over u32::MAX items")
                        .to_le_bytes(),
                );
                for (ns, key, value) in items {
                    push_str(&mut out, ns);
                    push_str(&mut out, key);
                    push_str(&mut out, value);
                }
            }
            Self::Claim { ns, key, lease_ms } => {
                out.push(TAG_CLAIM);
                push_str(&mut out, ns);
                push_str(&mut out, key);
                out.extend_from_slice(&lease_ms.to_le_bytes());
            }
            Self::Wait {
                ns,
                key,
                timeout_ms,
            } => {
                out.push(TAG_WAIT);
                push_str(&mut out, ns);
                push_str(&mut out, key);
                out.extend_from_slice(&timeout_ms.to_le_bytes());
            }
            Self::Hello { version } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&version.to_le_bytes());
            }
            Self::Stats => out.push(TAG_STATS),
            Self::Health => out.push(TAG_HEALTH),
            Self::Gc => out.push(TAG_GC),
            Self::Shutdown => out.push(TAG_SHUTDOWN),
        }
        out
    }

    /// Serializes this request as a complete wire frame in `format`.
    #[must_use]
    pub fn to_frame(&self, format: WireFormat) -> Vec<u8> {
        match format {
            WireFormat::Text => encode_frame(&self.encode()),
            WireFormat::Binary => encode_frame_bin(&self.encode_bin()),
        }
    }

    /// Parses a frame payload in either codec.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn from_payload(payload: &WirePayload) -> Result<Self, String> {
        match payload {
            WirePayload::Text(text) => Self::decode(text),
            WirePayload::Binary(bytes) => Self::decode_bin(bytes),
        }
    }

    /// Parses a text frame payload. Total over arbitrary strings: every
    /// malformed payload is a descriptive `Err`, never a panic — the
    /// server turns it into an `err` reply. Field shapes are enforced
    /// here (namespace one token, key/value single-line, lengths exact),
    /// so a decoded `Put` can always be stored without tripping the
    /// store's own input assertions.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn decode(payload: &str) -> Result<Self, String> {
        let (head, body) = payload
            .split_once('\n')
            .map_or((payload, None), |(h, b)| (h, Some(b)));
        let mut tokens = head.split(' ');
        let verb = tokens.next().unwrap_or("");
        match verb {
            "get" => {
                let ns = tokens.next().ok_or("get: missing namespace")?;
                let klen: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("get: bad key length")?;
                if tokens.next().is_some() {
                    return Err("get: trailing tokens".into());
                }
                let key = body.ok_or("get: missing key line")?;
                if key.len() != klen || !valid_key(key) || !valid_ns(ns) {
                    return Err("get: malformed namespace or key".into());
                }
                Ok(Self::Get {
                    ns: ns.to_string(),
                    key: key.to_string(),
                })
            }
            "put" => {
                let ns = tokens.next().ok_or("put: missing namespace")?;
                let klen: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("put: bad key length")?;
                let vlen: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("put: bad value length")?;
                if tokens.next().is_some() {
                    return Err("put: trailing tokens".into());
                }
                let body = body.ok_or("put: missing key/value lines")?;
                let expected = klen.checked_add(1).and_then(|n| n.checked_add(vlen));
                if expected != Some(body.len()) {
                    return Err("put: body length mismatch".into());
                }
                // `get(..)` (not slicing) so a length landing inside a
                // multi-byte character is an error, not a panic.
                let key = body.get(..klen).ok_or("put: key not UTF-8 aligned")?;
                let sep = body.get(klen..=klen);
                let value = body.get(klen + 1..).ok_or("put: value not UTF-8 aligned")?;
                if sep != Some("\n") || !valid_ns(ns) || !valid_key(key) || !valid_value(value) {
                    return Err("put: malformed namespace, key, or value".into());
                }
                Ok(Self::Put {
                    ns: ns.to_string(),
                    key: key.to_string(),
                    value: value.to_string(),
                })
            }
            "mget" => {
                let n: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("mget: bad item count")?;
                if tokens.next().is_some() {
                    return Err("mget: trailing tokens".into());
                }
                let mut lines = body.map(|b| b.split('\n'));
                let mut items = Vec::new();
                for _ in 0..n {
                    let it = lines.as_mut().ok_or("mget: missing item lines")?;
                    let ns = it.next().ok_or("mget: missing namespace line")?;
                    let key = it.next().ok_or("mget: missing key line")?;
                    if !valid_ns(ns) || !valid_key(key) {
                        return Err("mget: malformed namespace or key".into());
                    }
                    items.push((ns.to_string(), key.to_string()));
                }
                if lines.and_then(|mut it| it.next()).is_some() {
                    return Err("mget: trailing lines".into());
                }
                Ok(Self::MGet { items })
            }
            "mput" => {
                let n: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("mput: bad item count")?;
                if tokens.next().is_some() {
                    return Err("mput: trailing tokens".into());
                }
                let mut lines = body.map(|b| b.split('\n'));
                let mut items = Vec::new();
                for _ in 0..n {
                    let it = lines.as_mut().ok_or("mput: missing item lines")?;
                    let ns = it.next().ok_or("mput: missing namespace line")?;
                    let key = it.next().ok_or("mput: missing key line")?;
                    let value = it.next().ok_or("mput: missing value line")?;
                    if !valid_ns(ns) || !valid_key(key) || !valid_value(value) {
                        return Err("mput: malformed namespace, key, or value".into());
                    }
                    items.push((ns.to_string(), key.to_string(), value.to_string()));
                }
                if lines.and_then(|mut it| it.next()).is_some() {
                    return Err("mput: trailing lines".into());
                }
                Ok(Self::MPut { items })
            }
            "claim" | "wait" => {
                let ns = tokens.next().ok_or("claim/wait: missing namespace")?;
                let klen: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("claim/wait: bad key length")?;
                let ms: u64 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("claim/wait: bad millisecond field")?;
                if tokens.next().is_some() {
                    return Err("claim/wait: trailing tokens".into());
                }
                let key = body.ok_or("claim/wait: missing key line")?;
                if key.len() != klen || !valid_key(key) || !valid_ns(ns) {
                    return Err("claim/wait: malformed namespace or key".into());
                }
                let ns = ns.to_string();
                let key = key.to_string();
                Ok(if verb == "claim" {
                    Self::Claim {
                        ns,
                        key,
                        lease_ms: ms,
                    }
                } else {
                    Self::Wait {
                        ns,
                        key,
                        timeout_ms: ms,
                    }
                })
            }
            "hello" if body.is_none() => {
                let version: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("hello: bad version")?;
                if tokens.next().is_some() {
                    return Err("hello: trailing tokens".into());
                }
                Ok(Self::Hello { version })
            }
            "stats" if body.is_none() && tokens.next().is_none() => Ok(Self::Stats),
            "health" if body.is_none() && tokens.next().is_none() => Ok(Self::Health),
            "gc" if body.is_none() && tokens.next().is_none() => Ok(Self::Gc),
            "shutdown" if body.is_none() && tokens.next().is_none() => Ok(Self::Shutdown),
            other => Err(format!("unknown request verb {other:?}")),
        }
    }

    /// Parses a binary frame payload. Total over arbitrary bytes, and
    /// enforces exactly the field validity rules the text codec does.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn decode_bin(payload: &[u8]) -> Result<Self, String> {
        let mut r = BinReader::new(payload);
        let tag = r.u8("request tag")?;
        let req = match tag {
            TAG_GET => {
                let ns = r.str_field("get namespace")?;
                let key = r.str_field("get key")?;
                if !valid_ns(&ns) || !valid_key(&key) {
                    return Err("get: malformed namespace or key".into());
                }
                Self::Get { ns, key }
            }
            TAG_PUT => {
                let ns = r.str_field("put namespace")?;
                let key = r.str_field("put key")?;
                let value = r.str_field("put value")?;
                if !valid_ns(&ns) || !valid_key(&key) || !valid_value(&value) {
                    return Err("put: malformed namespace, key, or value".into());
                }
                Self::Put { ns, key, value }
            }
            TAG_MGET => {
                let n = r.u32("mget count")?;
                let mut items = Vec::new();
                for _ in 0..n {
                    let ns = r.str_field("mget namespace")?;
                    let key = r.str_field("mget key")?;
                    if !valid_ns(&ns) || !valid_key(&key) {
                        return Err("mget: malformed namespace or key".into());
                    }
                    items.push((ns, key));
                }
                Self::MGet { items }
            }
            TAG_MPUT => {
                let n = r.u32("mput count")?;
                let mut items = Vec::new();
                for _ in 0..n {
                    let ns = r.str_field("mput namespace")?;
                    let key = r.str_field("mput key")?;
                    let value = r.str_field("mput value")?;
                    if !valid_ns(&ns) || !valid_key(&key) || !valid_value(&value) {
                        return Err("mput: malformed namespace, key, or value".into());
                    }
                    items.push((ns, key, value));
                }
                Self::MPut { items }
            }
            TAG_CLAIM | TAG_WAIT => {
                let ns = r.str_field("claim/wait namespace")?;
                let key = r.str_field("claim/wait key")?;
                let ms = r.u64("claim/wait milliseconds")?;
                if !valid_ns(&ns) || !valid_key(&key) {
                    return Err("claim/wait: malformed namespace or key".into());
                }
                if tag == TAG_CLAIM {
                    Self::Claim {
                        ns,
                        key,
                        lease_ms: ms,
                    }
                } else {
                    Self::Wait {
                        ns,
                        key,
                        timeout_ms: ms,
                    }
                }
            }
            TAG_HELLO => Self::Hello {
                version: r.u32("hello version")?,
            },
            TAG_STATS => Self::Stats,
            TAG_HEALTH => Self::Health,
            TAG_GC => Self::Gc,
            TAG_SHUTDOWN => Self::Shutdown,
            other => return Err(format!("unknown request tag {other}")),
        };
        r.finish("request")?;
        Ok(req)
    }
}

/// The daemon's occupancy + service report (the `STATS` reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (latest-per-key) records across all namespaces.
    pub live_records: u64,
    /// Bytes those records occupy.
    pub live_bytes: u64,
    /// Physical shard-file bytes (live + dead).
    pub file_bytes: u64,
    /// Live records in the `runs` namespace.
    pub runs: u64,
    /// Live records in the `walks` namespace.
    pub walks: u64,
    /// Live records in the `programs` namespace.
    pub programs: u64,
    /// Live records in the `traces` namespace.
    pub traces: u64,
    /// Connections currently open.
    pub active_connections: u64,
    /// High-water mark of requests queued on one connection — how deep
    /// clients actually pipeline.
    pub pipeline_hwm: u64,
    /// Keys carried by `MGET`/`MPUT` batches (total).
    pub batched_keys: u64,
    /// Largest single batch served.
    pub max_batch: u64,
    /// `CLAIM`s granted (exclusive compute rights handed out).
    pub claims_granted: u64,
    /// Claims that expired or were released unpublished (holder died or
    /// stalled past its lease; waiters degraded to computing locally).
    pub claims_expired: u64,
}

/// The daemon's liveness report (the `HEALTH` reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Seconds since the server started serving.
    pub uptime_secs: u64,
    /// Whether the daemon is draining: no longer accepting connections,
    /// answering in-flight frames before exiting.
    pub draining: bool,
    /// Shard files holding at least one live record.
    pub shards_occupied: u32,
    /// Total shard files ([`crate::store::SHARD_COUNT`]).
    pub shard_count: u32,
    /// Live (latest-per-key) records across all namespaces.
    pub live_records: u64,
    /// Physical shard-file bytes (live + dead).
    pub file_bytes: u64,
}

/// One server reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// `GET` found the record (also `CLAIM`/`WAIT`: the value is
    /// published).
    Hit {
        /// The stored single-line record-string value.
        value: String,
    },
    /// `GET` found nothing (also `WAIT`: the claim lapsed unpublished —
    /// the client recomputes).
    Miss,
    /// `PUT` / `MPUT` / `SHUTDOWN` acknowledged.
    Done,
    /// `MGET` reply: one slot per requested key, in request order.
    MGot {
        /// `Some(value)` per hit, `None` per miss.
        values: Vec<Option<String>>,
    },
    /// `CLAIM` reply: the exclusive compute right is yours for the lease.
    Granted,
    /// `CLAIM` reply: another live client holds the claim — `WAIT` for
    /// the value instead of computing.
    Busy,
    /// `HELLO` reply: what this server speaks.
    Hello {
        /// The server's protocol version.
        version: u32,
        /// Feature tokens (`binary`, `batch`, `claim`).
        features: Vec<String>,
    },
    /// `STATS` reply.
    Stats(StoreStats),
    /// `HEALTH` reply.
    Health(HealthReport),
    /// `GC` reply: what the pass did.
    Gc(GcReport),
    /// The request could not be served (malformed, internal error). The
    /// client treats it as a miss.
    Error {
        /// Single-line description.
        message: String,
    },
}

impl Response {
    /// Serializes this response as a text frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Self::Hit { value } => format!("hit {}\n{value}", value.len()),
            Self::Miss => "miss".to_string(),
            Self::Done => "ok".to_string(),
            Self::MGot { values } => {
                let mut out = format!("mgot {}", values.len());
                for slot in values {
                    match slot {
                        Some(value) => {
                            out.push_str(&format!("\nhit {}\n", value.len()));
                            out.push_str(value);
                        }
                        None => out.push_str("\nmiss"),
                    }
                }
                out
            }
            Self::Granted => "granted".to_string(),
            Self::Busy => "busy".to_string(),
            Self::Hello { version, features } => {
                let mut out = format!("hello {version}");
                for f in features {
                    out.push(' ');
                    out.push_str(f);
                }
                out
            }
            Self::Stats(s) => format!(
                "stats {} {} {} {} {} {} {} {} {} {} {} {} {}",
                s.live_records,
                s.live_bytes,
                s.file_bytes,
                s.runs,
                s.walks,
                s.programs,
                s.traces,
                s.active_connections,
                s.pipeline_hwm,
                s.batched_keys,
                s.max_batch,
                s.claims_granted,
                s.claims_expired
            ),
            Self::Health(h) => format!(
                "health {} {} {} {} {} {}",
                h.uptime_secs,
                u64::from(h.draining),
                h.shards_occupied,
                h.shard_count,
                h.live_records,
                h.file_bytes
            ),
            Self::Gc(r) => format!(
                "gcdone {} {} {} {} {} {}",
                r.live_records,
                r.live_bytes,
                r.dead_bytes_dropped,
                r.evicted_age,
                r.evicted_size,
                r.shards_rewritten
            ),
            Self::Error { message } => format!("err {}", message.replace('\n', " ")),
        }
    }

    /// Serializes this response as a binary frame payload.
    #[must_use]
    pub fn encode_bin(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Self::Hit { value } => {
                out.push(TAG_HIT);
                push_str(&mut out, value);
            }
            Self::Miss => out.push(TAG_MISS),
            Self::Done => out.push(TAG_DONE),
            Self::MGot { values } => {
                out.push(TAG_MGOT);
                out.extend_from_slice(
                    &u32::try_from(values.len())
                        .expect("batch over u32::MAX items")
                        .to_le_bytes(),
                );
                for slot in values {
                    match slot {
                        Some(value) => {
                            out.push(1);
                            push_str(&mut out, value);
                        }
                        None => out.push(0),
                    }
                }
            }
            Self::Granted => out.push(TAG_GRANTED),
            Self::Busy => out.push(TAG_BUSY),
            Self::Hello { version, features } => {
                out.push(TAG_RHELLO);
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(
                    &u32::try_from(features.len())
                        .expect("feature list over u32::MAX")
                        .to_le_bytes(),
                );
                for f in features {
                    push_str(&mut out, f);
                }
            }
            Self::Stats(s) => {
                out.push(TAG_RSTATS);
                for n in [
                    s.live_records,
                    s.live_bytes,
                    s.file_bytes,
                    s.runs,
                    s.walks,
                    s.programs,
                    s.traces,
                    s.active_connections,
                    s.pipeline_hwm,
                    s.batched_keys,
                    s.max_batch,
                    s.claims_granted,
                    s.claims_expired,
                ] {
                    out.extend_from_slice(&n.to_le_bytes());
                }
            }
            Self::Health(h) => {
                out.push(TAG_RHEALTH);
                out.extend_from_slice(&h.uptime_secs.to_le_bytes());
                out.push(u8::from(h.draining));
                out.extend_from_slice(&h.shards_occupied.to_le_bytes());
                out.extend_from_slice(&h.shard_count.to_le_bytes());
                out.extend_from_slice(&h.live_records.to_le_bytes());
                out.extend_from_slice(&h.file_bytes.to_le_bytes());
            }
            Self::Gc(r) => {
                out.push(TAG_GCDONE);
                for n in [
                    r.live_records,
                    r.live_bytes,
                    r.dead_bytes_dropped,
                    r.evicted_age,
                    r.evicted_size,
                    u64::from(r.shards_rewritten),
                ] {
                    out.extend_from_slice(&n.to_le_bytes());
                }
            }
            Self::Error { message } => {
                out.push(TAG_ERR);
                push_str(&mut out, &message.replace('\n', " "));
            }
        }
        out
    }

    /// Serializes this response as a complete wire frame in `format`.
    #[must_use]
    pub fn to_frame(&self, format: WireFormat) -> Vec<u8> {
        match format {
            WireFormat::Text => encode_frame(&self.encode()),
            WireFormat::Binary => encode_frame_bin(&self.encode_bin()),
        }
    }

    /// Parses a frame payload in either codec.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn from_payload(payload: &WirePayload) -> Result<Self, String> {
        match payload {
            WirePayload::Text(text) => Self::decode(text),
            WirePayload::Binary(bytes) => Self::decode_bin(bytes),
        }
    }

    /// Parses a text frame payload; total over arbitrary strings.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn decode(payload: &str) -> Result<Self, String> {
        fn numbers<'a>(
            tokens: &mut impl Iterator<Item = &'a str>,
            n: usize,
            verb: &str,
        ) -> Result<Vec<u64>, String> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(
                    tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("{verb}: bad numeric field"))?,
                );
            }
            Ok(out)
        }
        let (head, body) = payload
            .split_once('\n')
            .map_or((payload, None), |(h, b)| (h, Some(b)));
        let mut tokens = head.split(' ');
        let verb = tokens.next().unwrap_or("");
        match verb {
            "hit" => {
                let vlen = numbers(&mut tokens, 1, verb)?[0];
                if tokens.next().is_some() {
                    return Err("hit: trailing tokens".into());
                }
                let value = body.ok_or("hit: missing value line")?;
                if value.len() as u64 != vlen || !valid_value(value) {
                    return Err("hit: value length mismatch".into());
                }
                Ok(Self::Hit {
                    value: value.to_string(),
                })
            }
            "miss" if body.is_none() && tokens.next().is_none() => Ok(Self::Miss),
            "ok" if body.is_none() && tokens.next().is_none() => Ok(Self::Done),
            "mgot" => {
                let n: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("mgot: bad slot count")?;
                if tokens.next().is_some() {
                    return Err("mgot: trailing tokens".into());
                }
                let mut lines = body.map(|b| b.split('\n'));
                let mut values = Vec::new();
                for _ in 0..n {
                    let it = lines.as_mut().ok_or("mgot: missing slot lines")?;
                    let slot = it.next().ok_or("mgot: missing slot line")?;
                    if slot == "miss" {
                        values.push(None);
                        continue;
                    }
                    let vlen: usize = slot
                        .strip_prefix("hit ")
                        .and_then(|t| t.parse().ok())
                        .ok_or("mgot: malformed slot line")?;
                    let value = it.next().ok_or("mgot: missing value line")?;
                    if value.len() != vlen {
                        return Err("mgot: value length mismatch".into());
                    }
                    values.push(Some(value.to_string()));
                }
                if lines.and_then(|mut it| it.next()).is_some() {
                    return Err("mgot: trailing lines".into());
                }
                Ok(Self::MGot { values })
            }
            "granted" if body.is_none() && tokens.next().is_none() => Ok(Self::Granted),
            "busy" if body.is_none() && tokens.next().is_none() => Ok(Self::Busy),
            "hello" if body.is_none() => {
                let version: u32 = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("hello: bad version")?;
                let features: Vec<String> = tokens.map(str::to_string).collect();
                if features.iter().any(|f| !valid_feature(f)) {
                    return Err("hello: malformed feature token".into());
                }
                Ok(Self::Hello { version, features })
            }
            "stats" if body.is_none() => {
                // 7 numbers is a protocol-v1 peer; the 6 service
                // counters read as zero.
                let all: Vec<u64> = tokens
                    .map(|t| t.parse::<u64>().map_err(|_| "stats: bad numeric field"))
                    .collect::<Result<_, _>>()?;
                if all.len() != 7 && all.len() != 13 {
                    return Err("stats: wrong field count".into());
                }
                let at = |i: usize| all.get(i).copied().unwrap_or(0);
                Ok(Self::Stats(StoreStats {
                    live_records: at(0),
                    live_bytes: at(1),
                    file_bytes: at(2),
                    runs: at(3),
                    walks: at(4),
                    programs: at(5),
                    traces: at(6),
                    active_connections: at(7),
                    pipeline_hwm: at(8),
                    batched_keys: at(9),
                    max_batch: at(10),
                    claims_granted: at(11),
                    claims_expired: at(12),
                }))
            }
            "health" if body.is_none() => {
                let v = numbers(&mut tokens, 6, verb)?;
                if tokens.next().is_some() {
                    return Err("health: trailing tokens".into());
                }
                if v[1] > 1 {
                    return Err("health: draining flag must be 0 or 1".into());
                }
                Ok(Self::Health(HealthReport {
                    uptime_secs: v[0],
                    draining: v[1] == 1,
                    shards_occupied: u32::try_from(v[2])
                        .map_err(|_| "health: shard count over u32")?,
                    shard_count: u32::try_from(v[3]).map_err(|_| "health: shard count over u32")?,
                    live_records: v[4],
                    file_bytes: v[5],
                }))
            }
            "gcdone" if body.is_none() => {
                let v = numbers(&mut tokens, 6, verb)?;
                if tokens.next().is_some() {
                    return Err("gcdone: trailing tokens".into());
                }
                #[allow(clippy::cast_possible_truncation)]
                Ok(Self::Gc(GcReport {
                    live_records: v[0],
                    live_bytes: v[1],
                    dead_bytes_dropped: v[2],
                    evicted_age: v[3],
                    evicted_size: v[4],
                    shards_rewritten: v[5] as u32,
                }))
            }
            "err" => {
                let message = head.strip_prefix("err ").unwrap_or("").to_string();
                if body.is_some() {
                    return Err("err: unexpected body".into());
                }
                Ok(Self::Error { message })
            }
            other => Err(format!("unknown response verb {other:?}")),
        }
    }

    /// Parses a binary frame payload; total over arbitrary bytes.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn decode_bin(payload: &[u8]) -> Result<Self, String> {
        let mut r = BinReader::new(payload);
        let tag = r.u8("response tag")?;
        let resp = match tag {
            TAG_HIT => {
                let value = r.str_field("hit value")?;
                if !valid_value(&value) {
                    return Err("hit: malformed value".into());
                }
                Self::Hit { value }
            }
            TAG_MISS => Self::Miss,
            TAG_DONE => Self::Done,
            TAG_MGOT => {
                let n = r.u32("mgot count")?;
                let mut values = Vec::new();
                for _ in 0..n {
                    match r.u8("mgot slot tag")? {
                        0 => values.push(None),
                        1 => {
                            let value = r.str_field("mgot value")?;
                            if !valid_value(&value) {
                                return Err("mgot: malformed value".into());
                            }
                            values.push(Some(value));
                        }
                        other => return Err(format!("mgot: bad slot tag {other}")),
                    }
                }
                Self::MGot { values }
            }
            TAG_GRANTED => Self::Granted,
            TAG_BUSY => Self::Busy,
            TAG_RHELLO => {
                let version = r.u32("hello version")?;
                let n = r.u32("hello feature count")?;
                let mut features = Vec::new();
                for _ in 0..n {
                    let f = r.str_field("hello feature")?;
                    if !valid_feature(&f) {
                        return Err("hello: malformed feature token".into());
                    }
                    features.push(f);
                }
                Self::Hello { version, features }
            }
            TAG_RSTATS => {
                let mut next = |what| r.u64(what);
                Self::Stats(StoreStats {
                    live_records: next("stats field")?,
                    live_bytes: next("stats field")?,
                    file_bytes: next("stats field")?,
                    runs: next("stats field")?,
                    walks: next("stats field")?,
                    programs: next("stats field")?,
                    traces: next("stats field")?,
                    active_connections: next("stats field")?,
                    pipeline_hwm: next("stats field")?,
                    batched_keys: next("stats field")?,
                    max_batch: next("stats field")?,
                    claims_granted: next("stats field")?,
                    claims_expired: next("stats field")?,
                })
            }
            TAG_RHEALTH => {
                let uptime_secs = r.u64("health uptime")?;
                let draining = match r.u8("health draining flag")? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("health: bad draining flag {other}")),
                };
                Self::Health(HealthReport {
                    uptime_secs,
                    draining,
                    shards_occupied: r.u32("health shards occupied")?,
                    shard_count: r.u32("health shard count")?,
                    live_records: r.u64("health live records")?,
                    file_bytes: r.u64("health file bytes")?,
                })
            }
            TAG_GCDONE => {
                let mut next = |what| r.u64(what);
                let (live_records, live_bytes) = (next("gcdone field")?, next("gcdone field")?);
                let dead = next("gcdone field")?;
                let (ea, es) = (next("gcdone field")?, next("gcdone field")?);
                let shards = next("gcdone field")?;
                Self::Gc(GcReport {
                    live_records,
                    live_bytes,
                    dead_bytes_dropped: dead,
                    evicted_age: ea,
                    evicted_size: es,
                    shards_rewritten: u32::try_from(shards)
                        .map_err(|_| "gcdone: shard count over u32")?,
                })
            }
            TAG_ERR => {
                let message = r.str_field("err message")?;
                if message.contains('\n') {
                    return Err("err: malformed message".into());
                }
                Self::Error { message }
            }
            other => return Err(format!("unknown response tag {other}")),
        };
        r.finish("response")?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Get {
                ns: "runs".into(),
                key: "runkey 177.mesa scale 1000 7".into(),
            },
            Request::Put {
                ns: "walks".into(),
                key: "k with spaces".into(),
                value: "v with spaces and 0x3ff0000000000000".into(),
            },
            Request::Put {
                ns: "programs".into(),
                key: "k".into(),
                value: String::new(),
            },
            Request::MGet { items: vec![] },
            Request::MGet {
                items: vec![
                    ("runs".into(), "key one with spaces".into()),
                    ("traces".into(), "key two".into()),
                ],
            },
            Request::MPut {
                items: vec![
                    ("runs".into(), "k1".into(), "value one".into()),
                    ("walks".into(), "k2".into(), String::new()),
                ],
            },
            Request::Claim {
                ns: "runs".into(),
                key: "cold key".into(),
                lease_ms: 30_000,
            },
            Request::Wait {
                ns: "runs".into(),
                key: "cold key".into(),
                timeout_ms: 12_345,
            },
            Request::Hello { version: 2 },
            Request::Stats,
            Request::Health,
            Request::Gc,
            Request::Shutdown,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Hit {
                value: "report base vipt 1 2".into(),
            },
            Response::Hit {
                value: String::new(),
            },
            Response::Miss,
            Response::Done,
            Response::MGot { values: vec![] },
            Response::MGot {
                values: vec![
                    Some("value with spaces".into()),
                    None,
                    Some(String::new()),
                    None,
                ],
            },
            Response::Granted,
            Response::Busy,
            Response::Hello {
                version: 2,
                features: vec!["batch".into(), "binary".into(), "claim".into()],
            },
            Response::Hello {
                version: 1,
                features: vec![],
            },
            Response::Stats(StoreStats {
                live_records: 1,
                live_bytes: 2,
                file_bytes: 3,
                runs: 4,
                walks: 5,
                programs: 6,
                traces: 7,
                active_connections: 8,
                pipeline_hwm: 9,
                batched_keys: 10,
                max_batch: 11,
                claims_granted: 12,
                claims_expired: 13,
            }),
            Response::Health(HealthReport {
                uptime_secs: 3600,
                draining: false,
                shards_occupied: 12,
                shard_count: 16,
                live_records: 4096,
                file_bytes: 1_048_576,
            }),
            Response::Health(HealthReport {
                uptime_secs: 0,
                draining: true,
                shards_occupied: 0,
                shard_count: 16,
                live_records: 0,
                file_bytes: 0,
            }),
            Response::Gc(GcReport {
                live_records: 9,
                live_bytes: 100,
                dead_bytes_dropped: 11,
                evicted_age: 1,
                evicted_size: 2,
                shards_rewritten: 3,
            }),
            Response::Error {
                message: "something broke".into(),
            },
        ]
    }

    #[test]
    fn request_and_response_codecs_round_trip() {
        for req in sample_requests() {
            assert_eq!(Request::decode(&req.encode()).as_ref(), Ok(&req));
            assert_eq!(Request::decode_bin(&req.encode_bin()).as_ref(), Ok(&req));
        }
        for resp in sample_responses() {
            assert_eq!(Response::decode(&resp.encode()).as_ref(), Ok(&resp));
            assert_eq!(Response::decode_bin(&resp.encode_bin()).as_ref(), Ok(&resp));
        }
    }

    #[test]
    fn text_and_binary_codecs_agree() {
        // The same message decoded from either codec is the same value —
        // the codecs are two encodings of one grammar.
        for req in sample_requests() {
            assert_eq!(
                Request::decode(&req.encode()),
                Request::decode_bin(&req.encode_bin())
            );
        }
        for resp in sample_responses() {
            assert_eq!(
                Response::decode(&resp.encode()),
                Response::decode_bin(&resp.encode_bin())
            );
        }
    }

    #[test]
    fn v1_stats_responses_still_decode() {
        // A protocol-v1 peer sends 7 numbers; the service counters read
        // as zero.
        let got = Response::decode("stats 1 2 3 4 5 6 7").unwrap();
        assert_eq!(
            got,
            Response::Stats(StoreStats {
                live_records: 1,
                live_bytes: 2,
                file_bytes: 3,
                runs: 4,
                walks: 5,
                programs: 6,
                traces: 7,
                ..StoreStats::default()
            })
        );
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            "",
            "get",
            "get runs",
            "get runs 5\nab",             // length mismatch
            "get runs 2\nab extra\nline", // newline in key
            "put runs 1 1\nk",
            "put runs 1 1\nkXv",
            "stats extra",
            "gc 1",
            "frobnicate",
            "get r\u{a0}ns 1\nk", // non-ASCII whitespace in ns
            "mget",
            "mget x",
            "mget 2\nruns\nkey",        // one item short
            "mget 1\nruns\nkey\nextra", // trailing line
            "mget 1\n\nkey",            // empty ns
            "mput 1\nruns\nkey",        // missing value line
            "claim runs 3\nkey",        // missing lease field
            "claim runs 3 x\nkey",
            "wait runs 2 100\nkey", // key length mismatch
            "hello",
            "hello x",
            "hello 2 extra",
            "health extra",
            "health\nbody",
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} must not decode");
        }
        for bad in [
            "",
            "hit",
            "hit 5\nab",
            "stats 1 2 3",
            "stats 1 2 3 4 5 6 7 8", // neither 7 nor 13 fields
            "gcdone 1",
            "frob",
            "mgot",
            "mgot 2\nmiss",        // one slot short
            "mgot 1\nhit 5\nab",   // value length mismatch
            "mgot 1\nmiss\nextra", // trailing line
            "granted 1",
            "busy extra",
            "hello",
            "hello x",
            "hello 2 bad\u{a0}token",
            "health 1 0 2 16 3",         // one field short
            "health 1 0 2 16 3 4 5",     // one field over
            "health 1 2 2 16 3 4",       // draining flag must be 0|1
            "health 1 0 2 16 3 4\nbody", // unexpected body
        ] {
            assert!(Response::decode(bad).is_err(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn malformed_binary_payloads_are_errors_not_panics() {
        // Truncations of every valid message must error cleanly.
        for req in sample_requests() {
            let bytes = req.encode_bin();
            for cut in 0..bytes.len() {
                assert!(
                    Request::decode_bin(&bytes[..cut]).is_err(),
                    "truncated {req:?} at {cut} must not decode"
                );
            }
        }
        for resp in sample_responses() {
            let bytes = resp.encode_bin();
            for cut in 0..bytes.len() {
                assert!(
                    Response::decode_bin(&bytes[..cut]).is_err(),
                    "truncated {resp:?} at {cut} must not decode"
                );
            }
        }
        // Bad tags, trailing bytes, corrupt field lengths, invalid
        // fields.
        assert!(Request::decode_bin(&[99]).is_err());
        assert!(Response::decode_bin(&[99]).is_err());
        let mut trailing = Request::Stats.encode_bin();
        trailing.push(0);
        assert!(Request::decode_bin(&trailing).is_err());
        // A corrupt string length larger than the payload must not
        // allocate or panic.
        let mut huge = vec![TAG_GET];
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(Request::decode_bin(&huge).is_err());
        // A namespace with whitespace is rejected by the binary codec
        // exactly like the text codec.
        let bad_ns = Request::Get {
            ns: "runs".into(),
            key: "k".into(),
        }
        .encode_bin();
        let patched: Vec<u8> = bad_ns
            .iter()
            .map(|&b| if b == b'u' { b' ' } else { b })
            .collect();
        assert!(Request::decode_bin(&patched).is_err());
    }
}
