//! The networked store: protocol codec, TCP client, and daemon server.
//!
//! PR 3's sharded [`ArtifactStore`] is single-machine: every process
//! opens the shard files directly. PR 5 put **one process in charge of
//! the shards** behind a tiny request/reply protocol; this revision
//! grows that daemon into a multiplexed service front-end:
//!
//! - [`StoreServer`] — a std-only TCP daemon that exclusively owns an
//!   [`ArtifactStore`] and serves it from a **fixed worker pool over a
//!   readiness loop** (no thread per client): each worker multiplexes
//!   many nonblocking connections through per-connection state machines,
//!   so thousands of clients cost a handful of threads. Requests are
//!   **pipelined** — a client may send many frames before reading any
//!   reply; responses come back in request order per connection.
//! - [`RemoteStore`] — the client: the namespaced load/save surface
//!   ([`StoreBackend`]) over TCP with reconnect-with-backoff, plus the
//!   batch surface (`load_many`/`save_many` → one `MGET`/`MPUT` round
//!   trip instead of a round trip per key) and the global-dedup surface
//!   (`claim`/`wait_for`). Every I/O failure degrades to a **miss**.
//! - [`LayeredStore`] — remote over local: a remote miss falls back to
//!   the machine-local store, saves go to the daemon — falling back to
//!   the local layer only while the daemon is unreachable.
//!
//! # Wire formats
//!
//! Every message (request or response) is one **frame**, in one of two
//! self-describing formats:
//!
//! ```text
//! text:    cfr1 <payload-bytes>\n<payload>\n          (protocol v1, kept)
//! binary:  cfrb <4-byte LE payload-bytes><payload>    (protocol v2)
//! ```
//!
//! The first bytes disambiguate, so a server accepts either format on
//! any frame and **mirrors the request's format in its reply**. A
//! client discovers whether the server speaks binary via the `HELLO`
//! verb ([`Request::Hello`]) and upgrades only after the server lists
//! the `binary` feature — text frames keep working forever, which is
//! the compatibility story for protocol v1 peers and for humans with
//! `nc`. Binary framing spares multi-MB program/trace records the text
//! codec's header scans and re-validation on every hop.
//!
//! Frame payload size is bounded ([`max_frame_bytes`], default
//! [`MAX_FRAME_BYTES`], override [`MAX_FRAME_ENV`]): a garbage length
//! prefix is rejected *before* any allocation, and an oversized frame
//! draws an error reply followed by disconnect.
//!
//! # Verbs
//!
//! `GET`/`PUT`/`STATS`/`GC`/`SHUTDOWN` from protocol v1, plus:
//!
//! - `MGET`/`MPUT` — batch lookups/saves: an entire plan's keys in one
//!   round trip (the engine's batched warm probe).
//! - `HELLO` — version/feature negotiation (see above).
//! - `HEALTH` — liveness probe: uptime, shard occupancy, live record
//!   and byte counts, and whether the daemon is draining (refusing new
//!   connections while it answers in-flight frames). Surfaced by the
//!   `cfr-store-serve health` subcommand.
//! - `CLAIM`/`WAIT` — **global cold-key dedup**: `CLAIM` asks for the
//!   exclusive right to compute a missing key (lease-bounded; the reply
//!   is the stored value if someone already published it, `granted` if
//!   the claim is yours, `busy` if another client holds it); `WAIT`
//!   parks the connection until the value is published or the claim
//!   lease expires. A dead client's claim expires — or is released the
//!   moment its connection drops — and waiters degrade to computing
//!   locally, preserving the store's every-failure-is-a-miss contract.
//!
//! The decoders are total functions over arbitrary bytes —
//! `Incomplete` / `Invalid` / `Frame`, never a panic — which is what
//! the protocol fuzz properties in `tests/property_based.rs` pin.
//!
//! [`ArtifactStore`]: crate::store::ArtifactStore
//! [`StoreBackend`]: crate::store::StoreBackend

mod client;
mod frame;
mod proto;
mod server;

pub use client::{LayeredStore, RemoteStore};
pub use frame::{
    decode_frame, decode_wire_frame, encode_frame, encode_frame_bin, max_frame_bytes, FrameDecode,
    FrameReader, WireDecode, WireFormat, WirePayload, BIN_HEADER_BYTES, BIN_MAGIC, MAX_FRAME_BYTES,
    MAX_HEADER_BYTES, PROTOCOL_MAGIC,
};
pub use proto::{HealthReport, Request, Response, StoreStats};
pub use server::{ServerConfig, StoreServer};

use std::time::Duration;

/// Environment variable naming the store daemon (`host:port`). When set,
/// `cfr_core::Store::open_default` builds a [`LayeredStore`] (remote
/// first, local fallback) instead of opening the shards directly.
pub const STORE_ADDR_ENV: &str = "CFR_STORE_ADDR";

/// Environment variable overriding the maximum frame payload size in
/// bytes (default [`MAX_FRAME_BYTES`]; values below 4096 are clamped up
/// so control frames always fit).
pub const MAX_FRAME_ENV: &str = "CFR_STORE_MAX_FRAME";

/// Environment variable overriding the claim lease, in milliseconds
/// (default [`DEFAULT_CLAIM_LEASE`]). The lease bounds how long other
/// clients wait on a claim whose holder died without disconnecting.
pub const CLAIM_LEASE_ENV: &str = "CFR_STORE_CLAIM_LEASE_MS";

/// Default claim lease: long enough for any single simulation at
/// realistic scales, short enough that a wedged holder only stalls
/// waiters briefly before they degrade to computing locally.
pub const DEFAULT_CLAIM_LEASE: Duration = Duration::from_secs(30);

/// Default port the daemon binds when none is given.
pub const DEFAULT_DAEMON_ADDR: &str = "127.0.0.1:7433";

/// The protocol version this build speaks (reported by `HELLO`).
pub const PROTOCOL_VERSION: u32 = 2;

/// Feature token: the peer accepts binary frames.
pub const FEATURE_BINARY: &str = "binary";

/// Feature token: the peer serves `MGET`/`MPUT` batches.
pub const FEATURE_BATCH: &str = "batch";

/// Feature token: the peer serves `CLAIM`/`WAIT` global dedup.
pub const FEATURE_CLAIM: &str = "claim";

/// The claim lease this process uses ([`CLAIM_LEASE_ENV`], else
/// [`DEFAULT_CLAIM_LEASE`]).
#[must_use]
pub fn claim_lease() -> Duration {
    std::env::var(CLAIM_LEASE_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map_or(DEFAULT_CLAIM_LEASE, Duration::from_millis)
}
