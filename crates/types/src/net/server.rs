//! The store daemon: a fixed worker pool multiplexing many nonblocking
//! connections over a readiness loop.
//!
//! One acceptor thread hands each new connection to a worker
//! (round-robin); each worker owns a set of connections and drives them
//! through per-connection state machines — read bytes, decode frames,
//! serve requests, queue replies, flush — so a thousand clients cost
//! `workers` threads, not a thousand. Requests are served as they
//! decode (**pipelining**): a client may write its whole batch before
//! reading anything, and replies come back in request order because the
//! out-queue is FIFO and a parked `WAIT` blocks the replies behind it
//! (never other connections).
//!
//! Readiness comes from `poll(2)` on Linux (declared directly — no
//! external crates); elsewhere a short sleep substitutes, which stays
//! correct (merely less efficient) because every socket operation is
//! nonblocking. Cross-worker wakeups (a `PUT` publishing a value some
//! other worker's connection is parked on) are a byte written to a
//! per-worker loopback socket pair.

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::store::{
    ArtifactStore, GcPolicy, NS_PROGRAMS, NS_RUNS, NS_TRACES, NS_WALKS, SHARD_COUNT,
};

use super::frame::{WireDecode, WireFormat};
use super::proto::{HealthReport, Request, Response, StoreStats};
use super::{FEATURE_BATCH, FEATURE_BINARY, FEATURE_CLAIM, PROTOCOL_VERSION};

/// Longest lease/park a client may ask for; larger requests clamp here
/// so one bad client cannot park resources for hours.
const MAX_LEASE: Duration = Duration::from_secs(600);

/// Worker poll-loop tick: the upper bound on how stale a shutdown
/// check, claim-expiry sweep, or read-timeout check can be.
const WORKER_TICK: Duration = Duration::from_millis(100);

/// How long a draining worker keeps flushing replies to connections
/// that will not read them before giving up and closing anyway. The
/// normal case — responsive clients — drains in one or two ticks.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// How the daemon runs its store.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Age/size policy applied by the background GC thread and the `GC`
    /// command — **not** by saves (the daemon's store is opened
    /// unbounded, which is what moves GC off the save path).
    pub gc_policy: GcPolicy,
    /// Background GC cadence (`None` = only on explicit `GC` commands).
    pub gc_interval: Option<Duration>,
    /// Worker threads multiplexing the connections.
    pub workers: usize,
    /// Per-connection progress timeout: a connection stalled mid-frame
    /// (or with replies it will not read) longer than this is closed so
    /// it cannot pin worker resources. Idle connections at a frame
    /// boundary are never timed out.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            gc_policy: GcPolicy::unbounded(),
            gc_interval: Some(Duration::from_secs(60)),
            workers: 4,
            read_timeout: Duration::from_secs(10),
        }
    }
}

// ---------------------------------------------------------------------------
// Readiness
// ---------------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod readiness {
    use std::os::fd::RawFd;

    #[repr(C)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    // POLLERR/POLLHUP/POLLNVAL are reported regardless of `events`; a
    // closed peer surfaces as readable (read returns 0) so folding them
    // into "ready" is sufficient.
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Blocks until a registered fd is ready or `timeout` elapses.
    /// Returns per-fd `(readable, writable)`, in registration order.
    pub(super) fn wait(fds: &[(RawFd, bool)], timeout: std::time::Duration) -> Vec<(bool, bool)> {
        let mut pollfds: Vec<PollFd> = fds
            .iter()
            .map(|&(fd, want_write)| PollFd {
                fd,
                events: POLLIN | if want_write { POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        let timeout_ms = i32::try_from(timeout.as_millis()).unwrap_or(i32::MAX);
        let rc = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as u64, timeout_ms) };
        if rc < 0 {
            // EINTR or similar: claim nothing ready; the caller's next
            // loop iteration retries.
            return vec![(false, false); fds.len()];
        }
        pollfds
            .iter()
            .map(|p| {
                let err = p.revents & (POLLERR | POLLHUP) != 0;
                (
                    p.revents & POLLIN != 0 || err,
                    p.revents & POLLOUT != 0 || err,
                )
            })
            .collect()
    }
}

#[cfg(not(target_os = "linux"))]
mod readiness {
    use std::os::fd::RawFd;

    /// Portability fallback: sleep briefly and claim everything ready.
    /// Correct (all socket ops are nonblocking and tolerate spurious
    /// readiness) at the cost of a 1 ms duty cycle.
    pub(super) fn wait(fds: &[(RawFd, bool)], _timeout: std::time::Duration) -> Vec<(bool, bool)> {
        std::thread::sleep(std::time::Duration::from_millis(1));
        vec![(true, true); fds.len()]
    }
}

// ---------------------------------------------------------------------------
// Service counters
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ServerCounters {
    active_connections: AtomicU64,
    pipeline_hwm: AtomicU64,
    batched_keys: AtomicU64,
    max_batch: AtomicU64,
    claims_granted: AtomicU64,
    claims_expired: AtomicU64,
}

impl ServerCounters {
    fn raise(cell: &AtomicU64, sample: u64) {
        cell.fetch_max(sample, Ordering::Relaxed);
    }

    fn note_batch(&self, keys: usize) {
        self.batched_keys.fetch_add(keys as u64, Ordering::Relaxed);
        Self::raise(&self.max_batch, keys as u64);
    }
}

// ---------------------------------------------------------------------------
// Claims
// ---------------------------------------------------------------------------

/// Where a parked `WAIT` learns its fate. `None` in the slot = still
/// parked; `Some(None)` = the claim lapsed unpublished (reply `miss`);
/// `Some(Some(v))` = published (reply `hit`).
#[derive(Debug, Default)]
struct WaitCell {
    outcome: Mutex<Option<Option<String>>>,
}

impl WaitCell {
    fn resolve(&self, outcome: Option<String>) {
        let mut slot = self.outcome.lock().expect("wait cell poisoned");
        if slot.is_none() {
            *slot = Some(outcome);
        }
    }

    fn peek(&self) -> Option<Option<String>> {
        self.outcome.lock().expect("wait cell poisoned").clone()
    }
}

#[derive(Debug)]
struct ClaimEntry {
    owner: u64,
    deadline: Instant,
    waiters: Vec<Arc<WaitCell>>,
}

/// The daemon-global claim table: `(ns, key) → exclusive computer`.
/// Lifted from the engine's in-process in-flight map so N *processes*
/// racing one cold key simulate it once globally.
#[derive(Debug, Default)]
struct ClaimTable {
    entries: Mutex<HashMap<(String, String), ClaimEntry>>,
}

enum WaitDisposition {
    Immediate(Response),
    Park(Arc<WaitCell>),
}

impl ClaimTable {
    /// Serves a `CLAIM`: hit if published, granted if the claim is now
    /// (or already was) `owner`'s, busy if another live claim holds it.
    /// An expired claim is taken over — its waiters degrade to `miss`.
    fn claim(
        &self,
        store: &ArtifactStore,
        counters: &ServerCounters,
        ns: &str,
        key: &str,
        owner: u64,
        lease: Duration,
    ) -> Response {
        if let Some(value) = store.load(ns, key) {
            return Response::Hit { value };
        }
        let now = Instant::now();
        let mut entries = self.entries.lock().expect("claim table poisoned");
        match entries.get_mut(&(ns.to_string(), key.to_string())) {
            Some(entry) if entry.owner == owner => {
                entry.deadline = now + lease; // re-claim extends the lease
                Response::Granted
            }
            Some(entry) if entry.deadline > now => Response::Busy,
            Some(entry) => {
                // Expired: the holder died or stalled. Its waiters
                // compute locally; the key changes hands.
                counters.claims_expired.fetch_add(1, Ordering::Relaxed);
                for w in entry.waiters.drain(..) {
                    w.resolve(None);
                }
                entry.owner = owner;
                entry.deadline = now + lease;
                counters.claims_granted.fetch_add(1, Ordering::Relaxed);
                Response::Granted
            }
            None => {
                entries.insert(
                    (ns.to_string(), key.to_string()),
                    ClaimEntry {
                        owner,
                        deadline: now + lease,
                        waiters: Vec::new(),
                    },
                );
                counters.claims_granted.fetch_add(1, Ordering::Relaxed);
                Response::Granted
            }
        }
    }

    /// Serves a `WAIT`: immediate hit if published, immediate miss if no
    /// live claim is active (nothing to wait for — compute), else parks.
    fn wait(
        &self,
        store: &ArtifactStore,
        counters: &ServerCounters,
        ns: &str,
        key: &str,
    ) -> WaitDisposition {
        if let Some(value) = store.load(ns, key) {
            return WaitDisposition::Immediate(Response::Hit { value });
        }
        let now = Instant::now();
        let mut entries = self.entries.lock().expect("claim table poisoned");
        let slot = (ns.to_string(), key.to_string());
        match entries.get_mut(&slot) {
            None => WaitDisposition::Immediate(Response::Miss),
            Some(entry) if entry.deadline <= now => {
                counters.claims_expired.fetch_add(1, Ordering::Relaxed);
                for w in entry.waiters.drain(..) {
                    w.resolve(None);
                }
                entries.remove(&slot);
                WaitDisposition::Immediate(Response::Miss)
            }
            Some(entry) => {
                let cell = Arc::new(WaitCell::default());
                entry.waiters.push(Arc::clone(&cell));
                WaitDisposition::Park(cell)
            }
        }
    }

    /// A value landed: the claim (if any) is fulfilled, every waiter
    /// gets the value.
    fn publish(&self, ns: &str, key: &str, value: &str) {
        let mut entries = self.entries.lock().expect("claim table poisoned");
        if let Some(entry) = entries.remove(&(ns.to_string(), key.to_string())) {
            for w in entry.waiters {
                w.resolve(Some(value.to_string()));
            }
        }
    }

    /// A connection died: its unpublished claims are released so other
    /// clients stop waiting and compute locally.
    fn release_owner(&self, counters: &ServerCounters, owner: u64) {
        let mut entries = self.entries.lock().expect("claim table poisoned");
        entries.retain(|_, entry| {
            if entry.owner != owner {
                return true;
            }
            counters.claims_expired.fetch_add(1, Ordering::Relaxed);
            for w in entry.waiters.drain(..) {
                w.resolve(None);
            }
            false
        });
    }

    /// Lazy expiry for claims nobody touches: overdue entries resolve
    /// their waiters to `miss` and vanish.
    fn sweep(&self, counters: &ServerCounters) {
        let now = Instant::now();
        let mut entries = self.entries.lock().expect("claim table poisoned");
        entries.retain(|_, entry| {
            if entry.deadline > now {
                return true;
            }
            counters.claims_expired.fetch_add(1, Ordering::Relaxed);
            for w in entry.waiters.drain(..) {
                w.resolve(None);
            }
            false
        });
    }
}

// ---------------------------------------------------------------------------
// Wakeups
// ---------------------------------------------------------------------------

/// A connected loopback socket pair: `TcpListener` bind + connect +
/// accept. The read side sits in a worker's poll set; a byte written to
/// the write side wakes that worker out of `poll`.
fn socket_pair() -> io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let write_side = TcpStream::connect(listener.local_addr()?)?;
    let (read_side, _) = listener.accept()?;
    read_side.set_nonblocking(true)?;
    // Nonblocking writes: a full wake buffer means unread wake bytes are
    // already pending, so a dropped extra byte loses nothing.
    write_side.set_nonblocking(true)?;
    Ok((write_side, read_side))
}

#[derive(Debug)]
struct Wakers {
    write_sides: Vec<TcpStream>,
}

impl Wakers {
    fn wake(&self, worker: usize) {
        let _ = (&self.write_sides[worker]).write(&[1]);
    }

    fn wake_all(&self) {
        for i in 0..self.write_sides.len() {
            self.wake(i);
        }
    }
}

// ---------------------------------------------------------------------------
// Per-connection state machine
// ---------------------------------------------------------------------------

/// One queued reply slot. The out-queue is FIFO, so pipelined replies
/// keep request order; a `Waiting` head blocks only its own connection.
enum OutSlot {
    /// Encoded reply bytes, ready to flush.
    Ready(Vec<u8>),
    /// A parked `WAIT`: resolves to a reply when its cell is published,
    /// released, or `deadline` passes (client-requested timeout).
    Waiting {
        cell: Arc<WaitCell>,
        format: WireFormat,
        deadline: Instant,
    },
}

struct ConnState {
    stream: TcpStream,
    rbuf: Vec<u8>,
    out: VecDeque<OutSlot>,
    /// Bytes of the head `Ready` slot already written.
    written: usize,
    owner: u64,
    last_progress: Instant,
    /// Flush what is queued, then drop the connection (protocol error
    /// or shutdown handshake).
    close_after_flush: bool,
}

impl ConnState {
    /// Whether the head of the out-queue is flushable right now
    /// (resolving a due `Waiting` head on the way).
    fn flushable(&mut self) -> bool {
        loop {
            match self.out.front() {
                None => return false,
                Some(OutSlot::Ready(_)) => return true,
                Some(OutSlot::Waiting {
                    cell,
                    format,
                    deadline,
                }) => {
                    let outcome = match cell.peek() {
                        Some(outcome) => outcome,
                        None if Instant::now() >= *deadline => None, // timed out: miss
                        None => return false,                        // still parked
                    };
                    let response = match outcome {
                        Some(value) => Response::Hit { value },
                        None => Response::Miss,
                    };
                    let bytes = response.to_frame(*format);
                    self.out[0] = OutSlot::Ready(bytes);
                }
            }
        }
    }

    /// True while the peer owes us bytes (mid-frame) or we owe the peer
    /// bytes — the states the progress timeout applies to.
    fn awaiting_progress(&self) -> bool {
        !self.rbuf.is_empty() || !self.out.is_empty()
    }
}

// ---------------------------------------------------------------------------
// The server
// ---------------------------------------------------------------------------

/// The store daemon: exclusively owns an [`ArtifactStore`] and serves it
/// over TCP from a fixed worker pool. See the module docs for the
/// protocol; see `cfr-store-serve` for the CLI wrapper.
#[derive(Debug)]
pub struct StoreServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    gc_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    wakers: Arc<Wakers>,
    store: Arc<ArtifactStore>,
    shared: Arc<Shared>,
}

struct Shared {
    store: Arc<ArtifactStore>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    /// The graceful half of teardown: set first, it stops the acceptor
    /// and puts every worker into drain mode — answer what is already
    /// in flight, fail parked waiters with `err`, flush, close. The
    /// hard `shutdown` flag is only set once draining finished.
    draining: AtomicBool,
    started: Instant,
    counters: ServerCounters,
    claims: ClaimTable,
    server_addr: SocketAddr,
}

/// Flips the daemon into drain mode (idempotent) and unblocks the
/// acceptor and every worker so they notice immediately.
fn begin_drain(shared: &Shared, wakers: &Wakers) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    let _ = TcpStream::connect(shared.server_addr); // unblock accept()
    wakers.wake_all();
}

impl StoreServer {
    /// Binds `addr` (use port `0` for an ephemeral port; read the real
    /// one back from [`StoreServer::addr`]) and starts serving `store`:
    /// one acceptor thread, `config.workers` connection workers, and —
    /// when `config.gc_interval` is set — one GC thread.
    ///
    /// # Errors
    ///
    /// Errors if the listener cannot bind or the worker wake channels
    /// cannot be set up.
    pub fn bind(store: Arc<ArtifactStore>, addr: &str, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let worker_count = config.workers.max(1);

        let shared = Arc::new(Shared {
            store: Arc::clone(&store),
            config,
            shutdown: Arc::clone(&shutdown),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            counters: ServerCounters::default(),
            claims: ClaimTable::default(),
            server_addr: local_addr,
        });

        let mut write_sides = Vec::with_capacity(worker_count);
        let mut inboxes = Vec::with_capacity(worker_count);
        let mut workers = Vec::with_capacity(worker_count);
        let mut pairs = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (write_side, read_side) = socket_pair()?;
            write_sides.push(write_side);
            pairs.push(read_side);
        }
        let wakers = Arc::new(Wakers { write_sides });
        for read_side in pairs {
            let (tx, rx) = mpsc::channel::<TcpStream>();
            inboxes.push(tx);
            let shared = Arc::clone(&shared);
            let wakers = Arc::clone(&wakers);
            workers.push(thread::spawn(move || {
                worker_loop(&shared, &wakers, read_side, &rx);
            }));
        }

        let accept = {
            let shared = Arc::clone(&shared);
            let shutdown = Arc::clone(&shutdown);
            let wakers = Arc::clone(&wakers);
            thread::spawn(move || {
                let stopping = |shared: &Shared| {
                    shared.draining.load(Ordering::SeqCst) || shutdown.load(Ordering::SeqCst)
                };
                let mut next = 0usize;
                loop {
                    let Ok((stream, _)) = listener.accept() else {
                        if stopping(&shared) {
                            return;
                        }
                        // Transient accept error — e.g. EMFILE, which
                        // returns immediately and repeatedly. Throttle
                        // instead of spinning a core.
                        thread::sleep(Duration::from_millis(20));
                        continue;
                    };
                    if stopping(&shared) {
                        return; // the wake-up connection, or a racer
                    }
                    let worker = next % inboxes.len();
                    next = next.wrapping_add(1);
                    if inboxes[worker].send(stream).is_ok() {
                        wakers.wake(worker);
                    }
                }
            })
        };
        let gc_thread = config.gc_interval.map(|interval| {
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || gc_loop(&store, config.gc_policy, interval, &shutdown))
        });
        Ok(Self {
            addr: local_addr,
            shutdown,
            accept: Some(accept),
            gc_thread,
            workers,
            wakers,
            store,
            shared,
        })
    }

    /// The address the daemon is actually listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store this daemon owns.
    #[must_use]
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// Blocks until a client sends `SHUTDOWN`, then tears down cleanly.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop();
    }

    /// Stops the daemon from this process — via the same graceful drain
    /// the `SHUTDOWN` verb takes: stop accepting, answer in-flight
    /// frames, fail parked waiters with `err`, flush, then tear down.
    /// After this returns no thread serves the store — a client's next
    /// request definitively fails (and degrades to a miss on its side).
    pub fn shutdown(mut self) {
        self.stop();
    }

    /// Begins draining without blocking: the acceptor stops, workers
    /// answer what is in flight and fail parked waiters fast. Call
    /// [`StoreServer::shutdown`] (or drop) to join the teardown.
    pub fn drain(&self) {
        begin_drain(&self.shared, &self.wakers);
    }

    /// Whether the daemon is draining (or already stopped).
    #[must_use]
    pub fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    fn stop(&mut self) {
        // Graceful first: drain answers in-flight frames and resolves
        // parked waiters instead of abandoning them mid-queue.
        begin_drain(&self.shared, &self.wakers);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Only now flip the hard flag (stops the GC thread; also the
        // terminal state `draining` paired with no served socket).
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(gc) = self.gc_thread.take() {
            let _ = gc.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("server_addr", &self.server_addr)
            .finish_non_exhaustive()
    }
}

fn gc_loop(
    store: &Arc<ArtifactStore>,
    policy: GcPolicy,
    interval: Duration,
    shutdown: &Arc<AtomicBool>,
) {
    let tick = interval.min(Duration::from_millis(20));
    let mut last = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        thread::sleep(tick);
        if last.elapsed() >= interval {
            let _ = store.gc_with(policy);
            last = Instant::now();
        }
    }
}

fn stats_of(shared: &Shared) -> StoreStats {
    let store = &shared.store;
    let c = &shared.counters;
    StoreStats {
        live_records: store.live_records() as u64,
        live_bytes: store.live_bytes(),
        file_bytes: store.file_bytes(),
        runs: store.namespace_records(NS_RUNS) as u64,
        walks: store.namespace_records(NS_WALKS) as u64,
        programs: store.namespace_records(NS_PROGRAMS) as u64,
        traces: store.namespace_records(NS_TRACES) as u64,
        active_connections: c.active_connections.load(Ordering::Relaxed),
        pipeline_hwm: c.pipeline_hwm.load(Ordering::Relaxed),
        batched_keys: c.batched_keys.load(Ordering::Relaxed),
        max_batch: c.max_batch.load(Ordering::Relaxed),
        claims_granted: c.claims_granted.load(Ordering::Relaxed),
        claims_expired: c.claims_expired.load(Ordering::Relaxed),
    }
}

fn health_of(shared: &Shared) -> HealthReport {
    let store = &shared.store;
    let shards_occupied = store
        .shard_occupancy()
        .iter()
        .filter(|o| o.live_records > 0)
        .count();
    HealthReport {
        uptime_secs: shared.started.elapsed().as_secs(),
        draining: shared.draining.load(Ordering::SeqCst),
        shards_occupied: u32::try_from(shards_occupied).unwrap_or(SHARD_COUNT),
        shard_count: SHARD_COUNT,
        live_records: store.live_records() as u64,
        file_bytes: store.file_bytes(),
    }
}

/// Serves one decoded request (`Shutdown` is intercepted by the caller,
/// which owns teardown). Returns the reply slot to queue; the caller
/// owns write-out.
fn serve(
    shared: &Shared,
    wakers: &Wakers,
    conn_owner: u64,
    req: Request,
    wire: WireFormat,
) -> OutSlot {
    let response = match req {
        Request::Get { ns, key } => match shared.store.load(&ns, &key) {
            Some(value) => Response::Hit { value },
            None => Response::Miss,
        },
        Request::Put { ns, key, value } => {
            // Request decoding enforced the store's input shapes, so
            // this cannot trip the store's assertions.
            shared.store.save(&ns, &key, &value);
            shared.claims.publish(&ns, &key, &value);
            wakers.wake_all(); // parked WAITs may live on any worker
            Response::Done
        }
        Request::MGet { items } => {
            shared.counters.note_batch(items.len());
            let values = items
                .iter()
                .map(|(ns, key)| shared.store.load(ns, key))
                .collect();
            Response::MGot { values }
        }
        Request::MPut { items } => {
            shared.counters.note_batch(items.len());
            for (ns, key, value) in &items {
                shared.store.save(ns, key, value);
                shared.claims.publish(ns, key, value);
            }
            // A served batch is a durability commit point: under
            // `CFR_STORE_FSYNC=commit` the whole batch hits stable
            // storage before the client sees `ok`.
            shared.store.commit_batch();
            if !items.is_empty() {
                wakers.wake_all();
            }
            Response::Done
        }
        Request::Claim { ns, key, lease_ms } => {
            let lease = Duration::from_millis(lease_ms).min(MAX_LEASE);
            shared.claims.claim(
                &shared.store,
                &shared.counters,
                &ns,
                &key,
                conn_owner,
                lease,
            )
        }
        Request::Wait {
            ns,
            key,
            timeout_ms,
        } => {
            let timeout = Duration::from_millis(timeout_ms).min(MAX_LEASE);
            match shared
                .claims
                .wait(&shared.store, &shared.counters, &ns, &key)
            {
                WaitDisposition::Immediate(response) => response,
                WaitDisposition::Park(cell) => {
                    return OutSlot::Waiting {
                        cell,
                        format: wire,
                        deadline: Instant::now() + timeout,
                    }
                }
            }
        }
        Request::Hello { version: _ } => Response::Hello {
            version: PROTOCOL_VERSION,
            features: vec![
                FEATURE_BATCH.to_string(),
                FEATURE_BINARY.to_string(),
                FEATURE_CLAIM.to_string(),
            ],
        },
        Request::Stats => Response::Stats(stats_of(shared)),
        Request::Health => Response::Health(health_of(shared)),
        Request::Gc => Response::Gc(shared.store.gc_with(shared.config.gc_policy)),
        Request::Shutdown => Response::Done, // caller handles teardown
    };
    OutSlot::Ready(response.to_frame(wire))
}

fn worker_loop(
    shared: &Shared,
    wakers: &Wakers,
    mut wake_rx: TcpStream,
    inbox: &mpsc::Receiver<TcpStream>,
) {
    use std::os::fd::AsRawFd;
    let mut conns: Vec<ConnState> = Vec::new();
    let mut owner_seq = u64::from(wake_rx.local_addr().map_or(0, |a| a.port())) << 32;
    let mut drain_since: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let draining = shared.draining.load(Ordering::SeqCst);
        if draining {
            if drain_since.is_none() {
                drain_since = Some(Instant::now());
            }
            // Refuse connections that raced into the inbox after the
            // drain began — dropping the stream closes them.
            while inbox.try_recv().is_ok() {}
        } else {
            // Adopt newly accepted connections.
            while let Ok(stream) = inbox.try_recv() {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                owner_seq += 1;
                shared
                    .counters
                    .active_connections
                    .fetch_add(1, Ordering::Relaxed);
                conns.push(ConnState {
                    stream,
                    rbuf: Vec::new(),
                    out: VecDeque::new(),
                    written: 0,
                    owner: owner_seq,
                    last_progress: Instant::now(),
                    close_after_flush: false,
                });
            }
        }

        // Expire overdue claims so their waiters unpark. Running here —
        // on every poll tick, not on request arrival — is what lets a
        // dead holder's lease lapse even when the daemon receives zero
        // traffic: waiters parked on other connections unblock within
        // one WORKER_TICK of the deadline.
        shared.claims.sweep(&shared.counters);

        // Readiness: the wake socket plus every connection (write
        // interest only while something is flushable).
        let mut fds = Vec::with_capacity(conns.len() + 1);
        fds.push((wake_rx.as_raw_fd(), false));
        for conn in &mut conns {
            let want_write = conn.flushable();
            fds.push((conn.stream.as_raw_fd(), want_write));
        }
        let ready = readiness::wait(&fds, WORKER_TICK);
        if ready[0].0 {
            let mut drain = [0u8; 64];
            while matches!(wake_rx.read(&mut drain), Ok(n) if n > 0) {}
        }

        let mut drain_requested = false;
        for (i, conn) in conns.iter_mut().enumerate() {
            let (readable, writable) = ready[i + 1];
            let mut dead = false;
            if readable && !conn.close_after_flush {
                dead = pump_reads(shared, wakers, conn, &mut drain_requested);
            }
            if draining && !dead {
                // Drain mode: every frame already received got its
                // reply above; parked waiters fail fast with `err`
                // instead of hanging until the client-side timeout,
                // and the connection closes once its queue flushes.
                for slot in &mut conn.out {
                    if let OutSlot::Waiting { format, .. } = slot {
                        let reply = Response::Error {
                            message: "daemon draining".to_string(),
                        };
                        *slot = OutSlot::Ready(reply.to_frame(*format));
                    }
                }
                conn.close_after_flush = true;
            }
            // Opportunistic flush: freshly queued replies usually fit
            // the socket buffer without waiting for a POLLOUT round.
            if !dead && (writable || conn.flushable()) {
                dead = pump_writes(conn);
            }
            if !dead && draining && conn.out.is_empty() {
                dead = true; // nothing left to answer: close now
            }
            if !dead
                && conn.awaiting_progress()
                && conn.last_progress.elapsed() > shared.config.read_timeout
                && !conn
                    .out
                    .iter()
                    .any(|s| matches!(s, OutSlot::Waiting { .. }))
            {
                // Stalled mid-frame or not reading its replies: drop it.
                // (A parked WAIT is progress pending on *us*, not the
                // peer — exempt.)
                dead = true;
            }
            if dead {
                shared.claims.release_owner(&shared.counters, conn.owner);
                shared
                    .counters
                    .active_connections
                    .fetch_sub(1, Ordering::Relaxed);
                conn.close_after_flush = true;
                conn.owner = 0; // released
                conn.out.clear();
                conn.rbuf.clear();
                conn.written = usize::MAX; // marker: remove below
            }
        }
        conns.retain(|c| c.written != usize::MAX);

        if drain_requested {
            // A client sent `SHUTDOWN`: its `ok` is queued; the daemon
            // now drains instead of dropping everyone mid-queue.
            begin_drain(shared, wakers);
        }
        if draining
            && (conns.is_empty() || drain_since.is_some_and(|since| since.elapsed() > DRAIN_GRACE))
        {
            break;
        }
    }
    // Teardown: release every connection's claims so cross-process
    // waiters parked on other workers degrade to misses promptly.
    for conn in &conns {
        if conn.owner != 0 {
            shared.claims.release_owner(&shared.counters, conn.owner);
            shared
                .counters
                .active_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Reads until `WouldBlock`, decoding and serving every complete frame.
/// Returns `true` when the connection is finished (EOF or fatal error).
fn pump_reads(
    shared: &Shared,
    wakers: &Wakers,
    conn: &mut ConnState,
    drain_requested: &mut bool,
) -> bool {
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return true, // EOF
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.last_progress = Instant::now();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
        // Serve every complete frame already buffered before reading
        // more: pipelined requests drain without waiting for the socket.
        loop {
            match super::frame::decode_wire_frame(&conn.rbuf) {
                WireDecode::Incomplete => break,
                WireDecode::Invalid => {
                    // Bytes that can never become a frame (garbage or an
                    // oversized length header): error-reply — the peer
                    // may not even speak the protocol, so text — then
                    // disconnect after flushing.
                    let reply = Response::Error {
                        message: "malformed frame".to_string(),
                    };
                    conn.out
                        .push_back(OutSlot::Ready(reply.to_frame(WireFormat::Text)));
                    conn.rbuf.clear();
                    conn.close_after_flush = true;
                    return false;
                }
                WireDecode::Frame { payload, consumed } => {
                    conn.rbuf.drain(..consumed);
                    let wire = payload.format();
                    let slot = match Request::from_payload(&payload) {
                        // A well-framed but malformed request gets a
                        // clean error reply; the connection survives.
                        Err(message) => OutSlot::Ready(Response::Error { message }.to_frame(wire)),
                        Ok(Request::Shutdown) => {
                            *drain_requested = true;
                            conn.close_after_flush = true;
                            OutSlot::Ready(Response::Done.to_frame(wire))
                        }
                        Ok(req) => serve(shared, wakers, conn.owner, req, wire),
                    };
                    conn.out.push_back(slot);
                    ServerCounters::raise(&shared.counters.pipeline_hwm, conn.out.len() as u64);
                    if conn.close_after_flush {
                        // Nothing after a shutdown ack is served.
                        conn.rbuf.clear();
                        return false;
                    }
                }
            }
        }
    }
    false
}

/// Flushes ready replies until `WouldBlock` or the queue blocks on a
/// parked `WAIT`. Returns `true` when the connection is finished.
fn pump_writes(conn: &mut ConnState) -> bool {
    while conn.flushable() {
        let Some(OutSlot::Ready(bytes)) = conn.out.front() else {
            unreachable!("flushable() leaves a Ready head");
        };
        match conn.stream.write(&bytes[conn.written..]) {
            Ok(0) => return true,
            Ok(n) => {
                conn.written += n;
                conn.last_progress = Instant::now();
                if conn.written == bytes.len() {
                    conn.out.pop_front();
                    conn.written = 0;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return false,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return true,
        }
    }
    // Fully flushed: a connection marked close-after-flush ends here.
    conn.out.is_empty() && conn.close_after_flush
}

#[cfg(test)]
mod tests {
    use super::super::client::{LayeredStore, RemoteStore};
    use super::super::frame::{encode_frame, FrameReader, WirePayload};
    use super::*;
    use crate::store::StoreBackend;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfr-net-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn serve_dir(dir: &std::path::Path, config: ServerConfig) -> StoreServer {
        let store = Arc::new(ArtifactStore::open(dir, GcPolicy::unbounded()).unwrap());
        StoreServer::bind(store, "127.0.0.1:0", config).unwrap()
    }

    fn no_gc() -> ServerConfig {
        ServerConfig {
            gc_interval: None,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn server_serves_get_put_stats_gc() {
        let dir = temp_dir("serve");
        let server = serve_dir(&dir, no_gc());
        let client = RemoteStore::new(server.addr().to_string());
        assert_eq!(client.load("runs", "k"), None, "cold daemon misses");
        client.save("runs", "k", "value 1 2 3");
        assert_eq!(client.load("runs", "k").as_deref(), Some("value 1 2 3"));
        // Overwrite leaves dead bytes; GC compacts them; the value
        // survives byte-for-byte.
        client.save("runs", "k", "value 4 5 6");
        let stats = client.stats().unwrap();
        assert_eq!(stats.runs, 1);
        assert!(stats.file_bytes > stats.live_bytes);
        assert!(stats.active_connections >= 1);
        let report = client.gc().unwrap();
        assert!(report.dead_bytes_dropped > 0);
        assert_eq!(client.load("runs", "k").as_deref(), Some("value 4 5 6"));
        assert_eq!(client.remote_hits(), 2);
        assert_eq!(client.remote_misses(), 1);
        assert_eq!(client.namespace_records("runs"), 1);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn batched_mget_mput_round_trip_and_count() {
        let dir = temp_dir("batch");
        let server = serve_dir(&dir, no_gc());
        let client = RemoteStore::new(server.addr().to_string());
        let items: Vec<(String, String, String)> = (0..20)
            .map(|i| ("runs".to_string(), format!("key {i}"), format!("value {i}")))
            .collect();
        client.save_many(&items);
        let probes: Vec<(String, String)> = (0..25)
            .map(|i| ("runs".to_string(), format!("key {i}")))
            .collect();
        let got = client.load_many(&probes);
        assert_eq!(got.len(), 25);
        for (i, slot) in got.iter().enumerate() {
            if i < 20 {
                assert_eq!(slot.as_deref(), Some(format!("value {i}").as_str()));
            } else {
                assert_eq!(slot.as_deref(), None);
            }
        }
        let stats = client.stats().unwrap();
        assert_eq!(stats.batched_keys, 45, "20 MPUT keys + 25 MGET keys");
        assert_eq!(stats.max_batch, 25);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn pipelined_requests_reply_in_order_on_one_connection() {
        let dir = temp_dir("pipeline");
        let server = serve_dir(&dir, no_gc());
        // Hand-rolled client: write N requests before reading anything.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut blob = Vec::new();
        for i in 0..50 {
            let req = Request::Put {
                ns: "runs".into(),
                key: format!("k{i}"),
                value: format!("v{i}"),
            };
            blob.extend_from_slice(&encode_frame(&req.encode()));
        }
        for i in 0..50 {
            let req = Request::Get {
                ns: "runs".into(),
                key: format!("k{i}"),
            };
            blob.extend_from_slice(&encode_frame(&req.encode()));
        }
        stream.write_all(&blob).unwrap();
        let mut reader = FrameReader::new();
        for _ in 0..50 {
            let reply = reader.read_frame(&mut stream).unwrap().unwrap();
            let WirePayload::Text(text) = reply else {
                panic!("text request must draw a text reply")
            };
            assert_eq!(Response::decode(&text), Ok(Response::Done));
        }
        for i in 0..50 {
            let reply = reader.read_frame(&mut stream).unwrap().unwrap();
            let WirePayload::Text(text) = reply else {
                panic!("text request must draw a text reply")
            };
            assert_eq!(
                Response::decode(&text),
                Ok(Response::Hit {
                    value: format!("v{i}")
                }),
                "pipelined replies must arrive in request order"
            );
        }
        let client = RemoteStore::new(server.addr().to_string());
        assert!(client.stats().unwrap().pipeline_hwm >= 1);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_grant_busy_publish_wait_cycle() {
        let dir = temp_dir("claim");
        let server = serve_dir(&dir, no_gc());
        let a = RemoteStore::new(server.addr().to_string());
        let b = RemoteStore::new(server.addr().to_string());
        // A claims the cold key; B's claim is busy.
        assert_eq!(
            a.claim("runs", "cold", Duration::from_secs(5)),
            crate::store::ClaimOutcome::Granted
        );
        assert_eq!(
            b.claim("runs", "cold", Duration::from_secs(5)),
            crate::store::ClaimOutcome::Busy
        );
        // Re-claim by the owner extends, still granted.
        assert_eq!(
            a.claim("runs", "cold", Duration::from_secs(5)),
            crate::store::ClaimOutcome::Granted
        );
        // B waits on a helper thread; A publishes; B gets the value.
        let waiter = {
            let addr = server.addr().to_string();
            thread::spawn(move || {
                let b2 = RemoteStore::new(addr);
                b2.wait_for("runs", "cold", Duration::from_secs(10))
            })
        };
        thread::sleep(Duration::from_millis(100));
        a.save("runs", "cold", "published value");
        assert_eq!(waiter.join().unwrap().as_deref(), Some("published value"));
        // A later claim on the now-stored key is an immediate hit.
        assert_eq!(
            b.claim("runs", "cold", Duration::from_secs(5)),
            crate::store::ClaimOutcome::Hit("published value".into())
        );
        let stats = a.stats().unwrap();
        assert_eq!(stats.claims_granted, 1);
        assert_eq!(stats.claims_expired, 0);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_claim_holder_releases_on_disconnect() {
        let dir = temp_dir("claim-drop");
        let server = serve_dir(&dir, no_gc());
        let holder = RemoteStore::new(server.addr().to_string());
        assert_eq!(
            holder.claim("runs", "cold", Duration::from_secs(600)),
            crate::store::ClaimOutcome::Granted
        );
        let waiter = {
            let addr = server.addr().to_string();
            thread::spawn(move || {
                let w = RemoteStore::new(addr);
                w.wait_for("runs", "cold", Duration::from_secs(30))
            })
        };
        thread::sleep(Duration::from_millis(100));
        drop(holder); // connection drops → claim released unpublished
        assert_eq!(
            waiter.join().unwrap(),
            None,
            "waiter degrades to a miss and computes locally"
        );
        let probe = RemoteStore::new(server.addr().to_string());
        let stats = probe.stats().unwrap();
        assert_eq!(stats.claims_expired, 1);
        // The key is claimable again.
        assert_eq!(
            probe.claim("runs", "cold", Duration::from_secs(5)),
            crate::store::ClaimOutcome::Granted
        );
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_claim_lease_degrades_waiters_to_miss() {
        let dir = temp_dir("claim-lease");
        let server = serve_dir(&dir, no_gc());
        let holder = RemoteStore::new(server.addr().to_string());
        assert_eq!(
            holder.claim("runs", "cold", Duration::from_millis(150)),
            crate::store::ClaimOutcome::Granted
        );
        // Holder stays *connected* but never publishes: only the lease
        // can release the waiters.
        let w = RemoteStore::new(server.addr().to_string());
        let t0 = Instant::now();
        assert_eq!(w.wait_for("runs", "cold", Duration::from_secs(30)), None);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "lease expiry must release the waiter, not the 30 s timeout"
        );
        let stats = w.stats().unwrap();
        assert!(stats.claims_expired >= 1);
        drop(holder);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hello_negotiates_binary_and_binary_frames_serve() {
        let dir = temp_dir("hello");
        let server = serve_dir(&dir, no_gc());
        let client = RemoteStore::new(server.addr().to_string());
        client.save("runs", "k", "v over the negotiated wire");
        assert_eq!(
            client.load("runs", "k").as_deref(),
            Some("v over the negotiated wire")
        );
        assert_eq!(
            client.wire_format(),
            Some(WireFormat::Binary),
            "a v2 server must negotiate the binary framing"
        );
        // A text-only client against the same daemon sees the same data.
        let text_client = RemoteStore::new_text_only(server.addr().to_string());
        assert_eq!(
            text_client.load("runs", "k").as_deref(),
            Some("v over the negotiated wire")
        );
        assert_eq!(text_client.wire_format(), Some(WireFormat::Text));
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stalled_mid_frame_connection_is_closed_but_idle_survives() {
        let dir = temp_dir("stall");
        let server = serve_dir(
            &dir,
            ServerConfig {
                read_timeout: Duration::from_millis(200),
                ..no_gc()
            },
        );
        // Idle at a frame boundary: stays connected well past the
        // timeout.
        let mut idle = TcpStream::connect(server.addr()).unwrap();
        // Stalled mid-frame: closed once the progress timeout passes.
        let mut stalled = TcpStream::connect(server.addr()).unwrap();
        stalled.write_all(b"cfr1 10\npart").unwrap(); // incomplete frame
        thread::sleep(Duration::from_millis(600));
        let mut probe = [0u8; 8];
        stalled
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        assert!(
            matches!(stalled.read(&mut probe), Ok(0) | Err(_)),
            "stalled connection must be dropped by the daemon"
        );
        idle.write_all(&encode_frame(&Request::Stats.encode()))
            .unwrap();
        let mut reader = FrameReader::new();
        let reply = reader.read_frame(&mut idle).unwrap().unwrap();
        let WirePayload::Text(text) = reply else {
            panic!("text request must draw a text reply")
        };
        assert!(
            matches!(Response::decode(&text), Ok(Response::Stats(_))),
            "idle connection must survive the progress timeout"
        );
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_daemon_degrades_to_misses_with_backoff() {
        // Nothing listens here (bind-then-drop reserves a dead port).
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let client = RemoteStore::new(format!("127.0.0.1:{port}"));
        assert_eq!(client.load("runs", "k"), None);
        client.save("runs", "k", "v"); // must not panic or block long
        assert_eq!(client.load("runs", "k"), None);
        assert!(client.write_errors() >= 1);
        assert!(client.stats().is_none());
        assert_eq!(client.namespace_records("runs"), 0);
        // Batched surfaces degrade identically.
        assert_eq!(client.load_many(&[("runs".into(), "k".into())]), vec![None]);
        assert_eq!(
            client.claim("runs", "k", Duration::from_secs(1)),
            crate::store::ClaimOutcome::Unsupported
        );
    }

    #[test]
    fn shutdown_request_stops_the_daemon() {
        let dir = temp_dir("shutdown");
        let server = serve_dir(&dir, ServerConfig::default());
        let addr = server.addr().to_string();
        let client = RemoteStore::new(addr.clone());
        client.save("runs", "k", "v");
        assert!(client.shutdown());
        server.wait(); // returns because the client asked for shutdown
                       // The daemon is gone; a fresh client degrades to misses.
        let after = RemoteStore::new(addr);
        assert_eq!(after.load("runs", "k"), None);
        // ... but the record survives on disk for the next daemon.
        let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        assert_eq!(
            ArtifactStore::load(&reopened, "runs", "k").as_deref(),
            Some("v")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_bytes_get_an_error_reply_and_the_daemon_survives() {
        let dir = temp_dir("garbage");
        let server = serve_dir(&dir, no_gc());
        // Raw garbage: the reply must be an err frame, then disconnect.
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = FrameReader::new();
        let reply = reader.read_frame(&mut raw).unwrap().unwrap();
        let WirePayload::Text(text) = reply else {
            panic!("garbage draws a text error frame")
        };
        assert!(matches!(
            Response::decode(&text),
            Ok(Response::Error { .. })
        ));
        drop(raw);
        // A malformed-but-framed request keeps the connection alive.
        let mut framed = TcpStream::connect(server.addr()).unwrap();
        framed
            .write_all(&encode_frame("frobnicate the store"))
            .unwrap();
        let mut reader = FrameReader::new();
        let reply = reader.read_frame(&mut framed).unwrap().unwrap();
        let WirePayload::Text(text) = reply else {
            panic!("text framing draws a text reply")
        };
        assert!(matches!(
            Response::decode(&text),
            Ok(Response::Error { .. })
        ));
        framed
            .write_all(&encode_frame(&Request::Stats.encode()))
            .unwrap();
        let reply = reader.read_frame(&mut framed).unwrap().unwrap();
        let WirePayload::Text(text) = reply else {
            panic!("text framing draws a text reply")
        };
        assert!(matches!(Response::decode(&text), Ok(Response::Stats(_))));
        // And the daemon still serves fresh connections.
        let client = RemoteStore::new(server.addr().to_string());
        client.save("runs", "k", "v");
        assert_eq!(client.load("runs", "k").as_deref(), Some("v"));
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layered_store_prefers_remote_and_falls_back_to_local() {
        let daemon_dir = temp_dir("layer-daemon");
        let local_dir = temp_dir("layer-local");
        let local = Arc::new(ArtifactStore::open(&local_dir, GcPolicy::unbounded()).unwrap());
        ArtifactStore::save(&local, "runs", "legacy", "from the pre-daemon store");

        let server = serve_dir(&daemon_dir, ServerConfig::default());
        let layered = LayeredStore::new(
            RemoteStore::new(server.addr().to_string()),
            Some(Arc::clone(&local)),
        );
        // Saves go to the daemon, not the local layer.
        layered.save("runs", "fresh", "daemon copy");
        assert_eq!(ArtifactStore::load(&local, "runs", "fresh"), None);
        assert_eq!(
            layered.load("runs", "fresh").as_deref(),
            Some("daemon copy")
        );
        // A remote miss falls back to the local layer — and backfills
        // nothing into the daemon.
        assert_eq!(
            layered.load("runs", "legacy").as_deref(),
            Some("from the pre-daemon store")
        );
        assert_eq!(server.store().load("runs", "legacy"), None);
        assert!(layered.describe().starts_with("tcp://"));
        // Batched loads stitch remote hits and local fills together.
        let got = layered.load_many(&[
            ("runs".into(), "fresh".into()),
            ("runs".into(), "legacy".into()),
            ("runs".into(), "absent".into()),
        ]);
        assert_eq!(
            got,
            vec![
                Some("daemon copy".into()),
                Some("from the pre-daemon store".into()),
                None
            ]
        );

        // Daemon gone: loads of daemon-only records miss, saves land in
        // the local fallback, nothing panics.
        server.shutdown();
        assert_eq!(layered.load("runs", "fresh"), None, "daemon-only record");
        layered.save("runs", "degraded", "local copy");
        assert_eq!(
            ArtifactStore::load(&local, "runs", "degraded").as_deref(),
            Some("local copy")
        );
        assert_eq!(
            layered.load("runs", "degraded").as_deref(),
            Some("local copy")
        );
        let _ = fs::remove_dir_all(&daemon_dir);
        let _ = fs::remove_dir_all(&local_dir);
    }

    #[test]
    fn background_gc_compacts_without_dropping_fresh_appends() {
        let dir = temp_dir("bg-gc");
        let server = serve_dir(
            &dir,
            ServerConfig {
                gc_interval: Some(Duration::from_millis(1)),
                ..ServerConfig::default()
            },
        );
        let client = RemoteStore::new(server.addr().to_string());
        // Constant overwrites generate dead bytes for the 1 ms GC to
        // compact while we keep appending; nothing may be lost.
        for i in 0..200 {
            client.save("runs", "hot", &format!("version {i}"));
            client.save("runs", &format!("cold-{i}"), "stable value");
        }
        assert_eq!(client.load("runs", "hot").as_deref(), Some("version 199"));
        for i in 0..200 {
            assert_eq!(
                client.load("runs", &format!("cold-{i}")).as_deref(),
                Some("stable value"),
                "cold-{i} must survive background compaction"
            );
        }
        server.shutdown();
        // The records survive on disk for a fresh scan, too.
        let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        assert_eq!(
            ArtifactStore::load(&reopened, "runs", "hot").as_deref(),
            Some("version 199")
        );
        assert_eq!(ArtifactStore::namespace_records(&reopened, "runs"), 201);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drain_answers_inflight_frames_and_fails_parked_waiters() {
        let dir = temp_dir("drain");
        let server = serve_dir(&dir, no_gc());
        // A holder claims the cold key so the waiter below parks.
        let holder = RemoteStore::new(server.addr().to_string());
        assert_eq!(
            holder.claim("runs", "cold", Duration::from_secs(600)),
            crate::store::ClaimOutcome::Granted
        );
        let waiter = {
            let addr = server.addr().to_string();
            thread::spawn(move || {
                let w = RemoteStore::new(addr);
                let t0 = Instant::now();
                (
                    w.wait_for("runs", "cold", Duration::from_secs(30)),
                    t0.elapsed(),
                )
            })
        };
        thread::sleep(Duration::from_millis(150)); // waiter is parked
                                                   // In-flight work: a pipelined PUT + GET written right before the
                                                   // drain begins must still be answered.
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut blob = Vec::new();
        blob.extend_from_slice(&encode_frame(
            &Request::Put {
                ns: "runs".into(),
                key: "inflight".into(),
                value: "survives the drain".into(),
            }
            .encode(),
        ));
        blob.extend_from_slice(&encode_frame(
            &Request::Get {
                ns: "runs".into(),
                key: "inflight".into(),
            }
            .encode(),
        ));
        stream.write_all(&blob).unwrap();
        thread::sleep(Duration::from_millis(100)); // conn adopted, frames queued
        server.drain();
        assert!(server.draining());
        // The in-flight frames drew real replies, not a slammed door.
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut reader = FrameReader::new();
        let reply = reader.read_frame(&mut stream).unwrap().unwrap();
        let WirePayload::Text(text) = reply else {
            panic!("text request must draw a text reply")
        };
        assert_eq!(Response::decode(&text), Ok(Response::Done));
        let reply = reader.read_frame(&mut stream).unwrap().unwrap();
        let WirePayload::Text(text) = reply else {
            panic!("text request must draw a text reply")
        };
        assert_eq!(
            Response::decode(&text),
            Ok(Response::Hit {
                value: "survives the drain".into()
            })
        );
        // The parked waiter was failed fast with an err reply — it did
        // not ride out its 30 s park.
        let (got, waited) = waiter.join().unwrap();
        assert_eq!(got, None, "drain fails parked waiters to local compute");
        assert!(
            waited < Duration::from_secs(5),
            "drain must release the waiter promptly, waited {waited:?}"
        );
        drop(holder);
        server.shutdown();
        // The in-flight PUT is durable: a fresh scan still sees it.
        let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        assert_eq!(
            ArtifactStore::load(&reopened, "runs", "inflight").as_deref(),
            Some("survives the drain")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn idle_tick_sweeps_expired_leases_without_traffic() {
        let dir = temp_dir("idle-sweep");
        let server = serve_dir(&dir, no_gc());
        let holder = RemoteStore::new(server.addr().to_string());
        assert_eq!(
            holder.claim("runs", "cold", Duration::from_millis(150)),
            crate::store::ClaimOutcome::Granted
        );
        // Zero traffic while the lease lapses: only the worker's idle
        // poll tick can expire it. The holder stays connected, so the
        // disconnect path cannot release the claim either.
        thread::sleep(Duration::from_millis(500));
        let probe = RemoteStore::new(server.addr().to_string());
        let stats = probe.stats().unwrap();
        assert!(
            stats.claims_expired >= 1,
            "idle tick must have swept the lapsed lease before any request arrived"
        );
        assert_eq!(
            probe.claim("runs", "cold", Duration::from_secs(5)),
            crate::store::ClaimOutcome::Granted,
            "the key is claimable again"
        );
        drop(holder);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn large_batches_round_trip_across_alternating_chunks() {
        let dir = temp_dir("alt-chunks");
        let server = serve_dir(&dir, no_gc());
        let client = RemoteStore::new(server.addr().to_string());
        // 300 items span three chunks (128/127/45) — no two adjacent
        // chunks share a length, and every value must round trip.
        let items: Vec<(String, String, String)> = (0..300)
            .map(|i| ("runs".to_string(), format!("key {i}"), format!("value {i}")))
            .collect();
        assert!(client.try_save_many(&items));
        let probes: Vec<(String, String)> = (0..300)
            .map(|i| ("runs".to_string(), format!("key {i}")))
            .collect();
        let got = client.load_many(&probes);
        assert_eq!(got.len(), 300);
        for (i, slot) in got.iter().enumerate() {
            assert_eq!(
                slot.as_deref(),
                Some(format!("value {i}").as_str()),
                "key {i} must survive the chunked round trip"
            );
        }
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_probe_reports_occupancy_and_draining() {
        let dir = temp_dir("health");
        let server = serve_dir(&dir, no_gc());
        let client = RemoteStore::new(server.addr().to_string());
        client.save("runs", "k", "one live record");
        let health = client.health().unwrap();
        assert!(!health.draining);
        assert_eq!(health.live_records, 1);
        assert_eq!(health.shards_occupied, 1);
        assert_eq!(health.shard_count, SHARD_COUNT);
        assert!(health.file_bytes > 0);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }
}
