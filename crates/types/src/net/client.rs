//! The store clients: [`RemoteStore`] (TCP, reconnect-with-backoff,
//! pipelined batches, claim/wait) and [`LayeredStore`] (remote over a
//! machine-local fallback).

use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::store::{
    ArtifactStore, ClaimOutcome, GcReport, StoreBackend, NS_PROGRAMS, NS_RUNS, NS_TRACES, NS_WALKS,
};

use super::frame::{FrameReader, WireFormat};
use super::proto::{HealthReport, Request, Response, StoreStats};
use super::{FEATURE_BINARY, PROTOCOL_VERSION};
use crate::chaos::SplitMix64;
use crate::record::fnv1a64;

/// Read/write timeout on client sockets: a stalled daemon degrades to
/// misses rather than hanging an experiment.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Timeout for establishing a connection.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// First reconnect delay after a failure; doubles per consecutive
/// failure up to [`BACKOFF_MAX`].
const BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Longest reconnect delay.
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Keys per `MGET`/`MPUT` frame. Batches larger than this are split
/// into several frames — still **pipelined into one exchange** (one
/// round trip), but each frame stays comfortably under the frame-size
/// guard even with multi-KB record values.
const BATCH_CHUNK: usize = 128;

/// Splits `items` into chunks of alternating [`BATCH_CHUNK`] /
/// [`BATCH_CHUNK`]` - 1` length, so two adjacent chunks never share a
/// length. The protocol has no request IDs; if a duplicated frame ever
/// desynchronized the reply stream by one, a shifted `MGOT` reply
/// would carry its *neighbour's* slot count — which then fails the
/// per-chunk length check instead of silently filling the wrong keys.
fn alternating_chunks<T>(items: &[T]) -> Vec<&[T]> {
    let mut out = Vec::new();
    let mut rest = items;
    let mut size = BATCH_CHUNK;
    while !rest.is_empty() {
        let take = size.min(rest.len());
        let (head, tail) = rest.split_at(take);
        out.push(head);
        rest = tail;
        size = if size == BATCH_CHUNK {
            BATCH_CHUNK - 1
        } else {
            BATCH_CHUNK
        };
    }
    out
}

/// Whether `resp` is a reply kind `req` can legally draw. An `err`
/// reply is always legal (any request may fail server-side); anything
/// else must match the request's verb, so a desynchronized reply
/// stream (duplicated or dropped frames between here and the daemon)
/// poisons the exchange instead of being misread as data.
fn reply_matches(req: &Request, resp: &Response) -> bool {
    if matches!(resp, Response::Error { .. }) {
        return true;
    }
    match req {
        Request::Get { .. } | Request::Wait { .. } => {
            matches!(resp, Response::Hit { .. } | Response::Miss)
        }
        Request::Put { .. } | Request::MPut { .. } | Request::Shutdown => {
            matches!(resp, Response::Done)
        }
        Request::MGet { .. } => matches!(resp, Response::MGot { .. }),
        Request::Claim { .. } => {
            matches!(
                resp,
                Response::Hit { .. } | Response::Granted | Response::Busy
            )
        }
        Request::Hello { .. } => matches!(resp, Response::Hello { .. }),
        Request::Stats => matches!(resp, Response::Stats(_)),
        Request::Health => matches!(resp, Response::Health(_)),
        Request::Gc => matches!(resp, Response::Gc(_)),
    }
}

/// Whether replaying `req` after an indeterminate failure is safe.
/// Reads and probes are; anything that mutates daemon state (`PUT`,
/// `CLAIM`, `GC`, `SHUTDOWN`) or parks (`WAIT`) is not — a lost ack
/// does not prove the daemon never acted on the frame.
fn idempotent(req: &Request) -> bool {
    matches!(
        req,
        Request::Get { .. }
            | Request::MGet { .. }
            | Request::Stats
            | Request::Health
            | Request::Hello { .. }
    )
}

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
    /// The frame format negotiated via `HELLO` on connect.
    format: WireFormat,
}

#[derive(Debug, Default)]
struct ClientState {
    conn: Option<Conn>,
    consecutive_failures: u32,
    retry_at: Option<Instant>,
}

/// A [`StoreBackend`] over a TCP connection to a
/// [`StoreServer`](super::StoreServer).
///
/// Failure semantics — the store's "failure = cold run" contract, over
/// the network:
///
/// - every I/O failure (connect refused, reset, timeout, malformed
///   reply) degrades the operation to a **miss** (loads), a counted
///   best-effort failure (saves), or `Unsupported` (claims); nothing
///   propagates;
/// - after a failure the client **backs off** (50 ms doubling to 2 s):
///   operations inside the backoff window return misses immediately
///   instead of hammering a dead daemon, and the next operation past the
///   window reconnects transparently.
///
/// On connect the client sends `HELLO` and upgrades to binary framing
/// when the server lists the `binary` feature; any hello failure (e.g. a
/// protocol-v1 daemon answering `err`) falls back to text frames, so old
/// daemons keep working.
///
/// One connection is shared (mutex-serialized) by all threads of the
/// process. Batched operations ([`RemoteStore::load_many`],
/// [`RemoteStore::save_many`]) pipeline all their frames into a single
/// exchange — one round trip for an entire plan's keys — which is why
/// serialization is not the bottleneck. The exception is
/// [`RemoteStore::wait_for`], which parks server-side: it uses a
/// dedicated throwaway connection so a parked wait never blocks the
/// shared one.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    state: Mutex<ClientState>,
    allow_binary: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    put_errors: AtomicU64,
    round_trips: AtomicU64,
    requests_sent: AtomicU64,
}

impl RemoteStore {
    /// A client of the daemon at `addr` (`host:port`). No connection is
    /// attempted until the first operation.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self::with_format(addr, true)
    }

    /// A client that never upgrades to binary framing — every frame on
    /// the wire is text. Functionally identical; exists for the
    /// text-vs-binary comparison in `bench_store` and for debugging with
    /// a line-oriented capture.
    #[must_use]
    pub fn new_text_only(addr: impl Into<String>) -> Self {
        Self::with_format(addr, false)
    }

    fn with_format(addr: impl Into<String>, allow_binary: bool) -> Self {
        Self {
            addr: addr.into(),
            state: Mutex::new(ClientState::default()),
            allow_binary,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            put_errors: AtomicU64::new(0),
            round_trips: AtomicU64::new(0),
            requests_sent: AtomicU64::new(0),
        }
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Loads served by the daemon.
    #[must_use]
    pub fn remote_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads the daemon missed on — including every load made while the
    /// daemon was unreachable.
    #[must_use]
    pub fn remote_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Completed request/reply exchanges — network round trips. A
    /// pipelined batch of any size counts **one**; this against
    /// [`RemoteStore::requests_sent`] is the batching win `bench_store`
    /// measures.
    #[must_use]
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Request frames written (each `MGET`/`MPUT` chunk counts one).
    #[must_use]
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent.load(Ordering::Relaxed)
    }

    /// The frame format the current connection negotiated (`None` while
    /// disconnected).
    #[must_use]
    pub fn wire_format(&self) -> Option<WireFormat> {
        self.state
            .lock()
            .expect("remote store poisoned")
            .conn
            .as_ref()
            .map(|c| c.format)
    }

    fn connect_raw(addr: &str, read_timeout: Duration) -> io::Result<TcpStream> {
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&sock, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(stream)
    }

    fn connect(addr: &str, allow_binary: bool) -> io::Result<Conn> {
        let mut stream = Self::connect_raw(addr, CLIENT_IO_TIMEOUT)?;
        let mut reader = FrameReader::new();
        // Negotiate. The hello itself is text — every peer can at least
        // reject it legibly. A v1 daemon answers `err`, which simply
        // pins the connection to text frames.
        let mut format = WireFormat::Text;
        stream.write_all(
            &Request::Hello {
                version: PROTOCOL_VERSION,
            }
            .to_frame(WireFormat::Text),
        )?;
        let payload = reader.read_frame(&mut stream)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
        })?;
        if let Ok(Response::Hello { features, .. }) = Response::from_payload(&payload) {
            if allow_binary && features.iter().any(|f| f == FEATURE_BINARY) {
                format = WireFormat::Binary;
            }
        }
        Ok(Conn {
            stream,
            reader,
            format,
        })
    }

    fn note_failure(&self, state: &mut ClientState) {
        state.conn = None;
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        let shift = state.consecutive_failures.saturating_sub(1).min(8);
        let base = BACKOFF_BASE
            .checked_mul(1 << shift)
            .map_or(BACKOFF_MAX, |d| d.min(BACKOFF_MAX));
        // Half fixed, half jittered, so a fleet of clients that lost the
        // same daemon at the same instant does not reconnect in
        // lockstep. The jitter is drawn from a PRNG seeded by (address,
        // failure count) — deterministic, so runs stay reproducible.
        let seed = fnv1a64(&self.addr).wrapping_add(u64::from(state.consecutive_failures));
        let frac = SplitMix64::new(seed).next_f64();
        let delay = base.div_f64(2.0).mul_f64(1.0 + frac).min(BACKOFF_MAX);
        state.retry_at = Some(Instant::now() + delay);
    }

    /// Writes every request frame in one blob, then reads exactly one
    /// reply per request, in order, validating each reply's kind
    /// against its request. The whole exchange shares one deadline:
    /// the read timeout shrinks as replies arrive, so a daemon that
    /// trickles one frame per timeout window cannot stretch a batched
    /// exchange to `N x CLIENT_IO_TIMEOUT`.
    fn run_exchange(conn: &mut Conn, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let deadline = Instant::now() + CLIENT_IO_TIMEOUT;
        // Pipelining: all requests go out in one write; the replies
        // stream back in order. One round trip regardless of batch
        // size.
        let mut blob = Vec::new();
        for req in reqs {
            blob.extend_from_slice(&req.to_frame(conn.format));
        }
        conn.stream.write_all(&blob)?;
        let mut replies = Vec::with_capacity(reqs.len());
        for req in reqs {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .filter(|d| !d.is_zero())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::TimedOut, "exchange deadline exhausted")
                })?;
            conn.stream.set_read_timeout(Some(remaining))?;
            let payload = conn.reader.read_frame(&mut conn.stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
            })?;
            let response = Response::from_payload(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            if !reply_matches(req, &response) {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "reply kind does not match the request",
                ));
            }
            replies.push(response);
        }
        Ok(replies)
    }

    /// One pipelined exchange: writes every request frame, then reads
    /// exactly one reply per request, in order. `None` covers every
    /// failure: not connected and inside the backoff window,
    /// connect/write/read failure, an undecodable reply, or a reply
    /// whose kind does not match its request.
    ///
    /// A batch made up entirely of idempotent requests (reads and
    /// probes) is retried once on a fresh connection before the
    /// failure counts against the backoff; a batch containing any
    /// mutation or park is never replayed — a lost ack does not prove
    /// the daemon never applied the frame.
    #[must_use]
    pub fn exchange_many(&self, reqs: &[Request]) -> Option<Vec<Response>> {
        if reqs.is_empty() {
            return Some(Vec::new());
        }
        let mut state = self.state.lock().expect("remote store poisoned");
        // A reply stream that over-delivered (more frames than the last
        // exchange requested) leaves bytes parked in the frame buffer;
        // pairing them with *this* exchange's requests would misfile
        // every reply by one. Poisoned — reconnect.
        if state
            .conn
            .as_ref()
            .is_some_and(|c| c.reader.buffered_bytes() > 0)
        {
            state.conn = None;
        }
        let mut attempts = if reqs.iter().all(idempotent) { 2 } else { 1 };
        loop {
            if state.conn.is_none() {
                if let Some(at) = state.retry_at {
                    if Instant::now() < at {
                        return None; // back off: degrade to a miss immediately
                    }
                }
                match Self::connect(&self.addr, self.allow_binary) {
                    Ok(conn) => state.conn = Some(conn),
                    Err(_) => {
                        self.note_failure(&mut state);
                        return None;
                    }
                }
            }
            let conn = state.conn.as_mut().expect("connected above");
            match Self::run_exchange(conn, reqs) {
                Ok(replies) => {
                    // Only a completed exchange proves the daemon healthy.
                    // Resetting on connect alone would pin the backoff at its
                    // base against a daemon that accepts (the kernel
                    // completes handshakes from the backlog) but never
                    // replies — each request would burn the full I/O timeout
                    // forever instead of backing off.
                    state.consecutive_failures = 0;
                    state.retry_at = None;
                    self.round_trips.fetch_add(1, Ordering::Relaxed);
                    self.requests_sent
                        .fetch_add(reqs.len() as u64, Ordering::Relaxed);
                    return Some(replies);
                }
                Err(_) => {
                    // The connection is indeterminate either way: drop it.
                    state.conn = None;
                    attempts -= 1;
                    if attempts == 0 {
                        self.note_failure(&mut state);
                        return None;
                    }
                }
            }
        }
    }

    /// One request/reply exchange; `None` on any failure.
    #[must_use]
    pub fn request(&self, req: &Request) -> Option<Response> {
        self.exchange_many(std::slice::from_ref(req))
            .and_then(|mut replies| replies.pop())
    }

    /// Saves over the wire; `true` iff the daemon acknowledged.
    pub fn try_save(&self, ns: &str, key: &str, value: &str) -> bool {
        let acked = matches!(
            self.request(&Request::Put {
                ns: ns.to_string(),
                key: key.to_string(),
                value: value.to_string(),
            }),
            Some(Response::Done)
        );
        if !acked {
            self.put_errors.fetch_add(1, Ordering::Relaxed);
        }
        acked
    }

    /// Batched save; `true` iff the daemon acknowledged every chunk.
    pub fn try_save_many(&self, items: &[(String, String, String)]) -> bool {
        if items.is_empty() {
            return true;
        }
        let reqs: Vec<Request> = alternating_chunks(items)
            .into_iter()
            .map(|chunk| Request::MPut {
                items: chunk.to_vec(),
            })
            .collect();
        let acked = self
            .exchange_many(&reqs)
            .is_some_and(|replies| replies.iter().all(|r| matches!(r, Response::Done)));
        if !acked {
            self.put_errors.fetch_add(1, Ordering::Relaxed);
        }
        acked
    }

    /// The daemon's occupancy report, if reachable.
    #[must_use]
    pub fn stats(&self) -> Option<StoreStats> {
        match self.request(&Request::Stats) {
            Some(Response::Stats(s)) => Some(s),
            _ => None,
        }
    }

    /// The daemon's liveness report, if reachable. Cheaper than
    /// [`Self::stats`] and safe to poll.
    #[must_use]
    pub fn health(&self) -> Option<HealthReport> {
        match self.request(&Request::Health) {
            Some(Response::Health(h)) => Some(h),
            _ => None,
        }
    }

    /// Asks the daemon for a GC pass now; its report, if reachable.
    #[must_use]
    pub fn gc(&self) -> Option<GcReport> {
        match self.request(&Request::Gc) {
            Some(Response::Gc(r)) => Some(r),
            _ => None,
        }
    }

    /// Asks the daemon to exit; `true` iff it acknowledged.
    pub fn shutdown(&self) -> bool {
        matches!(self.request(&Request::Shutdown), Some(Response::Done))
    }
}

impl StoreBackend for RemoteStore {
    fn load(&self, ns: &str, key: &str) -> Option<String> {
        let got = match self.request(&Request::Get {
            ns: ns.to_string(),
            key: key.to_string(),
        }) {
            Some(Response::Hit { value }) => Some(value),
            _ => None, // miss, error reply, or daemon unreachable
        };
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    fn save(&self, ns: &str, key: &str, value: &str) {
        let _ = self.try_save(ns, key, value);
    }

    fn load_many(&self, items: &[(String, String)]) -> Vec<Option<String>> {
        if items.is_empty() {
            return Vec::new();
        }
        // Several MGET chunks, one pipelined exchange: still one round
        // trip for the whole plan.
        let chunks = alternating_chunks(items);
        let reqs: Vec<Request> = chunks
            .iter()
            .map(|chunk| Request::MGet {
                items: chunk.to_vec(),
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        if let Some(replies) = self.exchange_many(&reqs) {
            for (reply, chunk) in replies.into_iter().zip(&chunks) {
                match reply {
                    Response::MGot { values } if values.len() == chunk.len() => {
                        out.extend(values);
                    }
                    _ => out.extend(std::iter::repeat_with(|| None).take(chunk.len())),
                }
            }
        }
        // A lost exchange (or short reply list) degrades the remainder
        // to misses.
        out.resize_with(items.len(), || None);
        let hit_count = out.iter().filter(|v| v.is_some()).count() as u64;
        self.hits.fetch_add(hit_count, Ordering::Relaxed);
        self.misses
            .fetch_add(items.len() as u64 - hit_count, Ordering::Relaxed);
        out
    }

    fn save_many(&self, items: &[(String, String, String)]) {
        let _ = self.try_save_many(items);
    }

    fn claim(&self, ns: &str, key: &str, lease: Duration) -> ClaimOutcome {
        let lease_ms = u64::try_from(lease.as_millis()).unwrap_or(u64::MAX);
        match self.request(&Request::Claim {
            ns: ns.to_string(),
            key: key.to_string(),
            lease_ms,
        }) {
            Some(Response::Hit { value }) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ClaimOutcome::Hit(value)
            }
            Some(Response::Granted) => ClaimOutcome::Granted,
            Some(Response::Busy) => ClaimOutcome::Busy,
            // Error reply (e.g. a pre-claim daemon) or unreachable: the
            // caller computes locally — a failure is never more than a
            // miss.
            _ => ClaimOutcome::Unsupported,
        }
    }

    fn wait_for(&self, ns: &str, key: &str, timeout: Duration) -> Option<String> {
        // A parked WAIT would block the shared mutex-serialized
        // connection for every other thread; use a throwaway connection
        // whose read timeout outlives the server-side park.
        let exchange = || -> io::Result<Option<String>> {
            let mut stream =
                Self::connect_raw(&self.addr, timeout.saturating_add(Duration::from_secs(5)))?;
            let timeout_ms = u64::try_from(timeout.as_millis()).unwrap_or(u64::MAX);
            let req = Request::Wait {
                ns: ns.to_string(),
                key: key.to_string(),
                timeout_ms,
            };
            stream.write_all(&req.to_frame(WireFormat::Text))?;
            let mut reader = FrameReader::new();
            let payload = reader.read_frame(&mut stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
            })?;
            match Response::from_payload(&payload) {
                Ok(Response::Hit { value }) => Ok(Some(value)),
                _ => Ok(None),
            }
        };
        exchange().ok().flatten()
    }

    fn write_errors(&self) -> u64 {
        self.put_errors.load(Ordering::Relaxed)
    }

    fn namespace_records(&self, ns: &str) -> usize {
        let Some(stats) = self.stats() else { return 0 };
        let count = match ns {
            NS_RUNS => stats.runs,
            NS_WALKS => stats.walks,
            NS_PROGRAMS => stats.programs,
            NS_TRACES => stats.traces,
            _ => 0,
        };
        usize::try_from(count).unwrap_or(usize::MAX)
    }

    fn describe(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}

/// Remote-first storage with a machine-local fallback.
///
/// - **Load**: the daemon is asked first; a remote miss (or an
///   unreachable daemon) falls back to the local store. A remote hit
///   backfills nothing locally and a local hit pushes nothing to the
///   daemon — the daemon stays the single source of truth, the local
///   layer a read-only legacy of pre-daemon runs plus a degraded-mode
///   spill. Batched loads probe the daemon in one round trip, then fill
///   only the missed slots locally.
/// - **Save**: goes to the daemon; only while the daemon is unreachable
///   does it land in the local store instead, so degraded runs stay warm
///   for the next local process.
/// - **Claim/wait**: daemon-global (that is the point); an unreachable
///   daemon degrades claims to `Unsupported`, i.e. local compute.
#[derive(Debug)]
pub struct LayeredStore {
    remote: RemoteStore,
    local: Option<Arc<ArtifactStore>>,
}

impl LayeredStore {
    /// Stacks `remote` over an optional machine-local fallback.
    #[must_use]
    pub fn new(remote: RemoteStore, local: Option<Arc<ArtifactStore>>) -> Self {
        Self { remote, local }
    }

    /// The remote layer.
    #[must_use]
    pub fn remote(&self) -> &RemoteStore {
        &self.remote
    }

    /// The local fallback layer, if any.
    #[must_use]
    pub fn local(&self) -> Option<&Arc<ArtifactStore>> {
        self.local.as_ref()
    }
}

impl StoreBackend for LayeredStore {
    fn load(&self, ns: &str, key: &str) -> Option<String> {
        if let Some(value) = self.remote.load(ns, key) {
            return Some(value);
        }
        self.local.as_ref().and_then(|l| l.load(ns, key))
    }

    fn save(&self, ns: &str, key: &str, value: &str) {
        if self.remote.try_save(ns, key, value) {
            return;
        }
        if let Some(local) = &self.local {
            local.save(ns, key, value);
        }
    }

    fn load_many(&self, items: &[(String, String)]) -> Vec<Option<String>> {
        let mut out = self.remote.load_many(items);
        if let Some(local) = &self.local {
            for (slot, (ns, key)) in out.iter_mut().zip(items) {
                if slot.is_none() {
                    *slot = local.load(ns, key);
                }
            }
        }
        out
    }

    fn save_many(&self, items: &[(String, String, String)]) {
        if self.remote.try_save_many(items) {
            return;
        }
        if let Some(local) = &self.local {
            for (ns, key, value) in items {
                local.save(ns, key, value);
            }
        }
    }

    fn claim(&self, ns: &str, key: &str, lease: Duration) -> ClaimOutcome {
        match self.remote.claim(ns, key, lease) {
            // The daemon missed but the local layer may still be warm —
            // a legacy local hit must stay a hit, not a recompute.
            ClaimOutcome::Granted => match self.local.as_ref().and_then(|l| l.load(ns, key)) {
                Some(value) => ClaimOutcome::Hit(value),
                None => ClaimOutcome::Granted,
            },
            outcome => outcome,
        }
    }

    fn wait_for(&self, ns: &str, key: &str, timeout: Duration) -> Option<String> {
        self.remote.wait_for(ns, key, timeout)
    }

    fn write_errors(&self) -> u64 {
        self.remote.write_errors()
            + self
                .local
                .as_ref()
                .map_or(0, |l| ArtifactStore::write_errors(l))
    }

    fn namespace_records(&self, ns: &str) -> usize {
        let remote = self.remote.namespace_records(ns);
        if remote > 0 {
            return remote;
        }
        self.local
            .as_ref()
            .map_or(0, |l| ArtifactStore::namespace_records(l, ns))
    }

    fn describe(&self) -> String {
        match &self.local {
            Some(local) => format!("tcp://{} + {}", self.remote.addr(), local.dir().display()),
            None => self.remote.describe(),
        }
    }
}
