//! A stable, hand-rolled text codec for persisted records.
//!
//! The vendored `serde` is a no-op facade (vendor/README.md), so anything
//! that must survive a process boundary — the persistent run store — is
//! serialized through these explicit `to_record` / `from_record` codecs
//! instead. The format is deliberately primitive and therefore stable:
//!
//! - a record is a flat sequence of whitespace-separated tokens,
//! - every struct writes a leading *tag* token naming its type, so a
//!   truncated or mismatched stream fails fast instead of mis-parsing,
//! - integers are decimal, floats are their exact IEEE-754 bit patterns
//!   in hex (`0x…`), so round-trips are bit-for-bit lossless — warm
//!   store reads reproduce byte-identical experiment output.
//!
//! Corruption of any kind (bad tag, bad digit, missing token, trailing
//! garbage) surfaces as a [`RecordError`]; callers such as the run store
//! treat every error as a cache miss, never a crash.

use core::fmt;

/// A parse failure. The message names what was expected and what was
/// found; the run store maps any error to a cache miss.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordError {
    message: String,
}

impl RecordError {
    /// Creates an error with the given description.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for RecordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "record error: {}", self.message)
    }
}

impl std::error::Error for RecordError {}

/// Serializes tokens into a record string.
#[derive(Clone, Debug, Default)]
pub struct RecordWriter {
    buf: String,
}

impl RecordWriter {
    /// Creates an empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one token. Tokens must not contain whitespace — they are
    /// the atoms of the format.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the token is empty or contains whitespace.
    pub fn token(&mut self, token: &str) {
        debug_assert!(
            !token.is_empty() && !token.contains(char::is_whitespace),
            "record tokens must be non-empty and whitespace-free: {token:?}"
        );
        if !self.buf.is_empty() {
            self.buf.push(' ');
        }
        self.buf.push_str(token);
    }

    /// Appends an unsigned integer token.
    pub fn u64(&mut self, value: u64) {
        self.token(&value.to_string());
    }

    /// Appends a float as its exact bit pattern (`0x…`), so the value
    /// round-trips bit-for-bit.
    pub fn f64(&mut self, value: f64) {
        self.token(&format!("0x{:016x}", value.to_bits()));
    }

    /// The finished record.
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }
}

/// Deserializes a record string token by token.
#[derive(Clone, Debug)]
pub struct RecordReader<'a> {
    tokens: core::str::SplitAsciiWhitespace<'a>,
}

impl<'a> RecordReader<'a> {
    /// Creates a reader over a record string.
    #[must_use]
    pub fn new(record: &'a str) -> Self {
        Self {
            tokens: record.split_ascii_whitespace(),
        }
    }

    /// The next token.
    ///
    /// # Errors
    ///
    /// Errors if the record is exhausted.
    pub fn token(&mut self) -> Result<&'a str, RecordError> {
        self.tokens
            .next()
            .ok_or_else(|| RecordError::new("unexpected end of record"))
    }

    /// Consumes one token and requires it to equal `tag`.
    ///
    /// # Errors
    ///
    /// Errors if the record is exhausted or the token differs.
    pub fn expect(&mut self, tag: &str) -> Result<(), RecordError> {
        let token = self.token()?;
        if token == tag {
            Ok(())
        } else {
            Err(RecordError::new(format!(
                "expected tag {tag:?}, found {token:?}"
            )))
        }
    }

    /// Parses the next token as an unsigned integer.
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or a malformed digit string.
    pub fn u64(&mut self) -> Result<u64, RecordError> {
        let token = self.token()?;
        token
            .parse::<u64>()
            .map_err(|_| RecordError::new(format!("expected unsigned integer, found {token:?}")))
    }

    /// Parses the next token as a `u32`.
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or out-of-range values.
    pub fn u32(&mut self) -> Result<u32, RecordError> {
        let v = self.u64()?;
        u32::try_from(v).map_err(|_| RecordError::new(format!("value {v} exceeds u32")))
    }

    /// Parses the next token as a `usize`.
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or out-of-range values.
    pub fn usize(&mut self) -> Result<usize, RecordError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| RecordError::new(format!("value {v} exceeds usize")))
    }

    /// Parses the next token as an exact-bits float (`0x…`).
    ///
    /// # Errors
    ///
    /// Errors on exhaustion or a token that is not a hex bit pattern.
    pub fn f64(&mut self) -> Result<f64, RecordError> {
        let token = self.token()?;
        let hex = token.strip_prefix("0x").ok_or_else(|| {
            RecordError::new(format!("expected 0x-prefixed float bits, found {token:?}"))
        })?;
        let bits = u64::from_str_radix(hex, 16)
            .map_err(|_| RecordError::new(format!("malformed float bits {token:?}")))?;
        Ok(f64::from_bits(bits))
    }

    /// Requires the record to be fully consumed.
    ///
    /// # Errors
    ///
    /// Errors if tokens remain — trailing garbage means corruption.
    pub fn finish(mut self) -> Result<(), RecordError> {
        match self.tokens.next() {
            None => Ok(()),
            Some(extra) => Err(RecordError::new(format!(
                "trailing token {extra:?} after record end"
            ))),
        }
    }
}

/// The FNV-1a 64-bit hash of a string — the store's *stable* content
/// address. Hand-rolled so file names never depend on the standard
/// library's unspecified hasher.
#[must_use]
pub fn fnv1a64(text: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ------------------------------------------------- codecs for cfr-types

use crate::{AddressingMode, TlbOrganization};

impl TlbOrganization {
    /// Serializes as `torg <entries> <associativity>`.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("torg");
        w.u64(u64::from(self.entries));
        w.u64(u64::from(self.associativity));
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream or a degenerate shape.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("torg")?;
        let entries = r.u32()?;
        let associativity = r.u32()?;
        if entries == 0
            || associativity == 0
            || associativity > entries
            || entries % associativity != 0
        {
            return Err(RecordError::new(format!(
                "degenerate TLB organization {entries}/{associativity}"
            )));
        }
        Ok(Self {
            entries,
            associativity,
        })
    }
}

impl AddressingMode {
    /// Serializes as a single mode token.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token(match self {
            AddressingMode::PiPt => "pipt",
            AddressingMode::ViPt => "vipt",
            AddressingMode::ViVt => "vivt",
        });
    }

    /// Parses a [`Self::to_record`] token.
    ///
    /// # Errors
    ///
    /// Errors on an unknown mode token.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        match r.token()? {
            "pipt" => Ok(AddressingMode::PiPt),
            "vipt" => Ok(AddressingMode::ViPt),
            "vivt" => Ok(AddressingMode::ViVt),
            other => Err(RecordError::new(format!(
                "unknown addressing mode {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_round_trip() {
        let mut w = RecordWriter::new();
        w.token("tag");
        w.u64(42);
        w.f64(0.1 + 0.2); // a value that does not print exactly in decimal
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        assert_eq!(r.token().unwrap(), "tag");
        assert_eq!(r.u64().unwrap(), 42);
        assert_eq!(r.f64().unwrap().to_bits(), (0.1f64 + 0.2).to_bits());
        r.finish().unwrap();
    }

    #[test]
    fn exhaustion_and_trailing_are_errors() {
        let mut r = RecordReader::new("only");
        assert_eq!(r.token().unwrap(), "only");
        assert!(r.token().is_err());
        let r = RecordReader::new("extra token");
        assert!(r.finish().is_err());
    }

    #[test]
    fn expect_mismatch_is_an_error() {
        let mut r = RecordReader::new("bad");
        assert!(r.expect("good").is_err());
    }

    #[test]
    fn malformed_numbers_are_errors() {
        assert!(RecordReader::new("12k").u64().is_err());
        assert!(RecordReader::new("-3").u64().is_err());
        assert!(RecordReader::new("4294967296").u32().is_err());
        assert!(
            RecordReader::new("1.5").f64().is_err(),
            "floats are bits, not decimals"
        );
        assert!(RecordReader::new("0xzz").f64().is_err());
    }

    #[test]
    fn special_floats_round_trip() {
        for v in [
            0.0f64,
            -0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
        ] {
            let mut w = RecordWriter::new();
            w.f64(v);
            let record = w.finish();
            let got = RecordReader::new(&record).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn fnv_is_stable() {
        // Known FNV-1a vectors: the file-name scheme must never drift.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64("ab"), fnv1a64("ba"));
    }

    #[test]
    fn tlb_organization_round_trips() {
        for org in [
            TlbOrganization::fully_associative(1),
            TlbOrganization::fully_associative(32),
            TlbOrganization::set_associative(16, 2),
        ] {
            let mut w = RecordWriter::new();
            org.to_record(&mut w);
            let record = w.finish();
            let mut r = RecordReader::new(&record);
            assert_eq!(TlbOrganization::from_record(&mut r).unwrap(), org);
            r.finish().unwrap();
        }
        assert!(TlbOrganization::from_record(&mut RecordReader::new("torg 0 0")).is_err());
        assert!(TlbOrganization::from_record(&mut RecordReader::new("torg 10 4")).is_err());
    }

    #[test]
    fn addressing_mode_round_trips() {
        for mode in AddressingMode::ALL {
            let mut w = RecordWriter::new();
            mode.to_record(&mut w);
            let record = w.finish();
            assert_eq!(
                AddressingMode::from_record(&mut RecordReader::new(&record)).unwrap(),
                mode
            );
        }
        assert!(AddressingMode::from_record(&mut RecordReader::new("pivt")).is_err());
    }
}
