//! The networked store: protocol codec, TCP client, and daemon server.
//!
//! PR 3's sharded [`ArtifactStore`] is single-machine: every process
//! opens the shard files directly, cross-process compaction is
//! best-effort (two simultaneous compactions can drop each other's fresh
//! appends), and GC runs inline with saves. This module closes all three
//! at once by putting **one process in charge of the shards**:
//!
//! - [`StoreServer`] — a std-only TCP daemon that exclusively owns an
//!   [`ArtifactStore`] and serves it over a tiny length-prefixed text
//!   protocol (`GET` / `PUT` / `STATS` / `GC` / `SHUTDOWN`). Because the
//!   daemon is the sole shard owner, its in-process index mutex makes
//!   compaction **loss-free by construction** — an append can never race
//!   a compaction from another process. GC runs on a background thread
//!   under an explicit age/size policy ([`ArtifactStore::gc_with`]),
//!   **off the save path**.
//! - [`RemoteStore`] — the client: the same namespaced load/save surface
//!   ([`StoreBackend`]) over a TCP connection, with
//!   reconnect-with-backoff. Every I/O failure degrades to a **miss**,
//!   preserving the store's "failure = cold run" contract: a dead or
//!   unreachable daemon costs recomputation, never a crash.
//! - [`LayeredStore`] — remote over local: a remote miss falls back to
//!   the machine-local store (so a pre-daemon warm directory keeps
//!   serving), a remote hit backfills nothing (the daemon stays the
//!   single source of truth), and saves go to the daemon — falling back
//!   to the local layer only while the daemon is unreachable.
//!
//! Binaries select local vs. remote storage from the
//! [`STORE_ADDR_ENV`] (`CFR_STORE_ADDR`) environment variable with zero
//! call-site changes — see `cfr_core::Store::open_default`.
//!
//! # Wire format
//!
//! Every message (request or response) is one **frame**:
//!
//! ```text
//! cfr1 <payload-bytes>\n<payload>\n
//! ```
//!
//! The payload length is explicit, so payloads may contain anything
//! (including newlines); the magic + trailing newline let the decoder
//! reject garbage quickly and cheaply. Payloads are UTF-8 text; field
//! grammars ([`Request`], [`Response`]) length-prefix the key/value
//! sections the same way the shard files do, because keys and values are
//! record strings containing spaces.
//!
//! The decoder ([`decode_frame`]) is a total function over arbitrary
//! bytes — `Incomplete` / `Invalid` / `Frame`, never a panic — which is
//! what the protocol fuzz properties in `tests/property_based.rs` pin.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::store::{
    ArtifactStore, GcPolicy, GcReport, StoreBackend, NS_PROGRAMS, NS_RUNS, NS_TRACES, NS_WALKS,
};

/// Environment variable naming the store daemon (`host:port`). When set,
/// `cfr_core::Store::open_default` builds a [`LayeredStore`] (remote
/// first, local fallback) instead of opening the shards directly.
pub const STORE_ADDR_ENV: &str = "CFR_STORE_ADDR";

/// Frame magic: protocol version 1. Bumping it makes every frame from
/// the other version decode as `Invalid` (a clean error, never a panic).
pub const PROTOCOL_MAGIC: &str = "cfr1";

/// Upper bound on one frame's payload. A length header beyond this is
/// corrupt by definition — the decoder rejects it before allocating.
pub const MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Longest legal frame header: `cfr1 <8-digit-max length>\n` fits well
/// within this; anything longer without a newline is garbage.
const MAX_HEADER_BYTES: usize = 16;

/// Default port the daemon binds when none is given.
pub const DEFAULT_DAEMON_ADDR: &str = "127.0.0.1:7433";

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Encodes one payload as a wire frame (`cfr1 <len>\n<payload>\n`).
#[must_use]
pub fn encode_frame(payload: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + MAX_HEADER_BYTES + 1);
    out.extend_from_slice(format!("{PROTOCOL_MAGIC} {}\n", payload.len()).as_bytes());
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// What [`decode_frame`] found at the head of a byte buffer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameDecode {
    /// The buffer holds a prefix of a well-formed frame; read more bytes.
    Incomplete,
    /// The buffer can never become a well-formed frame: bad magic, bad
    /// length, missing terminator, or non-UTF-8 payload. The connection
    /// should answer with an error and/or disconnect.
    Invalid,
    /// One complete frame; `consumed` bytes belong to it.
    Frame {
        /// The decoded payload text.
        payload: String,
        /// Total frame length in bytes (header + payload + terminator).
        consumed: usize,
    },
}

/// Decodes the frame at the head of `buf`. Total over arbitrary bytes:
/// every input yields `Incomplete`, `Invalid`, or `Frame` — never a
/// panic, never an allocation proportional to a corrupt length header.
#[must_use]
pub fn decode_frame(buf: &[u8]) -> FrameDecode {
    let header_region = &buf[..buf.len().min(MAX_HEADER_BYTES)];
    let Some(nl) = header_region.iter().position(|&b| b == b'\n') else {
        if buf.len() >= MAX_HEADER_BYTES {
            return FrameDecode::Invalid; // no newline where one must be
        }
        // Incomplete only while the bytes so far are a plausible header
        // prefix: the magic, a space, then decimal digits.
        let shape = b"cfr1 ";
        for (i, &b) in buf.iter().enumerate() {
            let plausible = match shape.get(i) {
                Some(&expected) => b == expected,
                None => b.is_ascii_digit(),
            };
            if !plausible {
                return FrameDecode::Invalid;
            }
        }
        return FrameDecode::Incomplete;
    };
    let Ok(header) = core::str::from_utf8(&buf[..nl]) else {
        return FrameDecode::Invalid;
    };
    let mut tokens = header.split(' ');
    if tokens.next() != Some(PROTOCOL_MAGIC) {
        return FrameDecode::Invalid;
    }
    let Some(len_text) = tokens.next() else {
        return FrameDecode::Invalid;
    };
    // Digits only: `parse` alone would accept a leading `+`.
    if tokens.next().is_some()
        || len_text.is_empty()
        || !len_text.bytes().all(|b| b.is_ascii_digit())
    {
        return FrameDecode::Invalid;
    }
    let Ok(len) = len_text.parse::<usize>() else {
        return FrameDecode::Invalid;
    };
    if len > MAX_FRAME_BYTES {
        return FrameDecode::Invalid;
    }
    let Some(total) = (nl + 1).checked_add(len).and_then(|t| t.checked_add(1)) else {
        return FrameDecode::Invalid;
    };
    if buf.len() < total {
        return FrameDecode::Incomplete;
    }
    if buf[total - 1] != b'\n' {
        return FrameDecode::Invalid;
    }
    match core::str::from_utf8(&buf[nl + 1..total - 1]) {
        Ok(payload) => FrameDecode::Frame {
            payload: payload.to_string(),
            consumed: total,
        },
        Err(_) => FrameDecode::Invalid,
    }
}

/// A streaming frame reader: buffers partial reads across calls so a
/// frame split over several TCP segments (or interrupted by a read
/// timeout) reassembles correctly.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty reader.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one frame from `stream`. `Ok(None)` is a clean EOF at a
    /// frame boundary; `ErrorKind::InvalidData` means the peer sent bytes
    /// that can never become a frame (the caller should error-reply
    /// and/or disconnect); timeouts surface as the underlying
    /// `WouldBlock`/`TimedOut` error with the partial frame retained for
    /// the next call.
    ///
    /// # Errors
    ///
    /// Any I/O error from `stream`, plus `InvalidData` for corrupt and
    /// `UnexpectedEof` for mid-frame EOFs.
    pub fn read_frame(&mut self, stream: &mut impl Read) -> io::Result<Option<String>> {
        loop {
            match decode_frame(&self.buf) {
                FrameDecode::Frame { payload, consumed } => {
                    self.buf.drain(..consumed);
                    return Ok(Some(payload));
                }
                FrameDecode::Invalid => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "malformed frame",
                    ));
                }
                FrameDecode::Incomplete => {}
            }
            let mut chunk = [0u8; 4096];
            let n = stream.read(&mut chunk)?;
            if n == 0 {
                return if self.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "EOF inside a frame",
                    ))
                };
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

// ---------------------------------------------------------------------------
// Request / response grammar
// ---------------------------------------------------------------------------

fn valid_ns(ns: &str) -> bool {
    !ns.is_empty() && !ns.contains(char::is_whitespace)
}

fn valid_key(key: &str) -> bool {
    !key.is_empty() && !key.contains('\n')
}

fn valid_value(value: &str) -> bool {
    !value.contains('\n')
}

/// One client request. The daemon's whole command surface.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Look `(ns, key)` up.
    Get {
        /// Namespace (single whitespace-free token).
        ns: String,
        /// Single-line record-string key.
        key: String,
    },
    /// Persist `(ns, key) → value`.
    Put {
        /// Namespace (single whitespace-free token).
        ns: String,
        /// Single-line record-string key.
        key: String,
        /// Single-line record-string value.
        value: String,
    },
    /// Report occupancy (live records/bytes, per-namespace counts).
    Stats,
    /// Run a GC/compaction pass under the daemon's policy now.
    Gc,
    /// Stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Serializes this request as a frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Self::Get { ns, key } => format!("get {ns} {}\n{key}", key.len()),
            Self::Put { ns, key, value } => {
                format!("put {ns} {} {}\n{key}\n{value}", key.len(), value.len())
            }
            Self::Stats => "stats".to_string(),
            Self::Gc => "gc".to_string(),
            Self::Shutdown => "shutdown".to_string(),
        }
    }

    /// Parses a frame payload. Total over arbitrary strings: every
    /// malformed payload is a descriptive `Err`, never a panic — the
    /// server turns it into an `err` reply. Field shapes are enforced
    /// here (namespace one token, key/value single-line, lengths exact),
    /// so a decoded `Put` can always be stored without tripping the
    /// store's own input assertions.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn decode(payload: &str) -> Result<Self, String> {
        let (head, body) = payload
            .split_once('\n')
            .map_or((payload, None), |(h, b)| (h, Some(b)));
        let mut tokens = head.split(' ');
        let verb = tokens.next().unwrap_or("");
        match verb {
            "get" => {
                let ns = tokens.next().ok_or("get: missing namespace")?;
                let klen: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("get: bad key length")?;
                if tokens.next().is_some() {
                    return Err("get: trailing tokens".into());
                }
                let key = body.ok_or("get: missing key line")?;
                if key.len() != klen || !valid_key(key) || !valid_ns(ns) {
                    return Err("get: malformed namespace or key".into());
                }
                Ok(Self::Get {
                    ns: ns.to_string(),
                    key: key.to_string(),
                })
            }
            "put" => {
                let ns = tokens.next().ok_or("put: missing namespace")?;
                let klen: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("put: bad key length")?;
                let vlen: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or("put: bad value length")?;
                if tokens.next().is_some() {
                    return Err("put: trailing tokens".into());
                }
                let body = body.ok_or("put: missing key/value lines")?;
                let expected = klen.checked_add(1).and_then(|n| n.checked_add(vlen));
                if expected != Some(body.len()) {
                    return Err("put: body length mismatch".into());
                }
                // `get(..)` (not slicing) so a length landing inside a
                // multi-byte character is an error, not a panic.
                let key = body.get(..klen).ok_or("put: key not UTF-8 aligned")?;
                let sep = body.get(klen..=klen);
                let value = body.get(klen + 1..).ok_or("put: value not UTF-8 aligned")?;
                if sep != Some("\n") || !valid_ns(ns) || !valid_key(key) || !valid_value(value) {
                    return Err("put: malformed namespace, key, or value".into());
                }
                Ok(Self::Put {
                    ns: ns.to_string(),
                    key: key.to_string(),
                    value: value.to_string(),
                })
            }
            "stats" if body.is_none() && tokens.next().is_none() => Ok(Self::Stats),
            "gc" if body.is_none() && tokens.next().is_none() => Ok(Self::Gc),
            "shutdown" if body.is_none() && tokens.next().is_none() => Ok(Self::Shutdown),
            other => Err(format!("unknown request verb {other:?}")),
        }
    }
}

/// The daemon's occupancy report (the `STATS` reply).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live (latest-per-key) records across all namespaces.
    pub live_records: u64,
    /// Bytes those records occupy.
    pub live_bytes: u64,
    /// Physical shard-file bytes (live + dead).
    pub file_bytes: u64,
    /// Live records in the `runs` namespace.
    pub runs: u64,
    /// Live records in the `walks` namespace.
    pub walks: u64,
    /// Live records in the `programs` namespace.
    pub programs: u64,
    /// Live records in the `traces` namespace.
    pub traces: u64,
}

/// One server reply.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// `GET` found the record.
    Hit {
        /// The stored single-line record-string value.
        value: String,
    },
    /// `GET` found nothing (the client recomputes).
    Miss,
    /// `PUT` / `SHUTDOWN` acknowledged.
    Done,
    /// `STATS` reply.
    Stats(StoreStats),
    /// `GC` reply: what the pass did.
    Gc(GcReport),
    /// The request could not be served (malformed, internal error). The
    /// client treats it as a miss.
    Error {
        /// Single-line description.
        message: String,
    },
}

impl Response {
    /// Serializes this response as a frame payload.
    #[must_use]
    pub fn encode(&self) -> String {
        match self {
            Self::Hit { value } => format!("hit {}\n{value}", value.len()),
            Self::Miss => "miss".to_string(),
            Self::Done => "ok".to_string(),
            Self::Stats(s) => format!(
                "stats {} {} {} {} {} {} {}",
                s.live_records, s.live_bytes, s.file_bytes, s.runs, s.walks, s.programs, s.traces
            ),
            Self::Gc(r) => format!(
                "gcdone {} {} {} {} {} {}",
                r.live_records,
                r.live_bytes,
                r.dead_bytes_dropped,
                r.evicted_age,
                r.evicted_size,
                r.shards_rewritten
            ),
            Self::Error { message } => format!("err {}", message.replace('\n', " ")),
        }
    }

    /// Parses a frame payload; total over arbitrary strings.
    ///
    /// # Errors
    ///
    /// A one-line description of what is malformed.
    pub fn decode(payload: &str) -> Result<Self, String> {
        fn numbers<'a>(
            tokens: &mut impl Iterator<Item = &'a str>,
            n: usize,
            verb: &str,
        ) -> Result<Vec<u64>, String> {
            let mut out = Vec::with_capacity(n);
            for _ in 0..n {
                out.push(
                    tokens
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| format!("{verb}: bad numeric field"))?,
                );
            }
            if tokens.next().is_some() {
                return Err(format!("{verb}: trailing tokens"));
            }
            Ok(out)
        }
        let (head, body) = payload
            .split_once('\n')
            .map_or((payload, None), |(h, b)| (h, Some(b)));
        let mut tokens = head.split(' ');
        let verb = tokens.next().unwrap_or("");
        match verb {
            "hit" => {
                let vlen = numbers(&mut tokens, 1, verb)?[0];
                let value = body.ok_or("hit: missing value line")?;
                if value.len() as u64 != vlen || !valid_value(value) {
                    return Err("hit: value length mismatch".into());
                }
                Ok(Self::Hit {
                    value: value.to_string(),
                })
            }
            "miss" if body.is_none() && tokens.next().is_none() => Ok(Self::Miss),
            "ok" if body.is_none() && tokens.next().is_none() => Ok(Self::Done),
            "stats" if body.is_none() => {
                let v = numbers(&mut tokens, 7, verb)?;
                Ok(Self::Stats(StoreStats {
                    live_records: v[0],
                    live_bytes: v[1],
                    file_bytes: v[2],
                    runs: v[3],
                    walks: v[4],
                    programs: v[5],
                    traces: v[6],
                }))
            }
            "gcdone" if body.is_none() => {
                let v = numbers(&mut tokens, 6, verb)?;
                #[allow(clippy::cast_possible_truncation)]
                Ok(Self::Gc(GcReport {
                    live_records: v[0],
                    live_bytes: v[1],
                    dead_bytes_dropped: v[2],
                    evicted_age: v[3],
                    evicted_size: v[4],
                    shards_rewritten: v[5] as u32,
                }))
            }
            "err" => {
                let message = head.strip_prefix("err ").unwrap_or("").to_string();
                if body.is_some() {
                    return Err("err: unexpected body".into());
                }
                Ok(Self::Error { message })
            }
            other => Err(format!("unknown response verb {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Read/write timeout on client sockets: a stalled daemon degrades to
/// misses rather than hanging an experiment.
const CLIENT_IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Timeout for establishing a connection.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(2);

/// First reconnect delay after a failure; doubles per consecutive
/// failure up to [`BACKOFF_MAX`].
const BACKOFF_BASE: Duration = Duration::from_millis(50);

/// Longest reconnect delay.
const BACKOFF_MAX: Duration = Duration::from_secs(2);

#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

#[derive(Debug, Default)]
struct ClientState {
    conn: Option<Conn>,
    consecutive_failures: u32,
    retry_at: Option<Instant>,
}

/// A [`StoreBackend`] over a TCP connection to a [`StoreServer`].
///
/// Failure semantics — the store's "failure = cold run" contract, over
/// the network:
///
/// - every I/O failure (connect refused, reset, timeout, malformed
///   reply) degrades the operation to a **miss** (loads) or a counted
///   best-effort failure (saves); nothing propagates;
/// - after a failure the client **backs off** (50 ms doubling to 2 s):
///   operations inside the backoff window return misses immediately
///   instead of hammering a dead daemon, and the next operation past the
///   window reconnects transparently.
///
/// One connection is shared (mutex-serialized) by all threads of the
/// process; requests are small and the protocol is strictly
/// request/reply, so serialization is not the bottleneck — simulation
/// is.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    state: Mutex<ClientState>,
    hits: AtomicU64,
    misses: AtomicU64,
    put_errors: AtomicU64,
}

impl RemoteStore {
    /// A client of the daemon at `addr` (`host:port`). No connection is
    /// attempted until the first operation.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        Self {
            addr: addr.into(),
            state: Mutex::new(ClientState::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            put_errors: AtomicU64::new(0),
        }
    }

    /// The daemon address this client talks to.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Loads served by the daemon.
    #[must_use]
    pub fn remote_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Loads the daemon missed on — including every load made while the
    /// daemon was unreachable.
    #[must_use]
    pub fn remote_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn connect(addr: &str) -> io::Result<Conn> {
        let sock = addr.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, "address resolves to nothing")
        })?;
        let stream = TcpStream::connect_timeout(&sock, CONNECT_TIMEOUT)?;
        stream.set_read_timeout(Some(CLIENT_IO_TIMEOUT))?;
        stream.set_write_timeout(Some(CLIENT_IO_TIMEOUT))?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            reader: FrameReader::new(),
        })
    }

    fn note_failure(state: &mut ClientState) {
        state.conn = None;
        state.consecutive_failures = state.consecutive_failures.saturating_add(1);
        let shift = state.consecutive_failures.saturating_sub(1).min(8);
        let delay = BACKOFF_BASE
            .checked_mul(1 << shift)
            .map_or(BACKOFF_MAX, |d| d.min(BACKOFF_MAX));
        state.retry_at = Some(Instant::now() + delay);
    }

    /// One request/reply exchange. `None` covers every failure: not
    /// connected and inside the backoff window, connect/write/read
    /// failure, or an undecodable reply.
    #[must_use]
    pub fn request(&self, req: &Request) -> Option<Response> {
        let mut state = self.state.lock().expect("remote store poisoned");
        if state.conn.is_none() {
            if let Some(at) = state.retry_at {
                if Instant::now() < at {
                    return None; // back off: degrade to a miss immediately
                }
            }
            match Self::connect(&self.addr) {
                Ok(conn) => state.conn = Some(conn),
                Err(_) => {
                    Self::note_failure(&mut state);
                    return None;
                }
            }
        }
        let exchange = (|| -> io::Result<Response> {
            let conn = state.conn.as_mut().expect("connected above");
            conn.stream.write_all(&encode_frame(&req.encode()))?;
            let payload = conn.reader.read_frame(&mut conn.stream)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "daemon closed the connection")
            })?;
            Response::decode(&payload).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
        })();
        match exchange {
            Ok(response) => {
                // Only a completed request/reply exchange proves the
                // daemon healthy. Resetting on connect alone would pin
                // the backoff at its base against a daemon that accepts
                // (the kernel completes handshakes from the backlog) but
                // never replies — each request would burn the full I/O
                // timeout forever instead of backing off.
                state.consecutive_failures = 0;
                state.retry_at = None;
                Some(response)
            }
            Err(_) => {
                Self::note_failure(&mut state);
                None
            }
        }
    }

    /// Saves over the wire; `true` iff the daemon acknowledged.
    pub fn try_save(&self, ns: &str, key: &str, value: &str) -> bool {
        let acked = matches!(
            self.request(&Request::Put {
                ns: ns.to_string(),
                key: key.to_string(),
                value: value.to_string(),
            }),
            Some(Response::Done)
        );
        if !acked {
            self.put_errors.fetch_add(1, Ordering::Relaxed);
        }
        acked
    }

    /// The daemon's occupancy report, if reachable.
    #[must_use]
    pub fn stats(&self) -> Option<StoreStats> {
        match self.request(&Request::Stats) {
            Some(Response::Stats(s)) => Some(s),
            _ => None,
        }
    }

    /// Asks the daemon for a GC pass now; its report, if reachable.
    #[must_use]
    pub fn gc(&self) -> Option<GcReport> {
        match self.request(&Request::Gc) {
            Some(Response::Gc(r)) => Some(r),
            _ => None,
        }
    }

    /// Asks the daemon to exit; `true` iff it acknowledged.
    pub fn shutdown(&self) -> bool {
        matches!(self.request(&Request::Shutdown), Some(Response::Done))
    }
}

impl StoreBackend for RemoteStore {
    fn load(&self, ns: &str, key: &str) -> Option<String> {
        let got = match self.request(&Request::Get {
            ns: ns.to_string(),
            key: key.to_string(),
        }) {
            Some(Response::Hit { value }) => Some(value),
            _ => None, // miss, error reply, or daemon unreachable
        };
        match &got {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        got
    }

    fn save(&self, ns: &str, key: &str, value: &str) {
        let _ = self.try_save(ns, key, value);
    }

    fn write_errors(&self) -> u64 {
        self.put_errors.load(Ordering::Relaxed)
    }

    fn namespace_records(&self, ns: &str) -> usize {
        let Some(stats) = self.stats() else { return 0 };
        let count = match ns {
            NS_RUNS => stats.runs,
            NS_WALKS => stats.walks,
            NS_PROGRAMS => stats.programs,
            NS_TRACES => stats.traces,
            _ => 0,
        };
        usize::try_from(count).unwrap_or(usize::MAX)
    }

    fn describe(&self) -> String {
        format!("tcp://{}", self.addr)
    }
}

/// Remote-first storage with a machine-local fallback.
///
/// - **Load**: the daemon is asked first; a remote miss (or an
///   unreachable daemon) falls back to the local store. A remote hit
///   backfills nothing locally and a local hit pushes nothing to the
///   daemon — the daemon stays the single source of truth, the local
///   layer a read-only legacy of pre-daemon runs plus a degraded-mode
///   spill.
/// - **Save**: goes to the daemon; only while the daemon is unreachable
///   does it land in the local store instead, so degraded runs stay warm
///   for the next local process.
#[derive(Debug)]
pub struct LayeredStore {
    remote: RemoteStore,
    local: Option<Arc<ArtifactStore>>,
}

impl LayeredStore {
    /// Stacks `remote` over an optional machine-local fallback.
    #[must_use]
    pub fn new(remote: RemoteStore, local: Option<Arc<ArtifactStore>>) -> Self {
        Self { remote, local }
    }

    /// The remote layer.
    #[must_use]
    pub fn remote(&self) -> &RemoteStore {
        &self.remote
    }

    /// The local fallback layer, if any.
    #[must_use]
    pub fn local(&self) -> Option<&Arc<ArtifactStore>> {
        self.local.as_ref()
    }
}

impl StoreBackend for LayeredStore {
    fn load(&self, ns: &str, key: &str) -> Option<String> {
        if let Some(value) = self.remote.load(ns, key) {
            return Some(value);
        }
        self.local.as_ref().and_then(|l| l.load(ns, key))
    }

    fn save(&self, ns: &str, key: &str, value: &str) {
        if self.remote.try_save(ns, key, value) {
            return;
        }
        if let Some(local) = &self.local {
            local.save(ns, key, value);
        }
    }

    fn write_errors(&self) -> u64 {
        self.remote.write_errors()
            + self
                .local
                .as_ref()
                .map_or(0, |l| ArtifactStore::write_errors(l))
    }

    fn namespace_records(&self, ns: &str) -> usize {
        let remote = self.remote.namespace_records(ns);
        if remote > 0 {
            return remote;
        }
        self.local
            .as_ref()
            .map_or(0, |l| ArtifactStore::namespace_records(l, ns))
    }

    fn describe(&self) -> String {
        match &self.local {
            Some(local) => format!("tcp://{} + {}", self.remote.addr(), local.dir().display()),
            None => self.remote.describe(),
        }
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Server-side read timeout: connection handlers wake this often to
/// check the shutdown flag, so `StoreServer::shutdown` completes
/// promptly while idle clients stay connected indefinitely.
const HANDLER_POLL: Duration = Duration::from_millis(200);

/// How the daemon runs its store.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Age/size policy applied by the background GC thread and the `GC`
    /// command — **not** by saves (the daemon's store is opened
    /// unbounded, which is what moves GC off the save path).
    pub gc_policy: GcPolicy,
    /// Background GC cadence (`None` = only on explicit `GC` commands).
    pub gc_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            gc_policy: GcPolicy::unbounded(),
            gc_interval: Some(Duration::from_secs(60)),
        }
    }
}

/// The store daemon: exclusively owns an [`ArtifactStore`] and serves it
/// over TCP. See the module docs for the protocol and the ownership
/// argument; see `cfr-store-serve` for the CLI wrapper.
#[derive(Debug)]
pub struct StoreServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    gc_thread: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    store: Arc<ArtifactStore>,
}

impl StoreServer {
    /// Binds `addr` (use port `0` for an ephemeral port; read the real
    /// one back from [`StoreServer::addr`]) and starts serving `store` on
    /// background threads: one acceptor, one handler per connection, and
    /// — when `config.gc_interval` is set — one GC thread.
    ///
    /// # Errors
    ///
    /// Errors if the listener cannot bind.
    pub fn bind(store: Arc<ArtifactStore>, addr: &str, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

        let accept = {
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            let handlers = Arc::clone(&handlers);
            thread::spawn(move || {
                accept_loop(&listener, &store, config, &shutdown, &handlers, local_addr);
            })
        };
        let gc_thread = config.gc_interval.map(|interval| {
            let store = Arc::clone(&store);
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || gc_loop(&store, config.gc_policy, interval, &shutdown))
        });
        Ok(Self {
            addr: local_addr,
            shutdown,
            accept: Some(accept),
            gc_thread,
            handlers,
            store,
        })
    }

    /// The address the daemon is actually listening on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The store this daemon owns.
    #[must_use]
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// Blocks until a client sends `SHUTDOWN`, then tears down cleanly.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        self.stop();
    }

    /// Stops the daemon from this process: stops accepting, waits for
    /// every connection handler to notice (≤ [`HANDLER_POLL`] plus any
    /// in-flight request), and joins the GC thread. After this returns no
    /// thread serves the store — a client's next request definitively
    /// fails (and degrades to a miss on its side).
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor (it checks the flag per accepted
        // connection).
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handlers = std::mem::take(&mut *self.handlers.lock().expect("handler list poisoned"));
        for h in handlers {
            let _ = h.join();
        }
        if let Some(gc) = self.gc_thread.take() {
            let _ = gc.join();
        }
    }
}

impl Drop for StoreServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: &TcpListener,
    store: &Arc<ArtifactStore>,
    config: ServerConfig,
    shutdown: &Arc<AtomicBool>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    server_addr: SocketAddr,
) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Transient accept error — e.g. EMFILE under fd exhaustion,
            // which returns *immediately* and repeatedly. Sleep briefly
            // so a persistent condition throttles instead of spinning a
            // core until fds free up.
            thread::sleep(Duration::from_millis(20));
            continue;
        };
        if shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connection, or a racer past shutdown
        }
        let store = Arc::clone(store);
        let shutdown = Arc::clone(shutdown);
        let handle = thread::spawn(move || {
            handle_connection(stream, &store, config, &shutdown, server_addr)
        });
        let mut list = handlers.lock().expect("handler list poisoned");
        // Finished handlers join instantly; reap them so a long-lived
        // daemon's list doesn't grow with every connection ever made.
        list.retain(|h| !h.is_finished());
        list.push(handle);
    }
}

fn gc_loop(
    store: &Arc<ArtifactStore>,
    policy: GcPolicy,
    interval: Duration,
    shutdown: &Arc<AtomicBool>,
) {
    let tick = interval.min(Duration::from_millis(20));
    let mut last = Instant::now();
    while !shutdown.load(Ordering::SeqCst) {
        thread::sleep(tick);
        if last.elapsed() >= interval {
            let _ = store.gc_with(policy);
            last = Instant::now();
        }
    }
}

fn stats_of(store: &ArtifactStore) -> StoreStats {
    StoreStats {
        live_records: store.live_records() as u64,
        live_bytes: store.live_bytes(),
        file_bytes: store.file_bytes(),
        runs: store.namespace_records(NS_RUNS) as u64,
        walks: store.namespace_records(NS_WALKS) as u64,
        programs: store.namespace_records(NS_PROGRAMS) as u64,
        traces: store.namespace_records(NS_TRACES) as u64,
    }
}

fn handle_connection(
    mut stream: TcpStream,
    store: &Arc<ArtifactStore>,
    config: ServerConfig,
    shutdown: &Arc<AtomicBool>,
    server_addr: SocketAddr,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(HANDLER_POLL));
    let mut reader = FrameReader::new();
    loop {
        let payload = match reader.read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => return, // clean disconnect
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                // Bytes that can never become a frame: error-reply (the
                // peer may not even speak the protocol) and disconnect.
                let reply = Response::Error {
                    message: "malformed frame".to_string(),
                };
                let _ = stream.write_all(&encode_frame(&reply.encode()));
                return;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: stay connected unless shutting down.
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        let response = match Request::decode(&payload) {
            // A well-framed but malformed request gets a clean error
            // reply and the connection survives.
            Err(message) => Response::Error { message },
            Ok(Request::Get { ns, key }) => match store.load(&ns, &key) {
                Some(value) => Response::Hit { value },
                None => Response::Miss,
            },
            Ok(Request::Put { ns, key, value }) => {
                // Request::decode enforced the store's input shapes, so
                // this cannot trip the store's assertions.
                store.save(&ns, &key, &value);
                Response::Done
            }
            Ok(Request::Stats) => Response::Stats(stats_of(store)),
            Ok(Request::Gc) => Response::Gc(store.gc_with(config.gc_policy)),
            Ok(Request::Shutdown) => {
                let _ = stream.write_all(&encode_frame(&Response::Done.encode()));
                shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(server_addr); // unblock the acceptor
                return;
            }
        };
        if stream.write_all(&encode_frame(&response.encode())).is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfr-net-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn serve(dir: &std::path::Path, config: ServerConfig) -> StoreServer {
        let store = Arc::new(ArtifactStore::open(dir, GcPolicy::unbounded()).unwrap());
        StoreServer::bind(store, "127.0.0.1:0", config).unwrap()
    }

    #[test]
    fn frame_round_trips() {
        for payload in ["", "x", "get runs 3\nkey", "line\nwith\nnewlines", "π ≠ τ"] {
            let bytes = encode_frame(payload);
            match decode_frame(&bytes) {
                FrameDecode::Frame {
                    payload: got,
                    consumed,
                } => {
                    assert_eq!(got, payload);
                    assert_eq!(consumed, bytes.len());
                }
                other => panic!("{payload:?} decoded to {other:?}"),
            }
        }
    }

    #[test]
    fn frame_prefixes_are_incomplete_and_garbage_is_invalid() {
        let bytes = encode_frame("hello world");
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..cut]),
                FrameDecode::Incomplete,
                "prefix of a valid frame at {cut}"
            );
        }
        for garbage in [
            b"nonsense bytes here".as_slice(),
            b"cfr2 5\nhello\n",
            b"cfr1 x\npayload\n",
            b"cfr1 +5\nhello\n",
            b"cfr1 99999999999999999999\n",
            b"cfr1 5\nhelloX",
        ] {
            assert_eq!(decode_frame(garbage), FrameDecode::Invalid, "{garbage:?}");
        }
        // A corrupt huge length is rejected without allocating.
        let huge = format!("cfr1 {}\n", MAX_FRAME_BYTES + 1);
        assert_eq!(decode_frame(huge.as_bytes()), FrameDecode::Invalid);
    }

    #[test]
    fn request_and_response_codecs_round_trip() {
        let requests = [
            Request::Get {
                ns: "runs".into(),
                key: "runkey 177.mesa scale 1000 7".into(),
            },
            Request::Put {
                ns: "walks".into(),
                key: "k with spaces".into(),
                value: "v with spaces and 0x3ff0000000000000".into(),
            },
            Request::Put {
                ns: "programs".into(),
                key: "k".into(),
                value: String::new(),
            },
            Request::Stats,
            Request::Gc,
            Request::Shutdown,
        ];
        for req in requests {
            assert_eq!(Request::decode(&req.encode()).as_ref(), Ok(&req));
        }
        let responses = [
            Response::Hit {
                value: "report base vipt 1 2".into(),
            },
            Response::Hit {
                value: String::new(),
            },
            Response::Miss,
            Response::Done,
            Response::Stats(StoreStats {
                live_records: 1,
                live_bytes: 2,
                file_bytes: 3,
                runs: 4,
                walks: 5,
                programs: 6,
                traces: 7,
            }),
            Response::Gc(GcReport {
                live_records: 9,
                live_bytes: 100,
                dead_bytes_dropped: 11,
                evicted_age: 1,
                evicted_size: 2,
                shards_rewritten: 3,
            }),
            Response::Error {
                message: "something broke".into(),
            },
        ];
        for resp in responses {
            assert_eq!(Response::decode(&resp.encode()).as_ref(), Ok(&resp));
        }
    }

    #[test]
    fn malformed_requests_are_errors_not_panics() {
        for bad in [
            "",
            "get",
            "get runs",
            "get runs 5\nab",             // length mismatch
            "get runs 2\nab extra\nline", // newline in key
            "put runs 1 1\nk",
            "put runs 1 1\nkXv",
            "stats extra",
            "gc 1",
            "frobnicate",
            "get r\u{a0}ns 1\nk", // non-ASCII whitespace in ns
        ] {
            assert!(Request::decode(bad).is_err(), "{bad:?} must not decode");
        }
        for bad in ["", "hit", "hit 5\nab", "stats 1 2 3", "gcdone 1", "frob"] {
            assert!(Response::decode(bad).is_err(), "{bad:?} must not decode");
        }
    }

    #[test]
    fn server_serves_get_put_stats_gc() {
        let dir = temp_dir("serve");
        let server = serve(
            &dir,
            ServerConfig {
                gc_policy: GcPolicy::unbounded(),
                gc_interval: None,
            },
        );
        let client = RemoteStore::new(server.addr().to_string());
        assert_eq!(client.load("runs", "k"), None, "cold daemon misses");
        client.save("runs", "k", "value 1 2 3");
        assert_eq!(client.load("runs", "k").as_deref(), Some("value 1 2 3"));
        // Overwrite leaves dead bytes; GC compacts them; the value
        // survives byte-for-byte.
        client.save("runs", "k", "value 4 5 6");
        let stats = client.stats().unwrap();
        assert_eq!(stats.runs, 1);
        assert!(stats.file_bytes > stats.live_bytes);
        let report = client.gc().unwrap();
        assert!(report.dead_bytes_dropped > 0);
        assert_eq!(client.load("runs", "k").as_deref(), Some("value 4 5 6"));
        assert_eq!(client.remote_hits(), 2);
        assert_eq!(client.remote_misses(), 1);
        assert_eq!(client.namespace_records("runs"), 1);
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_daemon_degrades_to_misses_with_backoff() {
        // Nothing listens here (bind-then-drop reserves a dead port).
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let client = RemoteStore::new(format!("127.0.0.1:{port}"));
        assert_eq!(client.load("runs", "k"), None);
        client.save("runs", "k", "v"); // must not panic or block long
        assert_eq!(client.load("runs", "k"), None);
        assert!(client.write_errors() >= 1);
        assert!(client.stats().is_none());
        assert_eq!(client.namespace_records("runs"), 0);
    }

    #[test]
    fn shutdown_request_stops_the_daemon() {
        let dir = temp_dir("shutdown");
        let server = serve(&dir, ServerConfig::default());
        let addr = server.addr().to_string();
        let client = RemoteStore::new(addr.clone());
        client.save("runs", "k", "v");
        assert!(client.shutdown());
        server.wait(); // returns because the client asked for shutdown
                       // The daemon is gone; a fresh client degrades to misses.
        let after = RemoteStore::new(addr);
        assert_eq!(after.load("runs", "k"), None);
        // ... but the record survives on disk for the next daemon.
        let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        assert_eq!(
            ArtifactStore::load(&reopened, "runs", "k").as_deref(),
            Some("v")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_bytes_get_an_error_reply_and_the_daemon_survives() {
        let dir = temp_dir("garbage");
        let server = serve(
            &dir,
            ServerConfig {
                gc_policy: GcPolicy::unbounded(),
                gc_interval: None,
            },
        );
        // Raw garbage: the reply must be an err frame, then disconnect.
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        raw.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
        let mut reader = FrameReader::new();
        let reply = reader.read_frame(&mut raw).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&reply),
            Ok(Response::Error { .. })
        ));
        drop(raw);
        // A malformed-but-framed request keeps the connection alive.
        let mut framed = TcpStream::connect(server.addr()).unwrap();
        framed
            .write_all(&encode_frame("frobnicate the store"))
            .unwrap();
        let mut reader = FrameReader::new();
        let reply = reader.read_frame(&mut framed).unwrap().unwrap();
        assert!(matches!(
            Response::decode(&reply),
            Ok(Response::Error { .. })
        ));
        framed
            .write_all(&encode_frame(&Request::Stats.encode()))
            .unwrap();
        let reply = reader.read_frame(&mut framed).unwrap().unwrap();
        assert!(matches!(Response::decode(&reply), Ok(Response::Stats(_))));
        // And the daemon still serves fresh connections.
        let client = RemoteStore::new(server.addr().to_string());
        client.save("runs", "k", "v");
        assert_eq!(client.load("runs", "k").as_deref(), Some("v"));
        server.shutdown();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn layered_store_prefers_remote_and_falls_back_to_local() {
        let daemon_dir = temp_dir("layer-daemon");
        let local_dir = temp_dir("layer-local");
        let local = Arc::new(ArtifactStore::open(&local_dir, GcPolicy::unbounded()).unwrap());
        ArtifactStore::save(&local, "runs", "legacy", "from the pre-daemon store");

        let server = serve(&daemon_dir, ServerConfig::default());
        let layered = LayeredStore::new(
            RemoteStore::new(server.addr().to_string()),
            Some(Arc::clone(&local)),
        );
        // Saves go to the daemon, not the local layer.
        layered.save("runs", "fresh", "daemon copy");
        assert_eq!(ArtifactStore::load(&local, "runs", "fresh"), None);
        assert_eq!(
            layered.load("runs", "fresh").as_deref(),
            Some("daemon copy")
        );
        // A remote miss falls back to the local layer — and backfills
        // nothing into the daemon.
        assert_eq!(
            layered.load("runs", "legacy").as_deref(),
            Some("from the pre-daemon store")
        );
        assert_eq!(server.store().load("runs", "legacy"), None);
        assert!(layered.describe().starts_with("tcp://"));

        // Daemon gone: loads of daemon-only records miss, saves land in
        // the local fallback, nothing panics.
        server.shutdown();
        assert_eq!(layered.load("runs", "fresh"), None, "daemon-only record");
        layered.save("runs", "degraded", "local copy");
        assert_eq!(
            ArtifactStore::load(&local, "runs", "degraded").as_deref(),
            Some("local copy")
        );
        assert_eq!(
            layered.load("runs", "degraded").as_deref(),
            Some("local copy")
        );
        let _ = fs::remove_dir_all(&daemon_dir);
        let _ = fs::remove_dir_all(&local_dir);
    }

    #[test]
    fn background_gc_compacts_without_dropping_fresh_appends() {
        let dir = temp_dir("bg-gc");
        let server = serve(
            &dir,
            ServerConfig {
                gc_policy: GcPolicy::unbounded(),
                gc_interval: Some(Duration::from_millis(1)),
            },
        );
        let client = RemoteStore::new(server.addr().to_string());
        // Constant overwrites generate dead bytes for the 1 ms GC to
        // compact while we keep appending; nothing may be lost.
        for i in 0..200 {
            client.save("runs", "hot", &format!("version {i}"));
            client.save("runs", &format!("cold-{i}"), "stable value");
        }
        assert_eq!(client.load("runs", "hot").as_deref(), Some("version 199"));
        for i in 0..200 {
            assert_eq!(
                client.load("runs", &format!("cold-{i}")).as_deref(),
                Some("stable value"),
                "cold-{i} must survive background compaction"
            );
        }
        server.shutdown();
        // The records survive on disk for a fresh scan, too.
        let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        assert_eq!(
            ArtifactStore::load(&reopened, "runs", "hot").as_deref(),
            Some("version 199")
        );
        assert_eq!(ArtifactStore::namespace_records(&reopened, "runs"), 201);
        let _ = fs::remove_dir_all(&dir);
    }
}
