//! Virtual/physical address and page-number newtypes.
//!
//! All four types are thin wrappers over `u64` that exist to make it a
//! *compile error* to hand a virtual quantity to a physically-addressed
//! structure (or vice versa) — the exact confusion the paper's cache
//! addressing taxonomy (PI-PT / VI-PT / VI-VT) is about.

use core::fmt;
use serde::{Deserialize, Serialize};

macro_rules! addr_newtype {
    ($(#[$meta:meta])* $name:ident) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit value.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw 64-bit value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address advanced by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds on overflow, like ordinary integer
            /// addition.
            #[inline]
            #[must_use]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Returns the checked sum, or `None` on overflow.
            #[inline]
            #[must_use]
            pub const fn checked_add(self, bytes: u64) -> Option<Self> {
                match self.0.checked_add(bytes) {
                    Some(v) => Some(Self(v)),
                    None => None,
                }
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl fmt::Binary for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Binary::fmt(&self.0, f)
            }
        }

        impl fmt::Octal for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Octal::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

addr_newtype! {
    /// A virtual (program-visible) byte address.
    ///
    /// The program counter and every branch target in the synthetic ISA are
    /// `VirtAddr`s; only the memory hierarchy ever sees a [`PhysAddr`].
    VirtAddr
}

addr_newtype! {
    /// A physical (post-translation) byte address.
    PhysAddr
}

addr_newtype! {
    /// A virtual page number: the high-order bits of a [`VirtAddr`].
    Vpn
}

addr_newtype! {
    /// A physical frame number: the high-order bits of a [`PhysAddr`].
    Pfn
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_round_trips() {
        let v = VirtAddr::new(0xdead_beef);
        assert_eq!(v.raw(), 0xdead_beef);
        assert_eq!(u64::from(v), 0xdead_beef);
        assert_eq!(VirtAddr::from(0xdead_beefu64), v);
    }

    #[test]
    fn add_advances() {
        let v = VirtAddr::new(16);
        assert_eq!(v.add(4), VirtAddr::new(20));
        assert_eq!(v.checked_add(u64::MAX), None);
        assert_eq!(v.checked_add(4), Some(VirtAddr::new(20)));
    }

    #[test]
    fn distinct_types_do_not_compare() {
        // This is a compile-time property; just exercise both types.
        let v = VirtAddr::new(1);
        let p = PhysAddr::new(1);
        assert_eq!(v.raw(), p.raw());
    }

    #[test]
    fn debug_and_display_are_hex() {
        let v = Vpn::new(0x2a);
        assert_eq!(format!("{v}"), "0x2a");
        assert_eq!(format!("{v:?}"), "Vpn(0x2a)");
        assert_eq!(format!("{v:x}"), "2a");
        assert_eq!(format!("{v:X}"), "2A");
        assert_eq!(format!("{v:b}"), "101010");
        assert_eq!(format!("{v:o}"), "52");
    }

    #[test]
    fn ordering_follows_raw() {
        assert!(Pfn::new(1) < Pfn::new(2));
        let mut v = vec![Vpn::new(3), Vpn::new(1), Vpn::new(2)];
        v.sort();
        assert_eq!(v, vec![Vpn::new(1), Vpn::new(2), Vpn::new(3)]);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(VirtAddr::default().raw(), 0);
        assert_eq!(Pfn::default().raw(), 0);
    }
}
