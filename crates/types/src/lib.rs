//! # cfr-types
//!
//! Address, page, and protection newtypes shared by every crate in the
//! `cfr-sim` workspace (a reproduction of Kadayif et al., *"Generating
//! Physical Addresses Directly for Saving Instruction TLB Energy"*,
//! MICRO 2002).
//!
//! The types here enforce the distinction the paper's whole mechanism rests
//! on: a **virtual address** splits into a *virtual page number* ([`Vpn`])
//! and a *page offset*; translation replaces the [`Vpn`] with a *physical
//! frame number* ([`Pfn`]) while the offset passes through untouched. The
//! Current Frame Register holds exactly one `(Vpn, Pfn, Protection)` triple.
//!
//! ```
//! use cfr_types::{PageGeometry, VirtAddr, Pfn};
//!
//! let geom = PageGeometry::new(4096).unwrap();
//! let va = VirtAddr::new(0x0001_2345);
//! assert_eq!(geom.vpn(va).raw(), 0x12);
//! assert_eq!(geom.offset(va), 0x345);
//! let pa = geom.join(Pfn::new(0x99), geom.offset(va));
//! assert_eq!(pa.raw(), 0x0009_9345);
//! ```

mod addr;
pub mod chaos;
pub mod net;
mod org;
mod page;
mod protection;
pub mod record;
pub mod store;

pub use addr::{Pfn, PhysAddr, VirtAddr, Vpn};
pub use chaos::{
    BackendFault, ChaosBackend, ChaosProxy, FaultPlan, ProxyFault, SplitMix64, CHAOS_PLAN_ENV,
    CHAOS_SEED_ENV,
};
pub use net::{
    claim_lease, HealthReport, LayeredStore, RemoteStore, Request, Response, ServerConfig,
    StoreServer, StoreStats, WireFormat, CLAIM_LEASE_ENV, DEFAULT_DAEMON_ADDR, MAX_FRAME_ENV,
    STORE_ADDR_ENV,
};
pub use org::{AddressingMode, CacheOrganization, TlbOrganization};
pub use page::{PageGeometry, PageGeometryError};
pub use protection::Protection;
pub use record::{fnv1a64, RecordError, RecordReader, RecordWriter};
pub use store::{
    ArtifactStore, ClaimOutcome, FsyncPolicy, GcPolicy, GcReport, ShardOccupancy, StoreBackend,
    StoreLock, DEFAULT_STORE_DIR, LOCK_FILE_NAME, NS_PROGRAMS, NS_RUNS, NS_SCENARIOS, NS_TRACES,
    NS_WALKS, SHARD_COUNT, STORE_DIR_ENV, STORE_FORMAT_VERSION, STORE_FSYNC_ENV, STORE_MAX_AGE_ENV,
    STORE_MAX_BYTES_ENV,
};

/// Number of bytes every instruction occupies in the synthetic ISA.
///
/// The paper assumes instructions are aligned so a single instruction never
/// crosses a page boundary; a fixed 4-byte encoding (as in the Alpha ISA that
/// SimpleScalar models) guarantees that for any power-of-two page size ≥ 4.
pub const INSTRUCTION_BYTES: u64 = 4;
