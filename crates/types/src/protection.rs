//! Page protection bits carried by TLB entries and the CFR.

use core::fmt;

use serde::{Deserialize, Serialize};

/// Page protection bits.
///
/// The paper's CFR format is `<VPN, PFN, Protection/Other bits>`; the OS owns
/// these bits (the application can never write the CFR), so a program cannot
/// change page permissions without a supervisor-mode round trip (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Protection {
    bits: u8,
}

impl Protection {
    /// Readable bit.
    pub const READ: u8 = 1 << 0;
    /// Writable bit.
    pub const WRITE: u8 = 1 << 1;
    /// Executable bit.
    pub const EXECUTE: u8 = 1 << 2;

    /// Creates a protection set from raw bits (extra bits are masked off).
    #[must_use]
    pub const fn from_bits(bits: u8) -> Self {
        Self {
            bits: bits & (Self::READ | Self::WRITE | Self::EXECUTE),
        }
    }

    /// Read + execute: what every instruction page carries.
    #[must_use]
    pub const fn code() -> Self {
        Self::from_bits(Self::READ | Self::EXECUTE)
    }

    /// Read + write: ordinary data page.
    #[must_use]
    pub const fn data() -> Self {
        Self::from_bits(Self::READ | Self::WRITE)
    }

    /// Raw bits.
    #[must_use]
    pub const fn bits(self) -> u8 {
        self.bits
    }

    /// Whether the page may be read.
    #[must_use]
    pub const fn readable(self) -> bool {
        self.bits & Self::READ != 0
    }

    /// Whether the page may be written.
    #[must_use]
    pub const fn writable(self) -> bool {
        self.bits & Self::WRITE != 0
    }

    /// Whether the page may be executed — checked on every fetch that the
    /// CFR satisfies, since the protection bits travel with the translation.
    #[must_use]
    pub const fn executable(self) -> bool {
        self.bits & Self::EXECUTE != 0
    }

    /// Whether this protection grants everything `requested` asks for —
    /// the access check the OS-owned bits exist to enforce (§3.2): an
    /// instruction fetch requests [`Protection::code`], a data access
    /// [`Protection::data`], and a resident translation lacking any
    /// requested bit is a protection fault.
    #[must_use]
    pub const fn permits(self, requested: Protection) -> bool {
        self.bits & requested.bits == requested.bits
    }
}

impl Default for Protection {
    fn default() -> Self {
        Self::code()
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_pages_are_rx() {
        let p = Protection::code();
        assert!(p.readable());
        assert!(!p.writable());
        assert!(p.executable());
        assert_eq!(format!("{p}"), "r-x");
    }

    #[test]
    fn data_pages_are_rw() {
        let p = Protection::data();
        assert!(p.readable());
        assert!(p.writable());
        assert!(!p.executable());
        assert_eq!(format!("{p}"), "rw-");
    }

    #[test]
    fn extra_bits_masked() {
        let p = Protection::from_bits(0xFF);
        assert_eq!(p.bits(), 0b111);
    }

    #[test]
    fn default_is_code() {
        assert_eq!(Protection::default(), Protection::code());
    }

    #[test]
    fn permits_requires_every_requested_bit() {
        assert!(Protection::code().permits(Protection::code()));
        assert!(Protection::data().permits(Protection::data()));
        assert!(
            !Protection::data().permits(Protection::code()),
            "rw- lacks x"
        );
        assert!(
            !Protection::code().permits(Protection::data()),
            "r-x lacks w"
        );
        let read_only = Protection::from_bits(Protection::READ);
        assert!(Protection::code().permits(read_only));
        assert!(!read_only.permits(Protection::code()));
    }
}
