//! The sharded, packed, garbage-collected artifact store.
//!
//! PR 2's run store wrote **one file per key** — simple, but it scales to
//! thousands of records, never evicts, and only ever held pipeline
//! reports. This module replaces that layout with a generic, namespaced
//! artifact store every expensive layer of the stack persists into:
//! pipeline reports (`runs`), functional walk measurements (`walks`), and
//! generated programs (`programs`). Typed codecs live with their types;
//! this store only moves opaque `(namespace, key) → value` record strings.
//!
//! # Layout
//!
//! The store directory holds a fixed number of **shard files**
//! (`shard-00.cfr` … `shard-15.cfr`; [`SHARD_COUNT`] total — O(shards)
//! files no matter how many records). A record's shard is the FNV-1a hash
//! of its `namespace + key` modulo [`SHARD_COUNT`]. Each shard file is an
//! append-only sequence of length-prefixed text records:
//!
//! ```text
//! rec <format-version> <namespace> <stamp> <key-bytes> <value-bytes>\n
//! <key>\n
//! <value>\n
//! ```
//!
//! `stamp` is the record's write time (Unix seconds) and drives age-based
//! GC; `<key>`/`<value>` are single-line record strings produced by the
//! `to_record` codecs. The **last** record for a `(namespace, key)` pair
//! in a shard wins; earlier ones are dead bytes until compaction.
//!
//! An in-memory index (`(namespace, key) → shard/offset/length`) is built
//! by scanning every shard once at open; loads seek straight to the
//! record and verify the stored namespace and key byte-for-byte before
//! returning the value, so a stale index entry, hash collision, or
//! mid-compaction racing reader degrades to a **miss**, never a wrong
//! answer.
//!
//! # Garbage collection
//!
//! [`GcPolicy`] carries two knobs, read from the environment by
//! [`GcPolicy::from_env`]:
//!
//! - `CFR_STORE_MAX_BYTES` — total on-disk budget; when the shard files
//!   exceed it, live records are evicted **oldest first** (by stamp, then
//!   file order) until the live set fits.
//! - `CFR_STORE_MAX_AGE` — maximum record age in seconds; older records
//!   are evicted regardless of the byte budget.
//!
//! [`ArtifactStore::gc`] (run automatically at open and whenever a save
//! pushes the store over budget) drops dead and evicted records by
//! **compacting** each dirty shard: surviving record bytes are copied
//! verbatim into a temp file that is atomically renamed over the shard,
//! so post-compaction reads are byte-identical and a crashed compaction
//! leaves the old shard intact. Bytes another process appended past this
//! process's last-known shard size are copied through (and indexed) too,
//! so a compaction never erases appends it merely hadn't seen; only an
//! append racing the rewrite itself remains best-effort — which is the
//! window the store daemon (`cfr_types::net`) closes entirely by being
//! the directory's sole writer.
//!
//! # Migration
//!
//! A v1 store directory (one `<hash>.run` file per key) is detected at
//! open and migrated transparently: parseable v1 records are re-appended
//! into the `runs` namespace (keeping their file mtime as the stamp) and
//! the old files are removed. Anything unparseable is simply dropped — a
//! cold start, never a crash.
//!
//! # Robustness rules
//!
//! Inherited from PR 2 and still load-bearing:
//!
//! - **Appends are single `write` calls** on `O_APPEND` descriptors; a
//!   torn or interleaved append is skipped by the scanner's resync (it
//!   searches for the next `\nrec ` boundary) and costs one future
//!   recomputation, nothing else.
//! - **Every read failure is a miss** — absent, torn, stale-format,
//!   mismatched, or non-UTF-8 records all mean "recompute and overwrite".
//! - **Format versioning**: records framed with a different
//!   [`STORE_FORMAT_VERSION`] are dead on scan; bump it whenever the
//!   framing changes.

use std::collections::HashMap;
use std::fs::{self, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::record::fnv1a64;

/// Version of the shard-file record framing. Bumping it invalidates every
/// record (they read as dead and are recomputed).
pub const STORE_FORMAT_VERSION: u32 = 2;

/// Number of shard files per store. The directory holds O(`SHARD_COUNT`)
/// files regardless of how many records live in the store.
pub const SHARD_COUNT: u32 = 16;

/// Environment variable overriding the store directory.
pub const STORE_DIR_ENV: &str = "CFR_STORE_DIR";

/// Default store directory, relative to the working directory.
pub const DEFAULT_STORE_DIR: &str = "target/cfr-store";

/// Environment variable capping the store's total on-disk bytes.
pub const STORE_MAX_BYTES_ENV: &str = "CFR_STORE_MAX_BYTES";

/// Environment variable capping record age, in seconds.
pub const STORE_MAX_AGE_ENV: &str = "CFR_STORE_MAX_AGE";

/// Environment variable selecting the shard-append durability policy:
/// `never` (default), `commit`, or `always` — see [`FsyncPolicy`].
pub const STORE_FSYNC_ENV: &str = "CFR_STORE_FSYNC";

/// Namespace holding pipeline run reports (`RunKey → RunReport`).
pub const NS_RUNS: &str = "runs";

/// Namespace holding functional walk measurements.
pub const NS_WALKS: &str = "walks";

/// Namespace holding generated benchmark programs.
pub const NS_PROGRAMS: &str = "programs";

/// Namespace holding pre-decoded compiled traces.
pub const NS_TRACES: &str = "traces";

/// Namespace holding multiprogrammed scenario reports
/// (`ScenarioConfig → ScenarioReport`).
pub const NS_SCENARIOS: &str = "scenarios";

fn now_secs() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs())
}

/// The namespaced `(namespace, key) → value` surface every persisted
/// layer (run reports, walk measurements, generated programs) talks to.
///
/// Implemented by the on-disk [`ArtifactStore`], by the TCP
/// [`RemoteStore`](crate::net::RemoteStore) client, and by the
/// [`LayeredStore`](crate::net::LayeredStore) that stacks the two — so
/// the engine, the typed run store, and the program cache select local
/// vs. remote storage without any call-site changes.
///
/// The contract inherited from the store itself: **every failure is a
/// miss**. A `load` that cannot produce the exact bytes that were saved
/// (absent, torn, disconnected, stale) returns `None` and the caller
/// recomputes; a `save` is best-effort and never propagates an error.
pub trait StoreBackend: Send + Sync + std::fmt::Debug {
    /// Looks `(ns, key)` up; any failure is a miss (`None`).
    fn load(&self, ns: &str, key: &str) -> Option<String>;

    /// Persists `(ns, key) → value`, best-effort.
    fn save(&self, ns: &str, key: &str, value: &str);

    /// Looks a whole batch of `(ns, key)` pairs up; one `Option` per
    /// pair, in order. Networked backends serve the whole batch in one
    /// round trip (`MGET`); the default delegates to [`Self::load`]
    /// one by one, so every backend supports the batched surface.
    fn load_many(&self, items: &[(String, String)]) -> Vec<Option<String>> {
        items.iter().map(|(ns, key)| self.load(ns, key)).collect()
    }

    /// Persists a whole batch of `(ns, key, value)` records,
    /// best-effort. Networked backends batch (`MPUT`); the default
    /// delegates to [`Self::save`] one by one.
    fn save_many(&self, items: &[(String, String, String)]) {
        for (ns, key, value) in items {
            self.save(ns, key, value);
        }
    }

    /// Asks for the exclusive right to compute a missing `(ns, key)`.
    /// Only backends with a global coordinator (the store daemon)
    /// implement this; the default is [`ClaimOutcome::Unsupported`],
    /// which callers treat exactly like `Granted` minus the dedup — they
    /// compute locally, preserving every-failure-is-a-miss.
    fn claim(&self, _ns: &str, _key: &str, _lease: std::time::Duration) -> ClaimOutcome {
        ClaimOutcome::Unsupported
    }

    /// Parks until another client publishes `(ns, key)`, its claim
    /// lapses, or `timeout` elapses; `None` means "compute it yourself".
    /// Meaningful only after a [`ClaimOutcome::Busy`]; the default never
    /// waits.
    fn wait_for(&self, _ns: &str, _key: &str, _timeout: std::time::Duration) -> Option<String> {
        None
    }

    /// Best-effort writes that failed (diagnostics only).
    fn write_errors(&self) -> u64;

    /// Live records in one namespace, as far as this backend can tell
    /// (diagnostics/tests; a remote backend asks the daemon).
    fn namespace_records(&self, ns: &str) -> usize;

    /// Human-readable identity for the `store:` summary line — a
    /// directory path, a `tcp://` address, or both.
    fn describe(&self) -> String;
}

/// What a [`StoreBackend::claim`] returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClaimOutcome {
    /// The value is already stored — no computation needed.
    Hit(String),
    /// The exclusive compute right is this client's for the lease:
    /// compute, then `save` (which publishes to any waiters).
    Granted,
    /// Another live client holds the claim: `wait_for` the value
    /// instead of duplicating the computation.
    Busy,
    /// This backend has no claim coordination (local store, old daemon,
    /// or unreachable daemon): compute locally.
    Unsupported,
}

impl StoreBackend for ArtifactStore {
    fn load(&self, ns: &str, key: &str) -> Option<String> {
        ArtifactStore::load(self, ns, key)
    }

    fn save(&self, ns: &str, key: &str, value: &str) {
        ArtifactStore::save(self, ns, key, value);
    }

    fn write_errors(&self) -> u64 {
        ArtifactStore::write_errors(self)
    }

    fn namespace_records(&self, ns: &str) -> usize {
        ArtifactStore::namespace_records(self, ns)
    }

    fn describe(&self) -> String {
        self.dir().display().to_string()
    }
}

/// Size/age bounds a store enforces at GC time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcPolicy {
    /// Total on-disk byte budget across all shard files (`None` =
    /// unbounded).
    pub max_bytes: Option<u64>,
    /// Maximum record age in seconds (`None` = records never expire).
    pub max_age_secs: Option<u64>,
}

impl GcPolicy {
    /// No bounds: records live until explicitly compacted away.
    #[must_use]
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// Reads [`STORE_MAX_BYTES_ENV`] and [`STORE_MAX_AGE_ENV`];
    /// unset or unparsable values mean unbounded.
    #[must_use]
    pub fn from_env() -> Self {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
        };
        Self {
            max_bytes: parse(STORE_MAX_BYTES_ENV),
            max_age_secs: parse(STORE_MAX_AGE_ENV),
        }
    }

    /// Whether either bound is set.
    #[must_use]
    pub fn bounded(&self) -> bool {
        self.max_bytes.is_some() || self.max_age_secs.is_some()
    }
}

/// Where one live record sits on disk.
#[derive(Clone, Copy, Debug)]
struct Slot {
    shard: u32,
    offset: u64,
    bytes: u64,
    stamp: u64,
}

#[derive(Debug)]
struct Index {
    map: HashMap<(String, String), Slot>,
    /// Physical size of each shard file as last observed by this process.
    file_bytes: Vec<u64>,
    /// Shards whose scanned tail was not a complete record (a torn write
    /// from a crashed process). Appending directly after such a tail
    /// would fuse the new record onto the garbage (`...tornrec ...` has
    /// no `\nrec ` boundary to resync to), so the next append to a dirty
    /// shard is prefixed with a newline guard.
    dirty_tail: Vec<bool>,
}

impl Index {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            file_bytes: vec![0; SHARD_COUNT as usize],
            dirty_tail: vec![false; SHARD_COUNT as usize],
        }
    }

    fn live_bytes(&self) -> u64 {
        self.map.values().map(|s| s.bytes).sum()
    }

    fn total_file_bytes(&self) -> u64 {
        self.file_bytes.iter().sum()
    }
}

/// One record parsed out of a shard byte buffer.
struct ParsedRecord<'a> {
    ns: &'a str,
    stamp: u64,
    key: &'a str,
    value: &'a str,
    /// Total framed length (header line + key line + value line).
    bytes: u64,
}

/// Parses the record starting at `pos`, or `None` if the bytes there are
/// not one complete, current-version, UTF-8 record.
fn parse_record_at(data: &[u8], pos: usize) -> Option<ParsedRecord<'_>> {
    let rest = data.get(pos..)?;
    if !rest.starts_with(b"rec ") {
        return None;
    }
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let header = core::str::from_utf8(&rest[..nl]).ok()?;
    let mut t = header.split_ascii_whitespace();
    if t.next()? != "rec" || t.next()?.parse::<u32>().ok()? != STORE_FORMAT_VERSION {
        return None;
    }
    let ns = t.next()?;
    let stamp = t.next()?.parse::<u64>().ok()?;
    let klen: usize = t.next()?.parse().ok()?;
    let vlen: usize = t.next()?.parse().ok()?;
    if t.next().is_some() {
        return None;
    }
    let key_start = nl + 1;
    let key_end = key_start.checked_add(klen)?;
    let val_start = key_end.checked_add(1)?;
    let val_end = val_start.checked_add(vlen)?;
    // Fully checked arithmetic: a corrupt length header (e.g. lengths
    // summing near usize::MAX) must be a miss, never an overflow panic.
    let total = val_end.checked_add(1)?;
    if total > rest.len() || rest[key_end] != b'\n' || rest[val_end] != b'\n' {
        return None;
    }
    Some(ParsedRecord {
        ns,
        stamp,
        key: core::str::from_utf8(&rest[key_start..key_end]).ok()?,
        value: core::str::from_utf8(&rest[val_start..val_end]).ok()?,
        bytes: total as u64,
    })
}

fn find_subsequence(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack
        .windows(needle.len())
        .position(|window| window == needle)
}

/// Per-shard occupancy figures (diagnostics / `store_gc`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardOccupancy {
    /// Shard number.
    pub shard: u32,
    /// Physical file size in bytes.
    pub file_bytes: u64,
    /// Live (latest-per-key) records in this shard.
    pub live_records: u64,
    /// Bytes those live records occupy.
    pub live_bytes: u64,
}

/// What one [`ArtifactStore::gc`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcReport {
    /// Live records after the pass.
    pub live_records: u64,
    /// Bytes those records occupy (equals the shard files' total size
    /// after a clean pass).
    pub live_bytes: u64,
    /// Dead (superseded or unparseable) bytes dropped by compaction.
    pub dead_bytes_dropped: u64,
    /// Records evicted because they exceeded `max_age_secs`.
    pub evicted_age: u64,
    /// Records evicted (oldest first) to fit under `max_bytes`.
    pub evicted_size: u64,
    /// Shard files rewritten.
    pub shards_rewritten: u32,
}

/// When shard appends are flushed to stable storage.
///
/// The store's crash-safety story does not *depend* on fsync — a torn
/// tail is resynced past at the next open and the record recomputed —
/// so the default trades durability of the last few appends for append
/// throughput. The daemon raises the bar for shared stores.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync; the OS flushes when it pleases. A machine crash can
    /// tear the last appends (recovered as misses at next open).
    #[default]
    Never,
    /// Fsync at batch commit points ([`ArtifactStore::commit_batch`],
    /// called by the daemon after each `MPUT`) and before compaction
    /// renames — single appends still ride the OS cache.
    Commit,
    /// Fsync after every append. Maximum durability, slowest saves.
    Always,
}

impl FsyncPolicy {
    /// Reads [`STORE_FSYNC_ENV`]; unset or unrecognized means `Never`.
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var(STORE_FSYNC_ENV).as_deref().map(str::trim) {
            Ok("commit") => Self::Commit,
            Ok("always") => Self::Always,
            _ => Self::Never,
        }
    }
}

/// A sharded, packed, garbage-collected `(namespace, key) → value` store
/// of record strings, shared by every process on the machine.
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    policy: GcPolicy,
    fsync: FsyncPolicy,
    index: Mutex<Index>,
    write_errors: AtomicU64,
    evicted: AtomicU64,
    tmp_counter: AtomicU64,
    migrated: u64,
}

/// Name of the advisory lock file a serving daemon holds exclusively
/// inside its store directory.
pub const LOCK_FILE_NAME: &str = "daemon.lock";

/// The exclusive advisory lock a store-serving daemon holds on its
/// directory (see [`ArtifactStore::open_exclusive`]). Dropping it
/// releases the lock.
#[derive(Debug)]
pub struct StoreLock {
    _file: fs::File,
}

/// The error returned when a store directory is held by a daemon.
fn daemon_locked_error(dir: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::WouldBlock,
        format!(
            "store directory {} is exclusively locked by a cfr-store-serve daemon; \
             go through it by setting {} (or stop the daemon first)",
            dir.display(),
            crate::net::STORE_ADDR_ENV,
        ),
    )
}

/// Opens (creating if missing) the directory's lock file.
fn open_lock_file(dir: &Path) -> io::Result<fs::File> {
    OpenOptions::new()
        .create(true)
        .read(true)
        .write(true)
        .truncate(false)
        .open(dir.join(LOCK_FILE_NAME))
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`, migrating any
    /// v1 one-file-per-key layout found there and applying `policy`'s
    /// bounds once.
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be created, or if a
    /// `cfr-store-serve` daemon holds the directory's exclusive lock —
    /// the daemon must be the sole shard owner for its compaction to be
    /// loss-free, so local opens are refused while it runs (clients go
    /// through `$CFR_STORE_ADDR` instead). Unreadable shard files or v1
    /// records are not errors — they read as empty/cold.
    pub fn open(dir: impl Into<PathBuf>, policy: GcPolicy) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        // Probe the daemon lock without holding it: a held probe would
        // in turn refuse the daemon.
        let probe = open_lock_file(&dir)?;
        match probe.try_lock() {
            Ok(()) => drop(probe), // releases the probe lock
            Err(fs::TryLockError::WouldBlock) => return Err(daemon_locked_error(&dir)),
            Err(fs::TryLockError::Error(e)) => return Err(e),
        }
        Self::open_scanned(dir, policy)
    }

    /// Opens the store while taking the directory's **exclusive advisory
    /// lock** — the daemon entry point. Concurrent [`ArtifactStore::open`]
    /// calls (and other daemons) are refused for as long as the returned
    /// [`StoreLock`] lives.
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be created or another process
    /// already holds the lock.
    pub fn open_exclusive(
        dir: impl Into<PathBuf>,
        policy: GcPolicy,
    ) -> io::Result<(Self, StoreLock)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let file = open_lock_file(&dir)?;
        match file.try_lock() {
            Ok(()) => {}
            Err(fs::TryLockError::WouldBlock) => return Err(daemon_locked_error(&dir)),
            Err(fs::TryLockError::Error(e)) => return Err(e),
        }
        let store = Self::open_scanned(dir, policy)?;
        Ok((store, StoreLock { _file: file }))
    }

    fn open_scanned(dir: PathBuf, policy: GcPolicy) -> io::Result<Self> {
        let v1 = collect_v1_records(&dir);
        let mut index = Index::new();
        for shard in 0..SHARD_COUNT {
            scan_shard(&dir, shard, &mut index);
        }
        let mut store = Self {
            dir,
            policy,
            fsync: FsyncPolicy::from_env(),
            index: Mutex::new(index),
            write_errors: AtomicU64::new(0),
            evicted: AtomicU64::new(0),
            tmp_counter: AtomicU64::new(0),
            migrated: 0,
        };
        for (path, key, value, stamp) in v1 {
            // A record already in the shards is newer than any straggler
            // v1 file (migration appends, and appends win) — skip it.
            let present = store
                .index
                .lock()
                .expect("store index poisoned")
                .map
                .contains_key(&(NS_RUNS.to_string(), key.clone()));
            if present {
                let _ = fs::remove_file(&path);
                continue;
            }
            // The old file is removed only once the replacement append
            // actually landed — a failed write must not lose a record
            // that was intact on disk.
            if store.try_save(NS_RUNS, &key, &value, stamp).is_ok() {
                store.migrated += 1;
                let _ = fs::remove_file(&path);
            } else {
                store.write_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        if store.policy.bounded() {
            let _ = store.gc();
        }
        Ok(store)
    }

    /// Opens the machine-shared default store: `$CFR_STORE_DIR` if set,
    /// else [`DEFAULT_STORE_DIR`], with the environment's GC policy.
    ///
    /// # Errors
    ///
    /// Errors if the directory cannot be created.
    pub fn open_default() -> io::Result<Self> {
        let dir = std::env::var_os(STORE_DIR_ENV)
            .map_or_else(|| PathBuf::from(DEFAULT_STORE_DIR), PathBuf::from);
        Self::open(dir, GcPolicy::from_env())
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The GC bounds this store enforces.
    #[must_use]
    pub fn policy(&self) -> GcPolicy {
        self.policy
    }

    /// Overrides the environment's [`FsyncPolicy`] — for daemons and
    /// tests that pick durability explicitly instead of mutating the
    /// process environment.
    #[must_use]
    pub fn with_fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// The durability policy shard appends run under.
    #[must_use]
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.fsync
    }

    /// Best-effort writes that failed (diagnostics only; a failed write
    /// costs a future process one recomputation, nothing else).
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    /// Records evicted by GC over this store's lifetime.
    #[must_use]
    pub fn evicted_records(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    /// v1 records migrated into the sharded layout at open.
    #[must_use]
    pub fn migrated_records(&self) -> u64 {
        self.migrated
    }

    fn shard_of(&self, ns: &str, key: &str) -> u32 {
        // '\n' can never appear inside a record string, so it is a safe
        // separator: ("a", "bc") and ("ab", "c") hash differently.
        (fnv1a64(&format!("{ns}\n{key}")) % u64::from(SHARD_COUNT)) as u32
    }

    fn shard_path(&self, shard: u32) -> PathBuf {
        self.dir.join(format!("shard-{shard:02}.cfr"))
    }

    /// Looks `(ns, key)` up. Any failure — absent, torn, compacted away
    /// underneath us, colliding bytes — is a miss (`None`); the caller
    /// recomputes and overwrites.
    ///
    /// The index lock is held across the file read, so loads serialize
    /// with this process's saves and GC passes: a load can never observe
    /// a compaction mid-rewrite. That linearizability is what lets the
    /// store daemon (the sole shard owner) promise read-your-writes and
    /// loss-free compaction to its clients; only an *external* process
    /// rewriting the shards (no daemon, multi-process mode) can still
    /// produce the stale-read miss the verification below degrades.
    #[must_use]
    pub fn load(&self, ns: &str, key: &str) -> Option<String> {
        let map_key = (ns.to_string(), key.to_string());
        let mut index = self.index.lock().expect("store index poisoned");
        let slot = index.map.get(&map_key).copied()?;
        let value = self.read_slot(ns, key, slot);
        if value.is_none() {
            // The shard changed underneath the index (another process
            // compacted it). Drop the stale entry so a later save can
            // repair it.
            index.map.remove(&map_key);
        }
        value
    }

    fn read_slot(&self, ns: &str, key: &str, slot: Slot) -> Option<String> {
        let mut f = fs::File::open(self.shard_path(slot.shard)).ok()?;
        f.seek(SeekFrom::Start(slot.offset)).ok()?;
        let mut buf = vec![0u8; usize::try_from(slot.bytes).ok()?];
        f.read_exact(&mut buf).ok()?;
        let rec = parse_record_at(&buf, 0)?;
        // Verify the stored namespace and key byte-for-byte against the
        // request, so stale offsets and collisions degrade to misses
        // instead of serving a wrong value.
        (rec.bytes == slot.bytes && rec.ns == ns && rec.key == key).then(|| rec.value.to_string())
    }

    /// Persists `(ns, key) → value`, stamped with the current time.
    /// Best-effort: an I/O failure is counted (see
    /// [`ArtifactStore::write_errors`]) but never propagated.
    pub fn save(&self, ns: &str, key: &str, value: &str) {
        self.save_stamped(ns, key, value, now_secs());
    }

    /// [`ArtifactStore::save`] with an explicit stamp — used by migration
    /// (to keep a record's original age) and by GC tests/tooling.
    ///
    /// # Panics
    ///
    /// Panics if `ns` is not a single whitespace-free token or if `key`
    /// or `value` contain a newline (the framing's record separator).
    pub fn save_stamped(&self, ns: &str, key: &str, value: &str, stamp: u64) {
        assert!(
            !ns.is_empty() && !ns.contains(char::is_whitespace),
            "namespace must be one token: {ns:?}"
        );
        assert!(
            !key.contains('\n') && !value.contains('\n') && !key.is_empty(),
            "keys and values are single-line record strings"
        );
        if self.try_save(ns, key, value, stamp).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn try_save(&self, ns: &str, key: &str, value: &str, stamp: u64) -> io::Result<()> {
        let record = format!(
            "rec {STORE_FORMAT_VERSION} {ns} {stamp} {} {}\n{key}\n{value}\n",
            key.len(),
            value.len(),
        );
        let shard = self.shard_of(ns, key);
        let mut index = self.index.lock().expect("store index poisoned");
        let mut f = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.shard_path(shard))?;
        // A shard whose scanned tail was torn gets one newline guard in
        // front of the record, restoring the `\nrec ` boundary scanners
        // resync to. The guard byte is dead and compacts away later.
        let buf = if index.dirty_tail[shard as usize] {
            format!("\n{record}")
        } else {
            record.clone()
        };
        // One write call: concurrent appenders from other processes can
        // only interleave whole records (and a torn tail is resynced past
        // by the scanner).
        f.write_all(buf.as_bytes())?;
        if self.fsync == FsyncPolicy::Always {
            f.sync_all()?;
        }
        let end = f.stream_position()?;
        index.file_bytes[shard as usize] = end;
        index.dirty_tail[shard as usize] = false;
        index.map.insert(
            (ns.to_string(), key.to_string()),
            Slot {
                shard,
                offset: end - record.len() as u64,
                bytes: record.len() as u64,
                stamp,
            },
        );
        if let Some(cap) = self.policy.max_bytes {
            if index.total_file_bytes() > cap {
                self.gc_locked(&mut index, self.policy);
            }
        }
        Ok(())
    }

    /// Applies the GC policy and compacts: drops dead bytes, evicts
    /// expired records, then evicts oldest-first until the live set fits
    /// the byte budget. Dirty shards are rewritten via atomic rename;
    /// surviving records keep their exact bytes.
    pub fn gc(&self) -> GcReport {
        self.gc_with(self.policy)
    }

    /// [`ArtifactStore::gc`] under an explicit policy, independent of the
    /// one the store was opened with. This is how the store daemon moves
    /// GC **off the save path**: it opens the store unbounded (so saves
    /// never compact inline) and applies the real age/size policy from a
    /// background thread and the `GC` protocol command.
    pub fn gc_with(&self, policy: GcPolicy) -> GcReport {
        let mut index = self.index.lock().expect("store index poisoned");
        self.gc_locked(&mut index, policy)
    }

    #[allow(clippy::cast_possible_truncation)]
    fn gc_locked(&self, index: &mut Index, policy: GcPolicy) -> GcReport {
        let now = now_secs();
        let mut report = GcReport::default();

        // Age eviction.
        if let Some(age) = policy.max_age_secs {
            let expired: Vec<(String, String)> = index
                .map
                .iter()
                .filter(|(_, s)| s.stamp.saturating_add(age) < now)
                .map(|(k, _)| k.clone())
                .collect();
            report.evicted_age = expired.len() as u64;
            for k in expired {
                index.map.remove(&k);
            }
        }

        // Size eviction: oldest first (stamp, then shard file order).
        if let Some(cap) = policy.max_bytes {
            let mut live = index.live_bytes();
            if live > cap {
                let mut order: Vec<((String, String), Slot)> =
                    index.map.iter().map(|(k, s)| (k.clone(), *s)).collect();
                order.sort_by_key(|(_, s)| (s.stamp, s.shard, s.offset));
                for (k, s) in order {
                    if live <= cap {
                        break;
                    }
                    live -= s.bytes;
                    index.map.remove(&k);
                    report.evicted_size += 1;
                }
            }
        }

        // Compact every shard whose file holds more than its live bytes.
        for shard in 0..SHARD_COUNT {
            let mut survivors: Vec<((String, String), Slot)> = index
                .map
                .iter()
                .filter(|(_, s)| s.shard == shard)
                .map(|(k, s)| (k.clone(), *s))
                .collect();
            survivors.sort_by_key(|(_, s)| s.offset);
            let live_bytes: u64 = survivors.iter().map(|(_, s)| s.bytes).sum();
            let file_bytes = index.file_bytes[shard as usize];
            if live_bytes == file_bytes {
                continue;
            }
            report.dead_bytes_dropped += file_bytes.saturating_sub(live_bytes);
            let path = self.shard_path(shard);
            let data = fs::read(&path).unwrap_or_default();
            let mut out = Vec::with_capacity(live_bytes as usize);
            let mut moved = Vec::with_capacity(survivors.len());
            for (k, s) in survivors {
                let start = s.offset as usize;
                let end = start + s.bytes as usize;
                // Copy the surviving record bytes *verbatim*, so a
                // post-compaction read is byte-identical to the original.
                if end <= data.len() {
                    let new_offset = out.len() as u64;
                    out.extend_from_slice(&data[start..end]);
                    moved.push((
                        k,
                        Slot {
                            shard,
                            offset: new_offset,
                            bytes: s.bytes,
                            stamp: s.stamp,
                        },
                    ));
                } else {
                    // The file shrank underneath us (external change):
                    // the record is lost; drop it from the index.
                    index.map.remove(&k);
                }
            }
            // Bytes beyond our last-known size were appended by another
            // process (a degraded-mode daemon client, or a non-daemon
            // binary sharing the directory) after we last looked. They
            // are not ours to drop: copy them verbatim after the
            // survivors and index whatever parses, so one process's
            // compaction never erases another's fresh appends. (An
            // append landing *during* the read-rename window below is
            // still best-effort, as before — the daemon's value is that
            // nothing else writes while it owns the directory.)
            let mut foreign_tail_torn = false;
            if data.len() as u64 > file_bytes {
                let tail_start = out.len();
                out.extend_from_slice(&data[file_bytes as usize..]);
                let mut pos = tail_start;
                while pos < out.len() {
                    if let Some(rec) = parse_record_at(&out, pos) {
                        moved.push((
                            (rec.ns.to_string(), rec.key.to_string()),
                            Slot {
                                shard,
                                offset: pos as u64,
                                bytes: rec.bytes,
                                stamp: rec.stamp,
                            },
                        ));
                        pos += rec.bytes as usize;
                    } else {
                        match find_subsequence(&out[pos + 1..], b"\nrec ") {
                            Some(i) => pos = pos + 1 + i + 1,
                            None => {
                                foreign_tail_torn = true;
                                break;
                            }
                        }
                    }
                }
            }
            let tmp = self.dir.join(format!(
                "shard-{shard:02}.tmp.{}.{}",
                std::process::id(),
                self.tmp_counter.fetch_add(1, Ordering::Relaxed),
            ));
            // Under a durability policy the tmp file is synced *before*
            // the rename, so a crash right after the rename can never
            // leave a shard pointing at unflushed data.
            let written = fs::write(&tmp, &out)
                .and_then(|()| {
                    if self.fsync == FsyncPolicy::Never {
                        Ok(())
                    } else {
                        fs::File::open(&tmp).and_then(|f| f.sync_all())
                    }
                })
                .and_then(|()| fs::rename(&tmp, &path));
            if written.is_err() {
                let _ = fs::remove_file(&tmp);
                self.write_errors.fetch_add(1, Ordering::Relaxed);
                continue; // old shard file intact; index offsets still valid
            }
            for (k, s) in moved {
                index.map.insert(k, s);
            }
            index.file_bytes[shard as usize] = out.len() as u64;
            index.dirty_tail[shard as usize] = foreign_tail_torn;
            report.shards_rewritten += 1;
        }

        report.live_records = index.map.len() as u64;
        report.live_bytes = index.live_bytes();
        self.evicted
            .fetch_add(report.evicted_age + report.evicted_size, Ordering::Relaxed);
        report
    }

    /// Live (latest-per-key) records across all namespaces.
    #[must_use]
    pub fn live_records(&self) -> usize {
        self.index.lock().expect("store index poisoned").map.len()
    }

    /// Live records in one namespace.
    #[must_use]
    pub fn namespace_records(&self, ns: &str) -> usize {
        self.index
            .lock()
            .expect("store index poisoned")
            .map
            .keys()
            .filter(|(n, _)| n == ns)
            .count()
    }

    /// Bytes the live records occupy.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.index
            .lock()
            .expect("store index poisoned")
            .live_bytes()
    }

    /// Total physical size of the shard files (live + dead bytes).
    #[must_use]
    pub fn file_bytes(&self) -> u64 {
        self.index
            .lock()
            .expect("store index poisoned")
            .total_file_bytes()
    }

    /// A batch commit point: under [`FsyncPolicy::Commit`], fsyncs every
    /// shard file so the batch that just landed survives a machine
    /// crash. A no-op under the other policies (`Never` skips syncs
    /// entirely; `Always` already synced each append).
    pub fn commit_batch(&self) {
        if self.fsync == FsyncPolicy::Commit {
            self.sync_shards();
        }
    }

    /// Fsyncs every shard file, unconditionally — the drain path's last
    /// act before the daemon releases its lock, regardless of policy.
    /// Best-effort: a shard that cannot be opened or synced is skipped
    /// (its tail recovers as a miss, like any torn write).
    pub fn sync_shards(&self) {
        let _index = self.index.lock().expect("store index poisoned");
        for shard in 0..SHARD_COUNT {
            if let Ok(f) = fs::File::open(self.shard_path(shard)) {
                let _ = f.sync_all();
            }
        }
    }

    /// Re-reads every indexed record from disk and verifies it
    /// byte-for-byte (namespace, key, framing), returning
    /// `(readable, corrupt)` counts. The chaos soak's recovery proof:
    /// after an adversarial run plus a fresh open (whose scan resyncs
    /// past torn tails), `corrupt` must be zero — every record that
    /// *survived* is exactly what was written.
    #[must_use]
    pub fn verify_records(&self) -> (u64, u64) {
        let index = self.index.lock().expect("store index poisoned");
        let mut readable = 0;
        let mut corrupt = 0;
        for ((ns, key), slot) in &index.map {
            if self.read_slot(ns, key, *slot).is_some() {
                readable += 1;
            } else {
                corrupt += 1;
            }
        }
        (readable, corrupt)
    }

    /// Per-shard occupancy, in shard order.
    #[must_use]
    pub fn shard_occupancy(&self) -> Vec<ShardOccupancy> {
        let index = self.index.lock().expect("store index poisoned");
        let mut out: Vec<ShardOccupancy> = (0..SHARD_COUNT)
            .map(|shard| ShardOccupancy {
                shard,
                file_bytes: index.file_bytes[shard as usize],
                live_records: 0,
                live_bytes: 0,
            })
            .collect();
        for slot in index.map.values() {
            let o = &mut out[slot.shard as usize];
            o.live_records += 1;
            o.live_bytes += slot.bytes;
        }
        out
    }
}

fn scan_shard(dir: &Path, shard: u32, index: &mut Index) {
    let path = dir.join(format!("shard-{shard:02}.cfr"));
    let Ok(data) = fs::read(&path) else {
        index.file_bytes[shard as usize] = 0;
        return;
    };
    index.file_bytes[shard as usize] = data.len() as u64;
    let mut pos = 0usize;
    while pos < data.len() {
        if let Some(rec) = parse_record_at(&data, pos) {
            // Later records win: append order is write order.
            index.map.insert(
                (rec.ns.to_string(), rec.key.to_string()),
                Slot {
                    shard,
                    offset: pos as u64,
                    bytes: rec.bytes,
                    stamp: rec.stamp,
                },
            );
            pos += rec.bytes as usize;
        } else {
            // Corrupt or foreign bytes: resync to the next plausible
            // record boundary; everything skipped is dead.
            match find_subsequence(&data[pos + 1..], b"\nrec ") {
                Some(i) => pos = pos + 1 + i + 1,
                None => {
                    // The tail is garbage: the next append must restore
                    // the record boundary with a newline guard.
                    index.dirty_tail[shard as usize] = true;
                    break;
                }
            }
        }
    }
}

/// Reads every v1 (`<hash>.run`) record file in `dir`, returning the
/// parseable ones as `(path, key, value, stamp)`. The
/// parseable files are left in place — the caller removes each only
/// after its replacement append has landed in a shard. Unparseable
/// `.run` files hold nothing recoverable and are consumed here (a cold
/// start for that key, never a crash).
fn collect_v1_records(dir: &Path) -> Vec<(PathBuf, String, String, u64)> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_none_or(|ext| ext != "run") {
            continue;
        }
        let parsed = fs::read_to_string(&path)
            .ok()
            .and_then(|text| parse_v1_record(&text));
        match parsed {
            Some((key, value)) => {
                let stamp = fs::metadata(&path)
                    .ok()
                    .and_then(|m| m.modified().ok())
                    .and_then(|t| t.duration_since(UNIX_EPOCH).ok())
                    .map_or_else(now_secs, |d| d.as_secs());
                out.push((path, key, value, stamp));
            }
            None => {
                let _ = fs::remove_file(&path);
            }
        }
    }
    out
}

/// Parses a v1 record file (`cfr-store 1\nkey <key record>\nreport
/// <report record>`) into its key and value record strings. The report
/// record's own leading `report` tag is part of the value.
fn parse_v1_record(text: &str) -> Option<(String, String)> {
    let tokens: Vec<&str> = text.split_ascii_whitespace().collect();
    if tokens.len() < 5 || tokens[0] != "cfr-store" || tokens[1] != "1" || tokens[2] != "key" {
        return None;
    }
    let section = tokens.iter().skip(3).position(|t| *t == "report")? + 3;
    (section + 1 < tokens.len()).then(|| {
        (
            tokens[3..section].join(" "),
            tokens[section + 1..].join(" "),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cfr-artifact-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open(dir: &Path) -> ArtifactStore {
        ArtifactStore::open(dir, GcPolicy::unbounded()).unwrap()
    }

    #[test]
    fn exclusive_lock_refuses_concurrent_opens() {
        let dir = temp_dir("lock");
        let (store, lock) = ArtifactStore::open_exclusive(&dir, GcPolicy::unbounded()).unwrap();
        store.save("runs", "k", "v 1");
        // While the daemon holds the lock, a local open is refused with
        // an error that names the daemon and the way around it.
        let err = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap_err();
        assert!(err.to_string().contains("cfr-store-serve"), "{err}");
        assert!(
            err.to_string().contains(crate::net::STORE_ADDR_ENV),
            "{err}"
        );
        // A second daemon over the same directory is refused too.
        assert!(ArtifactStore::open_exclusive(&dir, GcPolicy::unbounded()).is_err());
        drop(lock);
        // Releasing the lock re-admits local opens, data intact.
        let reopened = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        assert_eq!(reopened.load("runs", "k").as_deref(), Some("v 1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_opens_do_not_exclude_each_other() {
        // The probe must not leave the lock held: two sequential opens
        // and a daemon start after a plain open all succeed.
        let dir = temp_dir("lock-probe");
        let a = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        a.save("runs", "k", "v 1");
        let b = ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap();
        assert_eq!(b.load("runs", "k").as_deref(), Some("v 1"));
        let daemon = ArtifactStore::open_exclusive(&dir, GcPolicy::unbounded());
        assert!(daemon.is_ok(), "probe must release the advisory lock");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_then_load_round_trips() {
        let dir = temp_dir("roundtrip");
        let store = open(&dir);
        assert_eq!(store.load("runs", "key a"), None, "cold store");
        store.save("runs", "key a", "value 1 2 3");
        assert_eq!(store.load("runs", "key a").as_deref(), Some("value 1 2 3"));
        // A second store over the same directory (= a fresh process)
        // rebuilds the index from the shard files.
        let other = open(&dir);
        assert_eq!(other.load("runs", "key a").as_deref(), Some("value 1 2 3"));
        assert_eq!(other.live_records(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn namespaces_are_disjoint() {
        let dir = temp_dir("namespaces");
        let store = open(&dir);
        store.save("runs", "shared-key", "a run");
        store.save("walks", "shared-key", "a walk");
        assert_eq!(store.load("runs", "shared-key").as_deref(), Some("a run"));
        assert_eq!(store.load("walks", "shared-key").as_deref(), Some("a walk"));
        assert_eq!(store.load("programs", "shared-key"), None);
        assert_eq!(store.namespace_records("runs"), 1);
        assert_eq!(store.namespace_records("walks"), 1);
        assert_eq!(store.namespace_records("programs"), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn last_write_wins_and_leaves_dead_bytes() {
        let dir = temp_dir("lastwins");
        let store = open(&dir);
        store.save("runs", "k", "old");
        store.save("runs", "k", "new");
        assert_eq!(store.load("runs", "k").as_deref(), Some("new"));
        assert_eq!(store.live_records(), 1);
        assert!(
            store.file_bytes() > store.live_bytes(),
            "old record is dead"
        );
        // A rescan agrees.
        let other = open(&dir);
        assert_eq!(other.load("runs", "k").as_deref(), Some("new"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_holds_o_shards_files() {
        let dir = temp_dir("files");
        let store = open(&dir);
        for i in 0..200 {
            store.save("runs", &format!("key-{i}"), "v");
        }
        let files = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name() != LOCK_FILE_NAME)
            .count();
        assert!(
            files <= SHARD_COUNT as usize,
            "200 records must not mean 200 files: {files}"
        );
        assert_eq!(store.live_records(), 200);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_tail_and_garbage_resync() {
        let dir = temp_dir("resync");
        let store = open(&dir);
        store.save("runs", "a", "first");
        // Append garbage (a torn write from a crashed process), then a
        // valid record after it via a fresh handle.
        let shard = store.shard_path(store.shard_of("runs", "a"));
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(b"rec 2 runs 0 999 999\ntorn").unwrap();
        drop(f);
        let second = open(&dir);
        assert_eq!(
            second.load("runs", "a").as_deref(),
            Some("first"),
            "record before the tear survives"
        );
        second.save("runs", "b", "after");
        let third = open(&dir);
        assert_eq!(third.load("runs", "b").as_deref(), Some("after"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_after_torn_tail_restores_the_record_boundary() {
        let dir = temp_dir("dirtytail");
        let store = open(&dir);
        store.save("runs", "k", "v1");
        // A crashed writer left a torn tail with no trailing newline.
        let shard = store.shard_path(store.shard_of("runs", "k"));
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(b"complete garbage with no newline").unwrap();
        drop(f);
        // A fresh handle saves the same key — which appends to the *same*
        // shard, right after the garbage. Without the newline guard the
        // new record would fuse onto the tail and be unrecoverable.
        let second = open(&dir);
        assert_eq!(second.load("runs", "k").as_deref(), Some("v1"));
        second.save("runs", "k", "v2");
        assert_eq!(second.load("runs", "k").as_deref(), Some("v2"));
        let third = open(&dir);
        assert_eq!(third.load("runs", "k").as_deref(), Some("v2"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn absurd_length_headers_are_misses_not_panics() {
        // A corrupt length header whose spans land exactly on usize::MAX
        // must fail the checked bounds (a miss), not overflow-panic the
        // scanner. Solve for vlen so that val_end == usize::MAX.
        let dir = temp_dir("absurd");
        let store = open(&dir);
        store.save("runs", "k", "v");
        let shard = store.shard_path(store.shard_of("runs", "k"));
        let mut vlen = usize::MAX - 40;
        for _ in 0..4 {
            let prefix = format!("rec {STORE_FORMAT_VERSION} runs 0 1 {vlen}\n");
            vlen = usize::MAX - prefix.len() - 2;
        }
        fs::write(
            &shard,
            format!("rec {STORE_FORMAT_VERSION} runs 0 1 {vlen}\nK\n"),
        )
        .unwrap();
        let reopened = open(&dir); // the scan must survive
        assert_eq!(reopened.load("runs", "k"), None, "corrupt header = miss");
        reopened.save("runs", "k", "repaired");
        assert_eq!(reopened.load("runs", "k").as_deref(), Some("repaired"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_format_version_is_dead() {
        let dir = temp_dir("version");
        let store = open(&dir);
        store.save("runs", "k", "v");
        let shard = store.shard_path(store.shard_of("runs", "k"));
        let text = fs::read_to_string(&shard).unwrap();
        let stale = text.replacen(
            &format!("rec {STORE_FORMAT_VERSION} "),
            &format!("rec {} ", STORE_FORMAT_VERSION + 1),
            1,
        );
        assert_ne!(stale, text);
        fs::write(&shard, stale).unwrap();
        let reader = open(&dir);
        assert_eq!(reader.load("runs", "k"), None, "future format is a miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_index_offset_degrades_to_a_miss() {
        let dir = temp_dir("stale");
        let a = open(&dir);
        a.save("runs", "k1", "value one with some length");
        a.save("runs", "k2", "value two");
        // A second handle compacts the store underneath `a` after `k1`
        // gains a superseding record (shifting k2's offset).
        let b = open(&dir);
        b.save("runs", "k1", "replacement");
        let report = b.gc();
        assert!(report.dead_bytes_dropped > 0);
        // `a`'s index predates both the new record and the compaction:
        // its offsets are stale. Loads must miss, never return garbage.
        for key in ["k1", "k2"] {
            let got = a.load("runs", key);
            assert!(
                got.is_none() || got.as_deref() == Some("value two"),
                "stale read must be a miss or the true record: {got:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_drops_dead_bytes_and_keeps_exact_values() {
        let dir = temp_dir("compact");
        let store = open(&dir);
        for i in 0..20 {
            store.save("runs", "hot", &format!("version {i}"));
        }
        store.save("walks", "cool", "unchanged 0x3fb999999999999a");
        let before = store.file_bytes();
        let report = store.gc();
        assert!(report.dead_bytes_dropped > 0);
        assert!(store.file_bytes() < before);
        assert_eq!(store.file_bytes(), store.live_bytes());
        assert_eq!(store.load("runs", "hot").as_deref(), Some("version 19"));
        assert_eq!(
            store.load("walks", "cool").as_deref(),
            Some("unchanged 0x3fb999999999999a"),
            "post-compaction reads are byte-identical"
        );
        // A fresh scan of the compacted files agrees.
        let other = open(&dir);
        assert_eq!(other.load("runs", "hot").as_deref(), Some("version 19"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_preserves_another_processes_fresh_appends() {
        // The loss mode carried since PR 3: process A compacts a shard
        // while process B's append (which A's index has never seen) sits
        // at its tail — A's rewrite used to truncate B's record. The
        // tail must survive the compaction verbatim and become visible
        // to A immediately.
        let dir = temp_dir("foreign");
        let a = open(&dir);
        a.save("runs", "mine", "v1");
        a.save("runs", "mine", "v2"); // dead bytes so the shard compacts
        let shard = a.shard_of("runs", "mine");
        let foreign_key = (0..)
            .map(|i| format!("foreign-{i}"))
            .find(|k| a.shard_of("runs", k) == shard)
            .expect("some key shares the shard");
        // "Process B": a fresh handle appends after A last looked.
        let b = open(&dir);
        b.save("runs", &foreign_key, "foreign value");
        let report = a.gc();
        assert!(report.dead_bytes_dropped > 0, "the v1 record was dead");
        assert_eq!(a.load("runs", "mine").as_deref(), Some("v2"));
        assert_eq!(
            a.load("runs", &foreign_key).as_deref(),
            Some("foreign value"),
            "B's fresh append survives A's compaction and is indexed"
        );
        // A fresh scan of the rewritten shard agrees byte-for-byte.
        let c = open(&dir);
        assert_eq!(c.load("runs", "mine").as_deref(), Some("v2"));
        assert_eq!(
            c.load("runs", &foreign_key).as_deref(),
            Some("foreign value")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn size_cap_evicts_oldest_first() {
        let dir = temp_dir("evict");
        let payload = "x".repeat(200);
        let store = ArtifactStore::open(
            &dir,
            GcPolicy {
                max_bytes: Some(3000),
                max_age_secs: None,
            },
        )
        .unwrap();
        for i in 0..30u64 {
            store.save_stamped("runs", &format!("key-{i:02}"), &payload, 1000 + i);
        }
        assert!(
            store.file_bytes() <= 3000,
            "auto-GC keeps the store under budget: {}",
            store.file_bytes()
        );
        assert!(store.evicted_records() > 0);
        // The survivors are exactly the newest records: a contiguous
        // suffix of the insertion order.
        let alive: Vec<bool> = (0..30u64)
            .map(|i| store.load("runs", &format!("key-{i:02}")).is_some())
            .collect();
        let first_alive = alive.iter().position(|a| *a).expect("someone survives");
        assert!(first_alive > 0, "the oldest record must be evicted");
        assert!(
            alive[first_alive..].iter().all(|a| *a),
            "eviction is oldest-first: {alive:?}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn age_cap_expires_old_records() {
        let dir = temp_dir("age");
        let store = ArtifactStore::open(
            &dir,
            GcPolicy {
                max_bytes: None,
                max_age_secs: Some(3600),
            },
        )
        .unwrap();
        store.save_stamped("runs", "ancient", "v", 12); // 1970
        store.save("runs", "fresh", "v");
        let report = store.gc();
        assert_eq!(report.evicted_age, 1);
        assert_eq!(store.load("runs", "ancient"), None);
        assert_eq!(store.load("runs", "fresh").as_deref(), Some("v"));
        // Open applies the policy too.
        let reopened = ArtifactStore::open(
            &dir,
            GcPolicy {
                max_bytes: None,
                max_age_secs: Some(3600),
            },
        )
        .unwrap();
        assert_eq!(reopened.load("runs", "fresh").as_deref(), Some("v"));
        assert_eq!(reopened.live_records(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn migrates_v1_layout() {
        let dir = temp_dir("migrate");
        fs::create_dir_all(&dir).unwrap();
        // Two v1 record files (content shape from PR 2's one-file-per-key
        // store) plus one corrupt straggler.
        fs::write(
            dir.join("00aa.run"),
            "cfr-store 1\nkey runkey 177.mesa scale 1000 7\nreport report base vipt 1 2\n",
        )
        .unwrap();
        fs::write(
            dir.join("00bb.run"),
            "cfr-store 1\nkey runkey 254.gap scale 1000 7\nreport report ia vipt 3 4\n",
        )
        .unwrap();
        fs::write(dir.join("00cc.run"), "not a v1 record").unwrap();
        let store = open(&dir);
        assert_eq!(store.migrated_records(), 2);
        assert_eq!(
            store
                .load("runs", "runkey 177.mesa scale 1000 7")
                .as_deref(),
            Some("report base vipt 1 2"),
        );
        assert_eq!(
            store.load("runs", "runkey 254.gap scale 1000 7").as_deref(),
            Some("report ia vipt 3 4"),
        );
        // The old files are gone; only shard files remain.
        let leftovers: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| !n.starts_with("shard-") && n != LOCK_FILE_NAME)
            .collect();
        assert!(leftovers.is_empty(), "v1 files consumed: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_addressing_is_stable() {
        let dir = temp_dir("addressing");
        let store = open(&dir);
        let a = store.shard_of("runs", "some key");
        assert_eq!(store.shard_of("runs", "some key"), a, "deterministic");
        assert!(a < SHARD_COUNT);
        // Namespace participates in the address.
        let spread: std::collections::HashSet<u32> = (0..64)
            .map(|i| store.shard_of("runs", &format!("key-{i}")))
            .collect();
        assert!(spread.len() > 4, "keys spread across shards: {spread:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn occupancy_accounts_every_live_record() {
        let dir = temp_dir("occupancy");
        let store = open(&dir);
        for i in 0..50 {
            store.save("runs", &format!("k{i}"), "v");
        }
        let occ = store.shard_occupancy();
        assert_eq!(occ.len(), SHARD_COUNT as usize);
        assert_eq!(occ.iter().map(|o| o.live_records).sum::<u64>(), 50);
        assert_eq!(
            occ.iter().map(|o| o.live_bytes).sum::<u64>(),
            store.live_bytes()
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_with_applies_an_external_policy() {
        // A store opened *unbounded* (the daemon's configuration: saves
        // never compact inline) still enforces an explicit policy when
        // told to — the background-GC path.
        let dir = temp_dir("gcwith");
        let store = open(&dir);
        store.save_stamped("runs", "ancient", "v", 12);
        store.save("runs", "fresh", "v");
        let report = store.gc_with(GcPolicy {
            max_bytes: None,
            max_age_secs: Some(3600),
        });
        assert_eq!(report.evicted_age, 1);
        assert_eq!(store.load("runs", "ancient"), None);
        assert_eq!(store.load("runs", "fresh").as_deref(), Some("v"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_store_implements_the_backend_trait() {
        let dir = temp_dir("backend");
        let store = open(&dir);
        let backend: &dyn StoreBackend = &store;
        assert_eq!(backend.load("runs", "k"), None);
        backend.save("runs", "k", "v");
        assert_eq!(backend.load("runs", "k").as_deref(), Some("v"));
        assert_eq!(backend.namespace_records("runs"), 1);
        assert_eq!(backend.write_errors(), 0);
        assert_eq!(backend.describe(), dir.display().to_string());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_from_env_shapes() {
        // Only shape-checks the parser (the env itself is shared state we
        // must not mutate in a parallel test run).
        let p = GcPolicy::unbounded();
        assert!(!p.bounded());
        let q = GcPolicy {
            max_bytes: Some(1),
            max_age_secs: None,
        };
        assert!(q.bounded());
    }

    #[test]
    fn fsync_policies_preserve_record_contents() {
        // Every policy must produce byte-identical records and survive
        // the batch-commit and drain-sync entry points.
        for (tag, policy) in [
            ("fs-never", FsyncPolicy::Never),
            ("fs-commit", FsyncPolicy::Commit),
            ("fs-always", FsyncPolicy::Always),
        ] {
            let dir = temp_dir(tag);
            let store = open(&dir).with_fsync(policy);
            assert_eq!(store.fsync_policy(), policy);
            store.save("runs", "k", "v 1");
            store.save("walks", "k2", "v 2");
            store.commit_batch();
            store.sync_shards();
            assert_eq!(store.load("runs", "k").as_deref(), Some("v 1"));
            assert_eq!(store.load("walks", "k2").as_deref(), Some("v 2"));
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn verify_records_counts_live_and_corrupt() {
        let dir = temp_dir("verify");
        let store = open(&dir);
        for i in 0..20 {
            store.save("runs", &format!("k{i}"), &format!("value {i}"));
        }
        assert_eq!(store.verify_records(), (20, 0));
        // Truncate one shard mid-record behind the index's back: the
        // damaged record now fails byte-for-byte verification.
        let occupied: Vec<u32> = store
            .shard_occupancy()
            .into_iter()
            .filter(|o| o.live_records > 0)
            .map(|o| o.shard)
            .collect();
        let victim = dir.join(format!("shard-{:02}.cfr", occupied[0]));
        let bytes = fs::read(&victim).unwrap();
        fs::write(&victim, &bytes[..bytes.len() - 3]).unwrap();
        let (readable, corrupt) = store.verify_records();
        assert!(corrupt >= 1, "truncation must surface as corruption");
        assert_eq!(readable + corrupt, 20);
        let _ = fs::remove_dir_all(&dir);
    }
}
