//! Event-count energy accounting.

use std::fmt;

use cfr_types::{RecordError, RecordReader, RecordWriter};
use serde::{Deserialize, Serialize};

/// Accumulated energy for one named component.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ComponentEnergy {
    /// Number of charged events.
    pub events: u64,
    /// Total energy in picojoules.
    pub total_pj: f64,
}

/// Accumulates `(event count, picojoules)` per named component.
///
/// The meter deliberately stores *counts alongside joules*: the paper argues
/// its savings come from reduced access counts, so every experiment report
/// exposes both, and swapping the [`crate::EnergyModel`] coefficients never
/// changes the counts.
///
/// ```
/// use cfr_energy::EnergyMeter;
///
/// let mut meter = EnergyMeter::new();
/// meter.charge("itlb_access", 440.0);
/// meter.charge_n("cfr_read", 3, 4.6);
/// assert_eq!(meter.events("cfr_read"), 3);
/// assert!((meter.total_pj() - 453.8).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    /// Components sorted by name — the handful of distinct components a
    /// run charges makes a dense sorted `Vec` both faster to look up on
    /// the per-fetch hot path and identical in iteration order to the
    /// `BTreeMap` it replaced (serialization stays byte-for-byte stable).
    components: Vec<(String, ComponentEnergy)>,
    /// Bumped whenever component positions can move (insert/clear), so
    /// [`MeterSlot`] caches know to re-resolve. Excluded from equality
    /// and serialization — it is a lookup cache, not accounting state.
    #[serde(skip)]
    generation: u32,
}

impl PartialEq for EnergyMeter {
    fn eq(&self, other: &Self) -> bool {
        // `generation` is a lookup-cache version, not accounting state.
        self.components == other.components
    }
}

/// A caller-owned cached position of one component in one meter: lets a
/// hot charge site (e.g. the per-fetch CFR read) skip the by-name lookup
/// while staying exactly equivalent to [`EnergyMeter::charge`]. Invalid
/// slots (fresh, or stale after an insert) transparently re-resolve.
#[derive(Clone, Copy, Debug, Default)]
pub struct MeterSlot {
    generation: u32,
    index: u32,
}

impl EnergyMeter {
    /// Creates an empty meter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one event of `pj` picojoules to `component`.
    #[inline]
    pub fn charge(&mut self, component: &str, pj: f64) {
        self.charge_n(component, 1, pj);
    }

    /// Charges `n` events of `pj_each` picojoules to `component`.
    #[inline]
    pub fn charge_n(&mut self, component: &str, n: u64, pj_each: f64) {
        if n == 0 {
            return;
        }
        // The meter is charged once per modeled event on the simulator's
        // hot path: linear-scan the few components, and allocate the key
        // `String` only on a component's first charge.
        if let Some((_, entry)) = self
            .components
            .iter_mut()
            .find(|(name, _)| name == component)
        {
            entry.events += n;
            entry.total_pj += pj_each * n as f64;
            return;
        }
        self.insert_sorted(
            component.to_owned(),
            ComponentEnergy {
                events: n,
                total_pj: pj_each * n as f64,
            },
        );
    }

    /// Inserts a new component at its sorted position and invalidates
    /// every cached [`MeterSlot`] — the single place positions can move.
    fn insert_sorted(&mut self, name: String, component: ComponentEnergy) {
        let at = self
            .components
            .partition_point(|(n, _)| n.as_str() < name.as_str());
        self.components.insert(at, (name, component));
        self.generation += 1;
    }

    /// [`EnergyMeter::charge`] with a caller-cached component position:
    /// a valid `slot` skips the by-name lookup entirely; a stale or
    /// fresh one falls back to the ordinary charge and re-resolves.
    /// Exactly equivalent to `charge(component, pj)`.
    #[inline]
    pub fn charge_cached(&mut self, slot: &mut MeterSlot, component: &str, pj: f64) {
        if slot.generation == self.generation && (slot.index as usize) < self.components.len() {
            let entry = &mut self.components[slot.index as usize].1;
            entry.events += 1;
            entry.total_pj += pj;
            return;
        }
        self.charge(component, pj);
        slot.index = self
            .components
            .iter()
            .position(|(name, _)| name == component)
            .expect("just charged") as u32;
        slot.generation = self.generation;
    }

    /// Event count for `component` (0 if never charged).
    #[must_use]
    pub fn events(&self, component: &str) -> u64 {
        self.get(component).map_or(0, |c| c.events)
    }

    fn get(&self, component: &str) -> Option<&ComponentEnergy> {
        self.components
            .iter()
            .find(|(name, _)| name == component)
            .map(|(_, c)| c)
    }

    /// Energy in picojoules for `component` (0 if never charged).
    #[must_use]
    pub fn component_pj(&self, component: &str) -> f64 {
        self.get(component).map_or(0.0, |c| c.total_pj)
    }

    /// Total energy across all components, in picojoules.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.components.iter().map(|(_, c)| c.total_pj).sum()
    }

    /// Total energy across all components, in millijoules.
    #[must_use]
    pub fn total_mj(&self) -> f64 {
        crate::pj_to_mj(self.total_pj())
    }

    /// Iterates components in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ComponentEnergy)> {
        self.components.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Folds another meter's charges into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        for (name, c) in &other.components {
            match self.components.iter_mut().find(|(n, _)| n == name) {
                Some((_, entry)) => {
                    entry.events += c.events;
                    entry.total_pj += c.total_pj;
                }
                None => self.insert_sorted(name.clone(), *c),
            }
        }
    }

    /// Resets all counters.
    pub fn clear(&mut self) {
        self.components.clear();
        self.generation += 1;
    }

    /// Serializes as `meter <n>` followed by `n` named [`ComponentEnergy`]
    /// records in name (sorted) order — deterministic, so equal meters
    /// always produce byte-equal records. Component names are single
    /// tokens (`itlb_access`-style identifiers), which
    /// [`EnergyMeter::charge`] callers already uphold.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("meter");
        w.u64(self.components.len() as u64);
        for (name, component) in &self.components {
            w.token(name);
            component.to_record(w);
        }
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("meter")?;
        let n = r.usize()?;
        let mut meter = Self::new();
        for _ in 0..n {
            let name = r.token()?.to_owned();
            let component = ComponentEnergy::from_record(r)?;
            if meter.get(&name).is_some() {
                return Err(RecordError::new(format!("duplicate component {name:?}")));
            }
            meter.insert_sorted(name, component);
        }
        Ok(meter)
    }
}

impl ComponentEnergy {
    /// Serializes as `comp <events> <pj-bits>`.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("comp");
        w.u64(self.events);
        w.f64(self.total_pj);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("comp")?;
        Ok(Self {
            events: r.u64()?,
            total_pj: r.f64()?,
        })
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return write!(f, "(no energy charged)");
        }
        for (name, c) in &self.components {
            writeln!(
                f,
                "{name:<20} {:>14} events  {:>12.6} mJ",
                c.events,
                crate::pj_to_mj(c.total_pj)
            )?;
        }
        write!(
            f,
            "{:<20} {:>14}  {:>12.6} mJ",
            "TOTAL",
            "",
            self.total_mj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_is_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.total_pj(), 0.0);
        assert_eq!(m.events("anything"), 0);
        assert_eq!(m.component_pj("anything"), 0.0);
    }

    #[test]
    fn charges_accumulate() {
        let mut m = EnergyMeter::new();
        m.charge("a", 10.0);
        m.charge("a", 5.0);
        m.charge_n("b", 4, 2.5);
        assert_eq!(m.events("a"), 2);
        assert_eq!(m.events("b"), 4);
        assert!((m.component_pj("a") - 15.0).abs() < 1e-12);
        assert!((m.component_pj("b") - 10.0).abs() < 1e-12);
        assert!((m.total_pj() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn charge_zero_events_is_noop() {
        let mut m = EnergyMeter::new();
        m.charge_n("a", 0, 100.0);
        assert_eq!(m.events("a"), 0);
        assert_eq!(m.total_pj(), 0.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = EnergyMeter::new();
        a.charge("x", 1.0);
        let mut b = EnergyMeter::new();
        b.charge("x", 2.0);
        b.charge("y", 3.0);
        a.merge(&b);
        assert_eq!(a.events("x"), 2);
        assert!((a.total_pj() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets() {
        let mut m = EnergyMeter::new();
        m.charge("x", 1.0);
        m.clear();
        assert_eq!(m.total_pj(), 0.0);
    }

    #[test]
    fn display_is_nonempty() {
        let mut m = EnergyMeter::new();
        assert!(!format!("{m}").is_empty());
        m.charge("itlb", 440.0);
        let s = format!("{m}");
        assert!(s.contains("itlb"));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn meter_record_round_trips() {
        let mut m = EnergyMeter::new();
        m.charge_n("itlb_access", 12_345, 440.25);
        m.charge_n("cfr_read", 99_999, 4.6); // 4.6 has no exact decimal form
        m.charge("cfr_compare", 0.9);
        let mut w = RecordWriter::new();
        m.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        let back = EnergyMeter::from_record(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, m, "bit-exact round trip, floats included");

        let empty = EnergyMeter::new();
        let mut w = RecordWriter::new();
        empty.to_record(&mut w);
        let record = w.finish();
        assert_eq!(
            EnergyMeter::from_record(&mut RecordReader::new(&record)).unwrap(),
            empty
        );
        // Corruption: truncated component list.
        assert!(EnergyMeter::from_record(&mut RecordReader::new("meter 2 x comp 1 0x0")).is_err());
        // Corruption: duplicate component name.
        assert!(EnergyMeter::from_record(&mut RecordReader::new(
            "meter 2 x comp 1 0x0 x comp 1 0x0"
        ))
        .is_err());
    }

    #[test]
    fn total_mj_matches_pj() {
        let mut m = EnergyMeter::new();
        m.charge_n("x", 1_000_000, 1000.0);
        assert!((m.total_mj() - 1.0).abs() < 1e-9); // 1e9 pJ = 1 mJ
    }
}
