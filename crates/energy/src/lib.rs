//! # cfr-energy
//!
//! Analytical dynamic-energy model for the SRAM/CAM structures the paper's
//! evaluation charges: the iTLB (monolithic or two-level), the Current Frame
//! Register, and the HoA comparator.
//!
//! The paper used CACTI 2.0 at 0.1 µm (its reference [24]). CACTI is not
//! available here, so this crate substitutes a component-level analytical
//! model — decoder/search-line/match-line/sense-amp terms with constant and
//! per-entry parts — whose coefficients are **calibrated against the ratios
//! the paper itself reports** (see [`TechnologyParams`] for the derivation).
//! The paper's own closing remark justifies this substitution: *"the dynamic
//! energy savings with our mechanisms are more a consequence of the reduced
//! number of iTLB accesses, and the percentage improvements are likely to
//! hold with technology or circuit level improvements."*
//!
//! ```
//! use cfr_energy::{EnergyModel, TlbOrganization};
//!
//! let model = EnergyModel::default();
//! let itlb32 = TlbOrganization::fully_associative(32);
//! let itlb8 = TlbOrganization::fully_associative(8);
//! // The paper's Table 6 shape: an 8-entry FA TLB costs only slightly less
//! // per access than a 32-entry one (constant terms dominate a CAM search).
//! let r = model.tlb_access_pj(&itlb8) / model.tlb_access_pj(&itlb32);
//! assert!(r > 0.85 && r < 0.95);
//! ```

mod meter;
mod model;

pub use cfr_types::{CacheOrganization, TlbOrganization};
pub use meter::{ComponentEnergy, EnergyMeter, MeterSlot};
pub use model::{EnergyModel, TechnologyParams};

/// Converts picojoules to millijoules (the unit the paper's tables use).
#[must_use]
pub fn pj_to_mj(pj: f64) -> f64 {
    pj * 1e-9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pj_to_mj_scale() {
        assert!((pj_to_mj(1e9) - 1.0).abs() < 1e-12);
    }
}
