//! The analytical energy model and its calibration.

use serde::{Deserialize, Serialize};

pub use cfr_types::{CacheOrganization, TlbOrganization};

/// Technology coefficients, in picojoules, for the component-level model.
///
/// # Calibration
///
/// The coefficients below were fitted to the *ratios* the paper reports for
/// its 0.1 µm CACTI numbers (Tables 2 and 6, 250 M committed instructions):
///
/// - a 32-entry fully-associative iTLB costs ≈ 0.44 nJ/access
///   (≈ 110 mJ / ≈ 250 M fetch accesses);
/// - an 8-entry FA iTLB costs ≈ 0.9× the 32-entry one (CAM searches are
///   dominated by drivers/sense-amps, not entry count);
/// - a 16-entry 2-way set-associative iTLB costs ≈ 1.3× the 32-entry FA one
///   (two full tag+data ways are read per access);
/// - a 1-entry "TLB" degenerates to a register + comparator at ≈ 0.05× the
///   32-entry CAM;
/// - the HoA page comparator costs ≈ 2.5% of a 32-entry CAM search per
///   fetch (the HoA-vs-OPT gap in Figure 4);
/// - a CFR register read costs ≈ 1% of a CAM search (the SoLA-vs-OPT gap
///   net of its extra lookups).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Constant CAM-search cost: search-line drivers, sense amps, I/O (pJ).
    pub cam_base_pj: f64,
    /// Per-entry match-line precharge/evaluate cost (pJ).
    pub cam_matchline_pj_per_entry: f64,
    /// Per-entry, per-tag-bit search-line cost (pJ).
    pub cam_searchline_pj_per_bit: f64,
    /// Constant SRAM-array cost: decoder + sense amps (pJ).
    pub sram_base_pj: f64,
    /// Per-row bit-line loading cost (pJ).
    pub sram_pj_per_row: f64,
    /// Per-bit cost of reading a way out of an SRAM array (pJ).
    pub sram_read_pj_per_bit: f64,
    /// Per-bit cost of reading a latch/register (pJ).
    pub register_pj_per_bit: f64,
    /// Per-bit cost of an equality comparator (pJ).
    pub comparator_pj_per_bit: f64,
    /// TLB refill (entry write) cost relative to one access.
    pub write_factor: f64,
    /// Virtual-address tag bits compared/translated (32-bit VA, 4 KB pages).
    pub tag_bits: u32,
    /// Data bits per TLB entry (PFN + protection/other bits).
    pub data_bits: u32,
    /// Core energy per cycle spent in an OS trap handler (pJ/cycle) —
    /// pipeline drain, handler fetch/execute, return. Charged per
    /// fault-handler cycle when a fault latency is configured.
    pub trap_pj_per_cycle: f64,
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self {
            cam_base_pj: 360.0,
            cam_matchline_pj_per_entry: 0.8,
            cam_searchline_pj_per_bit: 0.04,
            sram_base_pj: 150.0,
            sram_pj_per_row: 2.0,
            sram_read_pj_per_bit: 5.0,
            register_pj_per_bit: 0.2,
            comparator_pj_per_bit: 0.5,
            write_factor: 1.2,
            tag_bits: 20,
            data_bits: 23,
            trap_pj_per_cycle: 30.0,
        }
    }
}

/// The dynamic-energy model: maps structure shapes to per-event picojoules.
///
/// All methods are pure; accounting lives in [`crate::EnergyMeter`].
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyModel {
    params: TechnologyParams,
}

impl EnergyModel {
    /// Creates a model with explicit technology parameters.
    #[must_use]
    pub fn new(params: TechnologyParams) -> Self {
        Self { params }
    }

    /// The technology parameters in use.
    #[must_use]
    pub fn params(&self) -> &TechnologyParams {
        &self.params
    }

    /// Energy of one TLB lookup (pJ), choosing the implementation the
    /// organization implies: register+comparator (1 entry), CAM search
    /// (fully associative), or set-associative SRAM read.
    #[must_use]
    pub fn tlb_access_pj(&self, org: &TlbOrganization) -> f64 {
        let p = &self.params;
        if org.entries == 1 {
            // Register file holding one translation: read the tag, compare,
            // read the data side.
            self.register_read_pj(p.tag_bits)
                + self.comparator_pj(p.tag_bits)
                + self.register_read_pj(p.data_bits)
        } else if org.is_cam() {
            let entries = f64::from(org.entries);
            p.cam_base_pj
                + entries
                    * (p.cam_matchline_pj_per_entry
                        + p.cam_searchline_pj_per_bit * f64::from(p.tag_bits))
                + self.register_read_pj(p.data_bits) * 2.0
        } else {
            // Set-associative SRAM: decode the set, read every way's tag and
            // data, compare tags.
            let rows = f64::from(org.sets());
            let way_bits = f64::from(p.tag_bits + p.data_bits);
            p.sram_base_pj
                + rows * p.sram_pj_per_row
                + f64::from(org.associativity)
                    * (way_bits * p.sram_read_pj_per_bit + self.comparator_pj(p.tag_bits))
        }
    }

    /// Energy of one TLB refill — writing a new entry after a miss (pJ).
    ///
    /// The paper's energy equation is `n_a·E_a + n_m·E_m`; this is `E_m`.
    /// The page-walk memory traffic itself is charged to the memory system,
    /// not the TLB, matching CACTI's structure-local scope.
    #[must_use]
    pub fn tlb_refill_pj(&self, org: &TlbOrganization) -> f64 {
        self.tlb_access_pj(org) * self.params.write_factor
    }

    /// Energy of one cache access (pJ): decode, read `associativity` tag
    /// ways plus one data way, compare.
    ///
    /// The paper never charges cache energy to the iTLB budget; this exists
    /// so examples and extensions can report whole-hierarchy numbers.
    #[must_use]
    pub fn cache_access_pj(&self, org: &CacheOrganization) -> f64 {
        let p = &self.params;
        let rows = org.sets() as f64;
        let tag_read = f64::from(p.tag_bits) * p.sram_read_pj_per_bit;
        let data_read = f64::from(org.block_bytes) * 8.0 * p.sram_read_pj_per_bit / 4.0;
        p.sram_base_pj * 2.0
            + rows.sqrt() * p.sram_pj_per_row * 8.0
            + f64::from(org.associativity) * (tag_read + self.comparator_pj(p.tag_bits))
            + data_read
    }

    /// Energy of reading `bits` bits out of a latch/register (pJ) — the CFR
    /// read on every bypassed fetch.
    #[must_use]
    pub fn register_read_pj(&self, bits: u32) -> f64 {
        f64::from(bits) * self.params.register_pj_per_bit
    }

    /// Energy of a `bits`-wide equality comparator (pJ) — HoA pays this on
    /// every fetch; IA pays it once per BTB-predicted branch.
    #[must_use]
    pub fn comparator_pj(&self, bits: u32) -> f64 {
        f64::from(bits) * self.params.comparator_pj_per_bit
    }

    /// Energy of the full CFR read: PFN + protection bits (pJ).
    #[must_use]
    pub fn cfr_read_pj(&self) -> f64 {
        self.register_read_pj(self.params.data_bits)
    }

    /// Energy of the HoA/IA virtual-page comparison against the CFR (pJ).
    #[must_use]
    pub fn cfr_compare_pj(&self) -> f64 {
        self.comparator_pj(self.params.tag_bits)
    }

    /// Energy of one OS fault trap whose handler runs for
    /// `handler_cycles` cycles (pJ): the core burns its trap-handler
    /// per-cycle energy for the duration. With a zero handler latency the
    /// trap is free — exactly the pre-fault-model accounting.
    #[must_use]
    pub fn fault_trap_pj(&self, handler_cycles: u32) -> f64 {
        self.params.trap_pj_per_cycle * f64::from(handler_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::default()
    }

    #[test]
    fn itlb32_near_half_nanojoule() {
        let e = model().tlb_access_pj(&TlbOrganization::fully_associative(32));
        assert!(
            (380.0..520.0).contains(&e),
            "32-entry FA iTLB should be ~0.44 nJ, got {e}"
        );
    }

    #[test]
    fn cam_costs_grow_slowly_with_entries() {
        let m = model();
        let e8 = m.tlb_access_pj(&TlbOrganization::fully_associative(8));
        let e32 = m.tlb_access_pj(&TlbOrganization::fully_associative(32));
        let e128 = m.tlb_access_pj(&TlbOrganization::fully_associative(128));
        assert!(e8 < e32 && e32 < e128);
        // Paper Table 6: 8-entry base energy ≈ 0.9× of 32-entry.
        let r = e8 / e32;
        assert!((0.85..0.95).contains(&r), "8/32 ratio {r}");
        // Paper Fig 6 relies on 128-entry being meaningfully pricier.
        assert!(e128 / e32 > 1.15);
    }

    #[test]
    fn two_way_sram_tlb_costs_more_than_cam() {
        let m = model();
        let e16x2 = m.tlb_access_pj(&TlbOrganization::set_associative(16, 2));
        let e32 = m.tlb_access_pj(&TlbOrganization::fully_associative(32));
        // Paper Table 6: the 16-entry 2-way consumes MORE than the 32 FA
        // (reads two full ways).
        let r = e16x2 / e32;
        assert!((1.1..1.6).contains(&r), "16x2/32FA ratio {r}");
    }

    #[test]
    fn one_entry_tlb_is_register_cheap() {
        let m = model();
        let e1 = m.tlb_access_pj(&TlbOrganization::fully_associative(1));
        let e32 = m.tlb_access_pj(&TlbOrganization::fully_associative(32));
        let r = e1 / e32;
        assert!((0.02..0.09).contains(&r), "1-entry ratio {r}");
    }

    #[test]
    fn comparator_is_small_fraction_of_cam() {
        let m = model();
        let cmp = m.cfr_compare_pj();
        let e32 = m.tlb_access_pj(&TlbOrganization::fully_associative(32));
        let r = cmp / e32;
        // Fig 4: HoA-vs-OPT gap ≈ 2.5% per fetch.
        assert!((0.01..0.05).contains(&r), "comparator ratio {r}");
    }

    #[test]
    fn cfr_read_is_nearly_free() {
        let m = model();
        let r = m.cfr_read_pj() / m.tlb_access_pj(&TlbOrganization::fully_associative(32));
        assert!(r < 0.02, "CFR read ratio {r}");
    }

    #[test]
    fn refill_costs_more_than_access() {
        let m = model();
        let org = TlbOrganization::fully_associative(32);
        assert!(m.tlb_refill_pj(&org) > m.tlb_access_pj(&org));
    }

    #[test]
    fn cache_energy_positive_and_monotonic_in_assoc() {
        let m = model();
        let c1 = CacheOrganization {
            size_bytes: 8192,
            associativity: 1,
            block_bytes: 32,
        };
        let c2 = CacheOrganization {
            size_bytes: 8192,
            associativity: 2,
            block_bytes: 32,
        };
        assert!(m.cache_access_pj(&c1) > 0.0);
        assert!(m.cache_access_pj(&c2) > m.cache_access_pj(&c1));
    }

    #[test]
    fn multilevel_shapes_from_fig6() {
        // Fig 6 compares a (1 + 32FA) two-level against a monolithic 32FA,
        // and a (32FA + 96FA) against a monolithic 128FA. The level-1 energy
        // per access plus a fraction of level-2 accesses must be able to
        // exceed the monolithic-with-CFR energy; the raw ingredients:
        let m = model();
        let e1 = m.tlb_access_pj(&TlbOrganization::fully_associative(1));
        let e32 = m.tlb_access_pj(&TlbOrganization::fully_associative(32));
        let e96 = m.tlb_access_pj(&TlbOrganization::fully_associative(96));
        let e128 = m.tlb_access_pj(&TlbOrganization::fully_associative(128));
        // A per-fetch 1-entry filter costs far more than a per-page-change
        // CAM search amortized over ~45 fetches/page-crossing.
        assert!(e1 > e32 / 45.0);
        assert!(e96 < e128);
    }
}
