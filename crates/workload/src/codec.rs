//! Persistent-store codecs for workload artifacts.
//!
//! The sharded artifact store (`cfr_types::store`) moves opaque record
//! strings; this module supplies the typed codecs that let the two
//! expensive workload layers live in it:
//!
//! - **generated programs** ([`Program`] and everything inside it —
//!   blocks, functions, instructions, branch specs), under the
//!   [`cfr_types::NS_PROGRAMS`] namespace, and
//! - **functional walk measurements** ([`WalkMeasurement`], i.e.
//!   [`FunctionalStats`] + [`StaticBranchStats`]), under
//!   [`cfr_types::NS_WALKS`].
//!
//! Store keys embed a FNV-1a fingerprint of the profile's full
//! [`GeneratorParams`], so recalibrating a profile invalidates its cached
//! program and walks instead of serving stale artifacts. Floats (branch
//! taken biases, measured fractions) are stored as exact IEEE-754 bits,
//! so a loaded program is `==` to a freshly generated one and warm walk
//! output is byte-identical.

use cfr_types::{fnv1a64, PageGeometry, RecordError, RecordReader, RecordWriter};

use crate::generate::GeneratorParams;
use crate::isa::{BranchKind, BranchSpec, BranchTarget, DataRegion, Instruction, OpClass, RegId};
use crate::measure::{FunctionalStats, StaticBranchStats, WalkMeasurement};
use crate::profiles::BenchmarkProfile;
use crate::program::{Block, BlockId, Function, Program};

// ------------------------------------------------------------- store keys

/// FNV-1a fingerprint over every generator knob: two profiles produce the
/// same fingerprint iff their parameters are identical, so the store key
/// of a program (or a walk over it) changes whenever calibration does.
#[must_use]
pub fn params_fingerprint(params: &GeneratorParams) -> u64 {
    let mut w = RecordWriter::new();
    params.to_record(&mut w);
    fnv1a64(&w.finish())
}

/// The artifact-store key of `profile`'s generated program.
#[must_use]
pub fn program_store_key(profile: &BenchmarkProfile) -> String {
    format!(
        "program {} {:016x}",
        profile.name,
        params_fingerprint(&profile.params)
    )
}

/// The artifact-store key of a functional walk of `profile`'s program:
/// the program identity (name + params fingerprint) plus everything the
/// walk's outcome depends on — page geometry, layout instrumentation,
/// walk length, and walker seed.
#[must_use]
pub fn walk_store_key(
    profile: &BenchmarkProfile,
    geom: PageGeometry,
    instrumented: bool,
    commits: u64,
    seed: u64,
) -> String {
    format!(
        "walk {} {:016x} {} {} {commits} {seed}",
        profile.name,
        params_fingerprint(&profile.params),
        geom.page_bytes(),
        if instrumented { "instr" } else { "plain" },
    )
}

/// The artifact-store key of a compiled trace of `profile`'s program:
/// the program identity (name + params fingerprint) plus everything the
/// trace depends on — page geometry, layout instrumentation, and whether
/// the SoLA in-page marking pass ran over the layout first.
#[must_use]
pub fn trace_store_key(
    profile: &BenchmarkProfile,
    geom: PageGeometry,
    instrumented: bool,
    sola_marked: bool,
) -> String {
    format!(
        "trace {} {:016x} {} {} {}",
        profile.name,
        params_fingerprint(&profile.params),
        geom.page_bytes(),
        if instrumented { "instr" } else { "plain" },
        if sola_marked { "marked" } else { "unmarked" },
    )
}

// ------------------------------------------------------ GeneratorParams

impl GeneratorParams {
    /// Serializes every knob in declaration order (fingerprint input and
    /// diagnostics; params are never parsed back — the profile registry
    /// is the source of truth).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("genparams");
        w.u64(self.seed);
        for v in [self.functions, self.hot_functions] {
            w.u64(u64::from(v));
        }
        for (lo, hi) in [
            self.blocks_per_function,
            self.block_len,
            self.loop_len,
            self.leaf_blocks,
        ] {
            w.u64(u64::from(lo));
            w.u64(u64::from(hi));
        }
        for v in [
            self.loop_prob,
            self.loop_bias,
            self.outer_loop_prob,
            self.outer_bias,
            self.loop_call,
            self.loop_icall,
            self.plain_fallthrough,
            self.w_cond,
            self.w_jump,
            self.w_call,
            self.w_indirect,
            self.indirect_local,
            self.fwd_bias,
            self.weak_fraction,
            self.weak_bias,
            self.call_hot_locality,
            self.leaf_fraction,
            self.call_leaf,
            self.load_frac,
            self.store_frac,
            self.fp_frac,
            self.mul_frac,
            self.region_stack,
            self.region_global,
        ] {
            w.f64(v);
        }
        for v in [self.global_pages, self.heap_arrays, self.heap_array_pages] {
            w.u64(u64::from(v));
        }
    }
}

// -------------------------------------------------------------- Program

pub(crate) fn opt_reg_to_record(reg: Option<RegId>, w: &mut RecordWriter) {
    match reg {
        Some(r) => w.u64(u64::from(r.0)),
        None => w.token("-"),
    }
}

pub(crate) fn opt_reg_from_record(r: &mut RecordReader<'_>) -> Result<Option<RegId>, RecordError> {
    let token = r.token()?;
    if token == "-" {
        return Ok(None);
    }
    let raw: u8 = token
        .parse()
        .ok()
        .filter(|v| (*v as usize) < RegId::COUNT)
        .ok_or_else(|| RecordError::new(format!("bad register token {token:?}")))?;
    Ok(Some(RegId(raw)))
}

impl DataRegion {
    /// Serializes as `stack`, `g <idx>`, or `h <idx>`.
    pub fn to_record(&self, w: &mut RecordWriter) {
        match self {
            DataRegion::Stack => w.token("stack"),
            DataRegion::Global(i) => {
                w.token("g");
                w.u64(u64::from(*i));
            }
            DataRegion::Heap(i) => {
                w.token("h");
                w.u64(u64::from(*i));
            }
        }
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        let index = |r: &mut RecordReader<'_>| -> Result<u16, RecordError> {
            let v = r.u64()?;
            u16::try_from(v).map_err(|_| RecordError::new(format!("region index {v} exceeds u16")))
        };
        match r.token()? {
            "stack" => Ok(DataRegion::Stack),
            "g" => Ok(DataRegion::Global(index(r)?)),
            "h" => Ok(DataRegion::Heap(index(r)?)),
            other => Err(RecordError::new(format!("unknown data region {other:?}"))),
        }
    }
}

impl BranchSpec {
    /// Serializes as `<kind> <target> <in_page_hint> <boundary>`.
    pub fn to_record(&self, w: &mut RecordWriter) {
        match self.kind {
            BranchKind::Conditional { taken_bias } => {
                w.token("cond");
                w.f64(taken_bias);
            }
            BranchKind::Jump => w.token("jump"),
            BranchKind::Call => w.token("call"),
            BranchKind::Return => w.token("ret"),
            BranchKind::IndirectJump => w.token("ijump"),
            BranchKind::IndirectCall => w.token("icall"),
        }
        match &self.target {
            BranchTarget::Block(b) => {
                w.token("blk");
                w.u64(u64::from(b.0));
            }
            BranchTarget::NextSlot => w.token("next"),
            BranchTarget::CallerReturn => w.token("caller"),
            BranchTarget::Indirect(targets) => {
                w.token("ind");
                w.u64(targets.len() as u64);
                for t in targets {
                    w.u64(u64::from(t.0));
                }
            }
        }
        w.u64(u64::from(self.in_page_hint));
        w.u64(u64::from(self.boundary));
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        let kind = match r.token()? {
            "cond" => BranchKind::Conditional {
                taken_bias: r.f64()?,
            },
            "jump" => BranchKind::Jump,
            "call" => BranchKind::Call,
            "ret" => BranchKind::Return,
            "ijump" => BranchKind::IndirectJump,
            "icall" => BranchKind::IndirectCall,
            other => return Err(RecordError::new(format!("unknown branch kind {other:?}"))),
        };
        let block_id =
            |r: &mut RecordReader<'_>| -> Result<BlockId, RecordError> { Ok(BlockId(r.u32()?)) };
        let target = match r.token()? {
            "blk" => BranchTarget::Block(block_id(r)?),
            "next" => BranchTarget::NextSlot,
            "caller" => BranchTarget::CallerReturn,
            "ind" => {
                let n = r.usize()?;
                if n == 0 {
                    return Err(RecordError::new("indirect target set is empty"));
                }
                let mut targets = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    targets.push(block_id(r)?);
                }
                BranchTarget::Indirect(targets)
            }
            other => return Err(RecordError::new(format!("unknown branch target {other:?}"))),
        };
        Ok(Self {
            kind,
            target,
            in_page_hint: record_bool(r)?,
            boundary: record_bool(r)?,
        })
    }
}

pub(crate) fn record_bool(r: &mut RecordReader<'_>) -> Result<bool, RecordError> {
    match r.u64()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(RecordError::new(format!("bad boolean token {other}"))),
    }
}

impl Instruction {
    /// Serializes as `<class> [payload] <src0> <src1> <dst>`.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token(match self.class {
            OpClass::IntAlu => "ialu",
            OpClass::IntMul => "imul",
            OpClass::FpAlu => "falu",
            OpClass::FpMul => "fmul",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::Branch => "br",
        });
        if let Some(region) = &self.region {
            region.to_record(w);
        }
        if let Some(spec) = &self.branch {
            spec.to_record(w);
        }
        opt_reg_to_record(self.srcs[0], w);
        opt_reg_to_record(self.srcs[1], w);
        opt_reg_to_record(self.dst, w);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream, including a memory class without a
    /// region or a branch class without a spec.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        let class = match r.token()? {
            "ialu" => OpClass::IntAlu,
            "imul" => OpClass::IntMul,
            "falu" => OpClass::FpAlu,
            "fmul" => OpClass::FpMul,
            "ld" => OpClass::Load,
            "st" => OpClass::Store,
            "br" => OpClass::Branch,
            other => return Err(RecordError::new(format!("unknown op class {other:?}"))),
        };
        let region = matches!(class, OpClass::Load | OpClass::Store)
            .then(|| DataRegion::from_record(r))
            .transpose()?;
        let branch = (class == OpClass::Branch)
            .then(|| BranchSpec::from_record(r))
            .transpose()?;
        Ok(Self {
            class,
            srcs: [opt_reg_from_record(r)?, opt_reg_from_record(r)?],
            dst: opt_reg_from_record(r)?,
            branch,
            region,
        })
    }
}

impl Program {
    /// Serializes the whole program — data-footprint scalars, the
    /// function table, then every block's instructions (persistent
    /// artifact store codec; the vendored `serde` is a no-op).
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("program");
        w.u64(u64::from(self.global_pages));
        w.u64(u64::from(self.heap_arrays));
        w.u64(u64::from(self.heap_array_pages));
        w.token("functions");
        w.u64(self.functions.len() as u64);
        for f in &self.functions {
            w.u64(u64::from(f.first_block));
            w.u64(u64::from(f.n_blocks));
        }
        w.token("blocks");
        w.u64(self.blocks.len() as u64);
        for b in &self.blocks {
            w.u64(b.instrs.len() as u64);
            for i in &b.instrs {
                i.to_record(w);
            }
        }
    }

    /// Parses a [`Self::to_record`] stream. Callers loading untrusted
    /// bytes (the program cache) should additionally run
    /// [`Program::validate`] on the result.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("program")?;
        let scalar = |r: &mut RecordReader<'_>| -> Result<u16, RecordError> {
            let v = r.u64()?;
            u16::try_from(v).map_err(|_| RecordError::new(format!("scalar {v} exceeds u16")))
        };
        let global_pages = scalar(r)?;
        let heap_arrays = scalar(r)?;
        let heap_array_pages = scalar(r)?;
        r.expect("functions")?;
        let n_functions = r.usize()?;
        let mut functions = Vec::with_capacity(n_functions.min(1 << 16));
        for _ in 0..n_functions {
            functions.push(Function {
                first_block: r.u32()?,
                n_blocks: r.u32()?,
            });
        }
        r.expect("blocks")?;
        let n_blocks = r.usize()?;
        let mut blocks = Vec::with_capacity(n_blocks.min(1 << 20));
        for _ in 0..n_blocks {
            let n_instrs = r.usize()?;
            let mut instrs = Vec::with_capacity(n_instrs.min(1 << 16));
            for _ in 0..n_instrs {
                instrs.push(Instruction::from_record(r)?);
            }
            blocks.push(Block { instrs });
        }
        Ok(Self {
            blocks,
            functions,
            global_pages,
            heap_arrays,
            heap_array_pages,
        })
    }
}

// ----------------------------------------------------- walk measurements

impl FunctionalStats {
    /// Serializes every counter in declaration order.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("fstats");
        for v in [
            self.committed,
            self.branches,
            self.taken,
            self.boundary_branch_execs,
            self.analyzable,
            self.analyzable_in_page,
            self.analyzable_crossing,
            self.crossings_branch,
            self.crossings_boundary,
            self.il1_accesses,
            self.il1_misses,
            self.cond_branches,
            self.cond_predicted,
            self.jumps,
            self.calls,
            self.returns,
            self.indirects,
        ] {
            w.u64(v);
        }
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("fstats")?;
        Ok(Self {
            committed: r.u64()?,
            branches: r.u64()?,
            taken: r.u64()?,
            boundary_branch_execs: r.u64()?,
            analyzable: r.u64()?,
            analyzable_in_page: r.u64()?,
            analyzable_crossing: r.u64()?,
            crossings_branch: r.u64()?,
            crossings_boundary: r.u64()?,
            il1_accesses: r.u64()?,
            il1_misses: r.u64()?,
            cond_branches: r.u64()?,
            cond_predicted: r.u64()?,
            jumps: r.u64()?,
            calls: r.u64()?,
            returns: r.u64()?,
            indirects: r.u64()?,
        })
    }
}

impl StaticBranchStats {
    /// Serializes every counter in declaration order.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("sbstats");
        for v in [
            self.total,
            self.analyzable,
            self.analyzable_in_page,
            self.analyzable_crossing,
        ] {
            w.u64(v);
        }
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("sbstats")?;
        Ok(Self {
            total: r.u64()?,
            analyzable: r.u64()?,
            analyzable_in_page: r.u64()?,
            analyzable_crossing: r.u64()?,
        })
    }
}

impl WalkMeasurement {
    /// Serializes the dynamic and static halves.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("walkm");
        self.functional.to_record(w);
        self.static_branches.to_record(w);
    }

    /// Parses a [`Self::to_record`] stream.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("walkm")?;
        Ok(Self {
            functional: FunctionalStats::from_record(r)?,
            static_branches: StaticBranchStats::from_record(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;
    use crate::layout::LaidProgram;
    use crate::measure::measure_walk;
    use crate::profiles;

    fn round_trip_program(program: &Program) -> Program {
        let mut w = RecordWriter::new();
        program.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        let back = Program::from_record(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn small_program_round_trips_exactly() {
        let program = generate(&GeneratorParams::small_test());
        let back = round_trip_program(&program);
        assert_eq!(back, program, "loaded program must equal the generated one");
        assert_eq!(back.validate(), Ok(()));
    }

    #[test]
    fn every_profile_program_round_trips() {
        // The full six-profile sweep is what the store actually persists;
        // every branch kind, target shape, and region must survive.
        for p in profiles::all() {
            let program = p.generate();
            assert_eq!(round_trip_program(&program), program, "{}", p.name);
        }
    }

    #[test]
    fn program_record_is_single_line() {
        let program = generate(&GeneratorParams::small_test());
        let mut w = RecordWriter::new();
        program.to_record(&mut w);
        let record = w.finish();
        assert!(
            !record.contains('\n'),
            "store values must be single-line record strings"
        );
    }

    #[test]
    fn corrupt_program_records_are_errors() {
        let program = generate(&GeneratorParams::small_test());
        let mut w = RecordWriter::new();
        program.to_record(&mut w);
        let record = w.finish();
        // Truncation.
        assert!(Program::from_record(&mut RecordReader::new(&record[..record.len() / 2])).is_err());
        // Damaged tag.
        let damaged = record.replacen("program", "programs", 1);
        assert!(Program::from_record(&mut RecordReader::new(&damaged)).is_err());
        // A bogus op class in the middle.
        let bogus = record.replacen(" ialu ", " zalu ", 1);
        assert_ne!(bogus, record);
        assert!(Program::from_record(&mut RecordReader::new(&bogus)).is_err());
    }

    #[test]
    fn walk_measurement_round_trips() {
        let program = generate(&GeneratorParams::small_test());
        let laid = LaidProgram::lay_out(&program, PageGeometry::default_4k(), false);
        let m = measure_walk(&laid, 30_000, 7);
        let mut w = RecordWriter::new();
        m.to_record(&mut w);
        let record = w.finish();
        let mut r = RecordReader::new(&record);
        assert_eq!(WalkMeasurement::from_record(&mut r).unwrap(), m);
        r.finish().unwrap();
        assert!(
            WalkMeasurement::from_record(&mut RecordReader::new(&record[..20])).is_err(),
            "truncation is an error"
        );
    }

    #[test]
    fn fingerprints_track_every_knob() {
        let base = profiles::mesa().params;
        let fp = params_fingerprint(&base);
        assert_eq!(params_fingerprint(&base), fp, "deterministic");
        let mut seeded = base.clone();
        seeded.seed ^= 1;
        assert_ne!(params_fingerprint(&seeded), fp);
        let mut tuned = base.clone();
        tuned.loop_bias += 1e-9;
        assert_ne!(params_fingerprint(&tuned), fp, "float knobs are exact bits");
        let mut shaped = base;
        shaped.heap_array_pages += 1;
        assert_ne!(params_fingerprint(&shaped), fp);
    }

    #[test]
    fn store_keys_identify_the_artifact() {
        let mesa = profiles::mesa();
        let gap = profiles::gap();
        assert_ne!(program_store_key(&mesa), program_store_key(&gap));
        let geom = PageGeometry::default_4k();
        let a = walk_store_key(&mesa, geom, false, 100_000, 1);
        assert_ne!(a, walk_store_key(&mesa, geom, false, 100_000, 2), "seed");
        assert_ne!(a, walk_store_key(&mesa, geom, false, 200_000, 1), "length");
        assert_ne!(a, walk_store_key(&mesa, geom, true, 100_000, 1), "layout");
        let big = PageGeometry::new(16384).unwrap();
        assert_ne!(a, walk_store_key(&mesa, big, false, 100_000, 1), "geometry");
        assert!(!a.contains('\n'));
    }
}
