//! Pre-decoded trace compilation: the compiled execution backend's input.
//!
//! A [`LaidProgram`] is immutable once the compiler passes have run, yet
//! the interpreting pipeline re-inspects `Instruction` structs — branch
//! spec enums, operand options, region lookups — on every fetch of every
//! cycle. This module compiles a laid-out program **once** into a
//! [`CompiledTrace`]: two flat per-slot arrays ([`DecodedInstr`] for the
//! fetch/decode metadata, [`TraceOp`] for the architectural semantics)
//! with every branch target pre-resolved to a slot index, every data
//! region pre-folded to its concrete page/array, and every slot's virtual
//! page number pre-computed.
//!
//! [`TraceWalker`] replays a trace with **bit-identical** behaviour to
//! [`Walker`](crate::walk::Walker): the same RNG draws in the same order,
//! the same call-stack push/overwrite rules, the same end-of-text wrap.
//! The golden-output suite holds both backends to the same recorded
//! reports, so the trace is an optimization, never a second model.
//!
//! Traces persist in the artifact store under the `traces` namespace
//! (keys fingerprint the generator params, page geometry, layout
//! instrumentation, and SoLA marking), so a warm process skips the
//! compile entirely. Loaded traces are structurally re-validated; any
//! parse or validation failure degrades to a cold recompile.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cfr_types::{
    PageGeometry, RecordError, RecordReader, RecordWriter, StoreBackend, VirtAddr,
    INSTRUCTION_BYTES, NS_TRACES,
};
use serde::{Deserialize, Serialize};

use crate::codec::{opt_reg_from_record, opt_reg_to_record, record_bool, trace_store_key};
use crate::isa::{BranchKind, BranchTarget, DataRegion, OpClass, RegId};
use crate::layout::LaidProgram;
use crate::profiles::BenchmarkProfile;
use crate::rng::SplitMix64;
use crate::walk::{
    BranchExec, StepInfo, FRAME_BYTES, GLOBAL_BASE, HEAP_BASE, MAX_CALL_DEPTH, STACK_BASE,
};

/// Everything the pipeline's fetch/decode stages need about one slot,
/// pre-extracted so the hot loop never touches an [`Instruction`]
/// (`Vec`-carrying branch specs included).
///
/// [`Instruction`]: crate::isa::Instruction
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DecodedInstr {
    /// Functional class.
    pub class: OpClass,
    /// Source registers.
    pub srcs: [Option<RegId>; 2],
    /// Destination register.
    pub dst: Option<RegId>,
    /// Execution latency in cycles once issued.
    pub latency: u32,
    /// Branch kind (present iff `class == Branch`).
    pub branch: Option<BranchKind>,
    /// The SoLA in-page bit.
    pub in_page_hint: bool,
    /// True for compiler-inserted page-boundary branches.
    pub boundary: bool,
    /// Virtual page number of this slot's address.
    pub page: u64,
}

/// The architectural semantics of one slot, with targets pre-resolved to
/// slot indices and data regions pre-folded to their concrete page/array.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Falls through to `slot + 1`; no RNG, no memory.
    Plain,
    /// Stack access: address depends on the live call depth.
    MemStack,
    /// Global access to the (pre-folded) global page index.
    MemGlobal {
        /// Global page index, already reduced modulo the page count.
        page: u64,
    },
    /// Heap access walking the (pre-folded) array's cursor.
    MemHeap {
        /// Heap array index, already reduced modulo the array count.
        array: u32,
    },
    /// Conditional branch: taken with probability `bias`.
    Cond {
        /// Per-site taken probability.
        bias: f64,
        /// Taken-target slot.
        target: u32,
    },
    /// Unconditional direct jump (boundary branches' `NextSlot` targets
    /// are resolved to `slot + 1` at compile time).
    Jump {
        /// Target slot.
        target: u32,
    },
    /// Direct call; pushes `slot + 1` as the return slot.
    Call {
        /// Callee entry slot.
        target: u32,
    },
    /// Return; pops the call stack (entry slot when empty).
    Return,
    /// Indirect jump over `count` candidates starting at `start` in the
    /// trace's flat target pool.
    IndirectJump {
        /// First candidate index in [`CompiledTrace::indirect_targets`].
        start: u32,
        /// Number of candidates.
        count: u32,
    },
    /// Indirect call: pushes a return slot like [`TraceOp::Call`], then
    /// picks a candidate like [`TraceOp::IndirectJump`].
    IndirectCall {
        /// First candidate index in [`CompiledTrace::indirect_targets`].
        start: u32,
        /// Number of candidates.
        count: u32,
    },
}

/// A [`LaidProgram`] compiled to flat pre-decoded arrays — the compiled
/// execution backend's program representation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompiledTrace {
    /// Page geometry used for layout.
    pub geom: PageGeometry,
    /// Address of slot 0.
    pub base: VirtAddr,
    /// Per-slot fetch/decode metadata.
    pub decoded: Vec<DecodedInstr>,
    /// Per-slot architectural semantics (parallel to `decoded`).
    pub ops: Vec<TraceOp>,
    /// Flat pool of pre-resolved indirect-branch target slots.
    pub indirect_targets: Vec<u32>,
    /// Whether the source layout was instrumented (boundary branches).
    pub instrumented: bool,
    /// Number of global data pages.
    pub global_pages: u16,
    /// Number of heap arrays.
    pub heap_arrays: u16,
    /// Pages per heap array.
    pub heap_array_pages: u16,
}

/// Execution latency of a class (mirrors `Instruction::latency`).
fn class_latency(class: OpClass) -> u32 {
    match class {
        OpClass::IntAlu | OpClass::Branch => 1,
        OpClass::IntMul => 3,
        OpClass::FpAlu => 2,
        OpClass::FpMul => 4,
        OpClass::Load | OpClass::Store => 1,
    }
}

/// The branch kind a [`TraceOp`] encodes, if any.
fn branch_kind_of(op: &TraceOp) -> Option<BranchKind> {
    match op {
        TraceOp::Cond { bias, .. } => Some(BranchKind::Conditional { taken_bias: *bias }),
        TraceOp::Jump { .. } => Some(BranchKind::Jump),
        TraceOp::Call { .. } => Some(BranchKind::Call),
        TraceOp::Return => Some(BranchKind::Return),
        TraceOp::IndirectJump { .. } => Some(BranchKind::IndirectJump),
        TraceOp::IndirectCall { .. } => Some(BranchKind::IndirectCall),
        TraceOp::Plain
        | TraceOp::MemStack
        | TraceOp::MemGlobal { .. }
        | TraceOp::MemHeap { .. } => None,
    }
}

/// Compiles `laid` into its flat pre-decoded trace.
///
/// # Panics
///
/// Panics on an inconsistent branch spec (a kind paired with a target
/// shape the walker could not execute) — impossible for any program that
/// passes [`Program::validate`](crate::program::Program::validate).
#[must_use]
#[allow(clippy::cast_possible_truncation)]
pub fn compile_trace(laid: &LaidProgram) -> CompiledTrace {
    let n = laid.slots.len();
    let mut decoded = Vec::with_capacity(n);
    let mut ops = Vec::with_capacity(n);
    let mut indirect_targets = Vec::new();
    for (slot, s) in laid.slots.iter().enumerate() {
        let instr = &s.instr;
        let op = match instr.class {
            OpClass::Branch => {
                let spec = instr.branch.as_ref().expect("branch has spec");
                match (&spec.kind, &spec.target) {
                    (BranchKind::Conditional { taken_bias }, BranchTarget::Block(b)) => {
                        TraceOp::Cond {
                            bias: *taken_bias,
                            target: laid.block_slot(*b) as u32,
                        }
                    }
                    (BranchKind::Jump, BranchTarget::Block(b)) => TraceOp::Jump {
                        target: laid.block_slot(*b) as u32,
                    },
                    (BranchKind::Jump, BranchTarget::NextSlot) => TraceOp::Jump {
                        target: (slot + 1) as u32,
                    },
                    (BranchKind::Call, BranchTarget::Block(b)) => TraceOp::Call {
                        target: laid.block_slot(*b) as u32,
                    },
                    (BranchKind::Return, BranchTarget::CallerReturn) => TraceOp::Return,
                    (BranchKind::IndirectJump, BranchTarget::Indirect(ts)) => {
                        let start = indirect_targets.len() as u32;
                        indirect_targets.extend(ts.iter().map(|b| laid.block_slot(*b) as u32));
                        TraceOp::IndirectJump {
                            start,
                            count: ts.len() as u32,
                        }
                    }
                    (BranchKind::IndirectCall, BranchTarget::Indirect(ts)) => {
                        let start = indirect_targets.len() as u32;
                        indirect_targets.extend(ts.iter().map(|b| laid.block_slot(*b) as u32));
                        TraceOp::IndirectCall {
                            start,
                            count: ts.len() as u32,
                        }
                    }
                    (kind, target) => {
                        unreachable!("inconsistent branch: {kind:?} with {target:?}")
                    }
                }
            }
            OpClass::Load | OpClass::Store => match instr.region.expect("memory op has a region") {
                DataRegion::Stack => TraceOp::MemStack,
                DataRegion::Global(g) => TraceOp::MemGlobal {
                    page: u64::from(g) % u64::from(laid.global_pages.max(1)),
                },
                DataRegion::Heap(h) => TraceOp::MemHeap {
                    array: u32::from(h) % u32::from(laid.heap_arrays.max(1)),
                },
            },
            OpClass::IntAlu | OpClass::IntMul | OpClass::FpAlu | OpClass::FpMul => TraceOp::Plain,
        };
        let spec = instr.branch.as_ref();
        decoded.push(DecodedInstr {
            class: instr.class,
            srcs: instr.srcs,
            dst: instr.dst,
            latency: instr.latency(),
            branch: spec.map(|s| s.kind),
            in_page_hint: spec.is_some_and(|s| s.in_page_hint),
            boundary: spec.is_some_and(|s| s.boundary),
            page: laid.geom.vpn(laid.addr_of(slot)).raw(),
        });
        ops.push(op);
    }
    CompiledTrace {
        geom: laid.geom,
        base: laid.base,
        decoded,
        ops,
        indirect_targets,
        instrumented: laid.instrumented,
        global_pages: laid.global_pages,
        heap_arrays: laid.heap_arrays,
        heap_array_pages: laid.heap_array_pages,
    }
}

impl CompiledTrace {
    /// Number of instruction slots.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.decoded.len()
    }

    /// Whether the trace has no slots (never true for a valid trace).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.decoded.is_empty()
    }

    /// Address of slot `i`.
    #[inline]
    #[must_use]
    pub fn addr_of(&self, slot: usize) -> VirtAddr {
        self.base.add(slot as u64 * INSTRUCTION_BYTES)
    }

    /// Slot index at `addr`, if it names an instruction of this trace.
    #[must_use]
    pub fn slot_of(&self, addr: VirtAddr) -> Option<usize> {
        let a = addr.raw();
        let b = self.base.raw();
        if a < b || !(a - b).is_multiple_of(INSTRUCTION_BYTES) {
            return None;
        }
        let idx = ((a - b) / INSTRUCTION_BYTES) as usize;
        (idx < self.decoded.len()).then_some(idx)
    }

    /// The program's entry slot.
    #[must_use]
    pub fn entry_slot(&self) -> usize {
        0
    }

    /// Structural validation for traces loaded from the store: every
    /// target in bounds, every op consistent with its slot's class, every
    /// pre-folded region index reduced. Any failure means the record is
    /// corrupt or stale and the caller recompiles.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.decoded.len();
        if n == 0 {
            return Err("trace has no slots".into());
        }
        if self.ops.len() != n {
            return Err(format!("{} ops for {n} slots", self.ops.len()));
        }
        if self.heap_arrays == 0 {
            return Err("trace has no heap arrays".into());
        }
        for (i, &t) in self.indirect_targets.iter().enumerate() {
            if t as usize >= n {
                return Err(format!("indirect target {i} = {t} out of range"));
            }
        }
        for (slot, (d, op)) in self.decoded.iter().zip(&self.ops).enumerate() {
            let err = |msg: &str| Err(format!("slot {slot}: {msg}"));
            let class_ok = match op {
                TraceOp::Plain => matches!(
                    d.class,
                    OpClass::IntAlu | OpClass::IntMul | OpClass::FpAlu | OpClass::FpMul
                ),
                TraceOp::MemStack | TraceOp::MemGlobal { .. } | TraceOp::MemHeap { .. } => {
                    matches!(d.class, OpClass::Load | OpClass::Store)
                }
                _ => d.class == OpClass::Branch,
            };
            if !class_ok {
                return err("op inconsistent with class");
            }
            if d.branch != branch_kind_of(op) {
                return err("branch kind inconsistent with op");
            }
            match *op {
                TraceOp::Cond { bias, target } => {
                    if !(0.0..=1.0).contains(&bias) {
                        return err("conditional bias out of [0, 1]");
                    }
                    if target as usize >= n {
                        return err("conditional target out of range");
                    }
                }
                // A final-slot boundary/fall-through jump may legally
                // target one-past-the-end (the walker wraps it to entry).
                TraceOp::Jump { target } => {
                    if target as usize > n {
                        return err("jump target out of range");
                    }
                }
                TraceOp::Call { target } => {
                    if target as usize >= n {
                        return err("call target out of range");
                    }
                }
                TraceOp::IndirectJump { start, count } | TraceOp::IndirectCall { start, count } => {
                    if count == 0 {
                        return err("indirect branch with no targets");
                    }
                    let end = start as usize + count as usize;
                    if end > self.indirect_targets.len() {
                        return err("indirect range out of the target pool");
                    }
                }
                TraceOp::MemGlobal { page } => {
                    if page >= u64::from(self.global_pages.max(1)) {
                        return err("global page not pre-folded");
                    }
                }
                TraceOp::MemHeap { array } => {
                    if array >= u32::from(self.heap_arrays) {
                        return err("heap array not pre-folded");
                    }
                }
                TraceOp::Plain | TraceOp::MemStack | TraceOp::Return => {}
            }
        }
        Ok(())
    }

    /// Serializes the trace (persistent artifact store codec; the
    /// vendored `serde` is a no-op). Per-slot latency, page number, and
    /// branch kind are derived on load rather than stored.
    pub fn to_record(&self, w: &mut RecordWriter) {
        w.token("trace");
        w.u64(self.geom.page_bytes());
        w.u64(self.base.raw());
        w.u64(u64::from(self.instrumented));
        w.u64(u64::from(self.global_pages));
        w.u64(u64::from(self.heap_arrays));
        w.u64(u64::from(self.heap_array_pages));
        w.token("itargets");
        w.u64(self.indirect_targets.len() as u64);
        for t in &self.indirect_targets {
            w.u64(u64::from(*t));
        }
        w.token("slots");
        w.u64(self.decoded.len() as u64);
        for (d, op) in self.decoded.iter().zip(&self.ops) {
            w.token(match d.class {
                OpClass::IntAlu => "ialu",
                OpClass::IntMul => "imul",
                OpClass::FpAlu => "falu",
                OpClass::FpMul => "fmul",
                OpClass::Load => "ld",
                OpClass::Store => "st",
                OpClass::Branch => "br",
            });
            match *op {
                TraceOp::Plain => {}
                TraceOp::MemStack => w.token("stack"),
                TraceOp::MemGlobal { page } => {
                    w.token("g");
                    w.u64(page);
                }
                TraceOp::MemHeap { array } => {
                    w.token("h");
                    w.u64(u64::from(array));
                }
                TraceOp::Cond { bias, target } => {
                    w.token("cond");
                    w.f64(bias);
                    w.u64(u64::from(target));
                }
                TraceOp::Jump { target } => {
                    w.token("jmp");
                    w.u64(u64::from(target));
                }
                TraceOp::Call { target } => {
                    w.token("call");
                    w.u64(u64::from(target));
                }
                TraceOp::Return => w.token("ret"),
                TraceOp::IndirectJump { start, count } => {
                    w.token("ij");
                    w.u64(u64::from(start));
                    w.u64(u64::from(count));
                }
                TraceOp::IndirectCall { start, count } => {
                    w.token("ic");
                    w.u64(u64::from(start));
                    w.u64(u64::from(count));
                }
            }
            if d.class == OpClass::Branch {
                w.u64(u64::from(d.in_page_hint));
                w.u64(u64::from(d.boundary));
            }
            opt_reg_to_record(d.srcs[0], w);
            opt_reg_to_record(d.srcs[1], w);
            opt_reg_to_record(d.dst, w);
        }
    }

    /// Parses a [`Self::to_record`] stream. Callers loading untrusted
    /// bytes (the trace cache) should additionally run
    /// [`Self::validate`] on the result.
    ///
    /// # Errors
    ///
    /// Errors on a malformed stream.
    pub fn from_record(r: &mut RecordReader<'_>) -> Result<Self, RecordError> {
        r.expect("trace")?;
        let page_bytes = r.u64()?;
        let geom = PageGeometry::new(page_bytes)
            .map_err(|e| RecordError::new(format!("bad trace geometry: {e}")))?;
        let base = VirtAddr::new(r.u64()?);
        let instrumented = record_bool(r)?;
        let scalar = |r: &mut RecordReader<'_>| -> Result<u16, RecordError> {
            let v = r.u64()?;
            u16::try_from(v).map_err(|_| RecordError::new(format!("scalar {v} exceeds u16")))
        };
        let global_pages = scalar(r)?;
        let heap_arrays = scalar(r)?;
        let heap_array_pages = scalar(r)?;
        r.expect("itargets")?;
        let n_targets = r.usize()?;
        let mut indirect_targets = Vec::with_capacity(n_targets.min(1 << 20));
        for _ in 0..n_targets {
            indirect_targets.push(r.u32()?);
        }
        r.expect("slots")?;
        let n_slots = r.usize()?;
        let mut decoded = Vec::with_capacity(n_slots.min(1 << 22));
        let mut ops = Vec::with_capacity(n_slots.min(1 << 22));
        for slot in 0..n_slots {
            let class = match r.token()? {
                "ialu" => OpClass::IntAlu,
                "imul" => OpClass::IntMul,
                "falu" => OpClass::FpAlu,
                "fmul" => OpClass::FpMul,
                "ld" => OpClass::Load,
                "st" => OpClass::Store,
                "br" => OpClass::Branch,
                other => return Err(RecordError::new(format!("unknown op class {other:?}"))),
            };
            let op = match class {
                OpClass::Load | OpClass::Store => match r.token()? {
                    "stack" => TraceOp::MemStack,
                    "g" => TraceOp::MemGlobal { page: r.u64()? },
                    "h" => TraceOp::MemHeap { array: r.u32()? },
                    other => {
                        return Err(RecordError::new(format!("unknown trace region {other:?}")))
                    }
                },
                OpClass::Branch => match r.token()? {
                    "cond" => TraceOp::Cond {
                        bias: r.f64()?,
                        target: r.u32()?,
                    },
                    "jmp" => TraceOp::Jump { target: r.u32()? },
                    "call" => TraceOp::Call { target: r.u32()? },
                    "ret" => TraceOp::Return,
                    "ij" => TraceOp::IndirectJump {
                        start: r.u32()?,
                        count: r.u32()?,
                    },
                    "ic" => TraceOp::IndirectCall {
                        start: r.u32()?,
                        count: r.u32()?,
                    },
                    other => return Err(RecordError::new(format!("unknown trace op {other:?}"))),
                },
                _ => TraceOp::Plain,
            };
            let (in_page_hint, boundary) = if class == OpClass::Branch {
                (record_bool(r)?, record_bool(r)?)
            } else {
                (false, false)
            };
            decoded.push(DecodedInstr {
                class,
                srcs: [opt_reg_from_record(r)?, opt_reg_from_record(r)?],
                dst: opt_reg_from_record(r)?,
                latency: class_latency(class),
                branch: branch_kind_of(&op),
                in_page_hint,
                boundary,
                page: geom.vpn(base.add(slot as u64 * INSTRUCTION_BYTES)).raw(),
            });
            ops.push(op);
        }
        Ok(Self {
            geom,
            base,
            decoded,
            ops,
            indirect_targets,
            instrumented,
            global_pages,
            heap_arrays,
            heap_array_pages,
        })
    }
}

/// Deterministic architectural executor over a [`CompiledTrace`] —
/// bit-identical to [`Walker`](crate::walk::Walker) over the trace's
/// source program for any seed.
#[derive(Clone, Debug)]
pub struct TraceWalker<'t> {
    trace: &'t CompiledTrace,
    cur: usize,
    stack: Vec<usize>,
    rng: SplitMix64,
    heap_cursor: Vec<u64>,
    steps: u64,
}

impl<'t> TraceWalker<'t> {
    /// Creates a walker at the trace's entry slot.
    #[must_use]
    pub fn new(trace: &'t CompiledTrace, seed: u64) -> Self {
        Self {
            trace,
            cur: trace.entry_slot(),
            stack: Vec::with_capacity(MAX_CALL_DEPTH),
            rng: SplitMix64::new(seed),
            heap_cursor: vec![0; trace.heap_arrays as usize],
            steps: 0,
        }
    }

    /// Slot the walker will execute next.
    #[must_use]
    pub fn current_slot(&self) -> usize {
        self.cur
    }

    /// Current call depth.
    #[must_use]
    pub fn call_depth(&self) -> usize {
        self.stack.len()
    }

    /// Instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    #[inline]
    fn push_return(&mut self, ret: usize) {
        if self.stack.len() < MAX_CALL_DEPTH {
            self.stack.push(ret);
        } else {
            *self.stack.last_mut().expect("depth > 0") = ret;
        }
    }

    /// Executes the current instruction and advances.
    #[inline]
    pub fn step(&mut self) -> StepInfo {
        let slot = self.cur;
        let t = self.trace;
        let addr = t.addr_of(slot);
        self.steps += 1;

        let mut branch = None;
        let mut mem_addr = None;

        let next_slot = match t.ops[slot] {
            TraceOp::Plain => slot + 1,
            TraceOp::MemStack => {
                let depth = self.stack.len() as u64;
                let frame_base = STACK_BASE - (depth + 1) * FRAME_BYTES;
                let off = self.rng.below(FRAME_BYTES / 8) * 8;
                mem_addr = Some(VirtAddr::new(frame_base + off));
                slot + 1
            }
            TraceOp::MemGlobal { page } => {
                let bytes = t.geom.page_bytes();
                let off = self.rng.below(bytes / 8) * 8;
                mem_addr = Some(VirtAddr::new(GLOBAL_BASE + page * bytes + off));
                slot + 1
            }
            TraceOp::MemHeap { array } => {
                let array = array as usize;
                let array_bytes = u64::from(t.heap_array_pages) * t.geom.page_bytes();
                let cur = &mut self.heap_cursor[array];
                // Wrap-by-subtract: the cursor stays below the array size
                // and strides by 64, so this equals the old `% size`
                // without a hardware divide on every heap access.
                let wrap = array_bytes.max(64);
                *cur += 64;
                if *cur >= wrap {
                    *cur -= wrap;
                }
                mem_addr = Some(VirtAddr::new(HEAP_BASE + array as u64 * array_bytes + *cur));
                slot + 1
            }
            TraceOp::Cond { bias, target } => {
                let (taken, next) = if self.rng.chance(bias) {
                    (true, target as usize)
                } else {
                    (false, slot + 1)
                };
                branch = Some(BranchExec {
                    taken,
                    next_addr: t.addr_of(next),
                });
                next
            }
            TraceOp::Jump { target } => {
                let next = target as usize;
                branch = Some(BranchExec {
                    taken: true,
                    next_addr: t.addr_of(next),
                });
                next
            }
            TraceOp::Call { target } => {
                self.push_return(slot + 1);
                let next = target as usize;
                branch = Some(BranchExec {
                    taken: true,
                    next_addr: t.addr_of(next),
                });
                next
            }
            TraceOp::Return => {
                let next = self.stack.pop().unwrap_or_else(|| t.entry_slot());
                branch = Some(BranchExec {
                    taken: true,
                    next_addr: t.addr_of(next),
                });
                next
            }
            TraceOp::IndirectJump { start, count } => {
                let pick = self.rng.below(u64::from(count)) as usize;
                let next = t.indirect_targets[start as usize + pick] as usize;
                branch = Some(BranchExec {
                    taken: true,
                    next_addr: t.addr_of(next),
                });
                next
            }
            TraceOp::IndirectCall { start, count } => {
                self.push_return(slot + 1);
                let pick = self.rng.below(u64::from(count)) as usize;
                let next = t.indirect_targets[start as usize + pick] as usize;
                branch = Some(BranchExec {
                    taken: true,
                    next_addr: t.addr_of(next),
                });
                next
            }
        };

        // Falling off the very end of the text restarts at the entry
        // (same wrap as `Walker::step`; the `next_addr` above is the
        // unwrapped successor, also matching the interpreter).
        let next_slot = if next_slot >= t.len() {
            t.entry_slot()
        } else {
            next_slot
        };

        self.cur = next_slot;
        let d = &t.decoded[slot];
        StepInfo {
            slot,
            addr,
            class: d.class,
            next_slot,
            branch,
            mem_addr,
            is_boundary: d.boundary,
        }
    }
}

/// Memo key: profile name plus everything that changes the compiled
/// trace — page geometry, layout instrumentation, SoLA marking.
type TraceKey = (&'static str, u64, bool, bool);

/// A memo of compiled traces, optionally backed by the persistent
/// artifact store's `traces` namespace — the compiled-backend sibling of
/// [`ProgramCache`](crate::cache::ProgramCache).
#[derive(Debug, Default)]
pub struct TraceCache {
    traces: Mutex<HashMap<TraceKey, Arc<CompiledTrace>>>,
    store: Mutex<Option<Arc<dyn StoreBackend>>>,
    /// Store-probe answers delivered ahead of time by a batched prefetch
    /// ([`TraceCache::prime`]), keyed by store key: `Some(text)` is the
    /// stored record, `None` a definite miss. Consumed by the next
    /// [`TraceCache::get`] in place of its own per-key store probe.
    pending: Mutex<HashMap<String, Option<String>>>,
    compiled: AtomicU64,
    loaded: AtomicU64,
}

impl TraceCache {
    /// An empty, in-memory-only cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Backs this cache with a persistent store: first requests consult
    /// the store's `traces` namespace before compiling, and fresh
    /// compilations are written back.
    pub fn attach_store(&self, store: Arc<dyn StoreBackend>) {
        *self.store.lock().expect("trace cache poisoned") = Some(store);
    }

    /// The compiled trace for `laid` (the layout of `profile`'s program,
    /// with `sola_marked` naming whether the SoLA in-page pass ran), from
    /// (in order) the in-memory memo, the attached store, or
    /// [`compile_trace`].
    ///
    /// # Panics
    ///
    /// Panics if a cache mutex is poisoned.
    #[must_use]
    pub fn get(
        &self,
        profile: &BenchmarkProfile,
        laid: &LaidProgram,
        sola_marked: bool,
    ) -> Arc<CompiledTrace> {
        let key: TraceKey = (
            profile.name,
            laid.geom.page_bytes(),
            laid.instrumented,
            sola_marked,
        );
        let mut traces = self.traces.lock().expect("trace cache poisoned");
        if let Some(trace) = traces.get(&key) {
            return Arc::clone(trace);
        }
        let store = self.store.lock().expect("trace cache poisoned").clone();
        let store_key = trace_store_key(profile, laid.geom, laid.instrumented, sola_marked);
        let primed = self
            .pending
            .lock()
            .expect("trace cache poisoned")
            .remove(&store_key);
        let warm = match primed {
            // A batched prefetch already probed the store for this key;
            // a primed `None` is a definite miss, so skip the re-probe.
            Some(answer) => answer.and_then(|text| Self::parse_stored(&text, laid)),
            None => store
                .as_deref()
                .and_then(|s| s.load(NS_TRACES, &store_key))
                .and_then(|text| Self::parse_stored(&text, laid)),
        };
        let trace = match warm {
            Some(warm) => {
                self.loaded.fetch_add(1, Ordering::Relaxed);
                warm
            }
            None => {
                self.compiled.fetch_add(1, Ordering::Relaxed);
                let fresh = compile_trace(laid);
                if let Some(store) = &store {
                    let mut w = RecordWriter::new();
                    fresh.to_record(&mut w);
                    store.save(NS_TRACES, &store_key, &w.finish());
                }
                fresh
            }
        };
        let trace = Arc::new(trace);
        traces.insert(key, Arc::clone(&trace));
        trace
    }

    /// Hands the cache the result of a batched store probe for
    /// `store_key` (see [`trace_store_key`]): `Some(text)` is the stored
    /// record, `None` a definite miss. The next [`Self::get`] whose
    /// layout maps to that key consumes the answer instead of issuing
    /// its own store round trip; the primed record passes the exact same
    /// validation a loaded one would, so corruption still degrades to a
    /// recompile.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    pub fn prime(&self, store_key: String, value: Option<String>) {
        self.pending
            .lock()
            .expect("trace cache poisoned")
            .insert(store_key, value);
    }

    /// Parses and re-validates a stored trace record; any parse,
    /// validation, or shape mismatch against the live layout is a miss
    /// (the caller recompiles and overwrites).
    fn parse_stored(text: &str, laid: &LaidProgram) -> Option<CompiledTrace> {
        let mut r = RecordReader::new(text);
        let trace = CompiledTrace::from_record(&mut r).ok()?;
        r.finish().ok()?;
        trace.validate().ok()?;
        (trace.geom == laid.geom
            && trace.base == laid.base
            && trace.instrumented == laid.instrumented
            && trace.decoded.len() == laid.slots.len())
        .then_some(trace)
    }

    /// How many traces this cache actually compiled (in-memory *and*
    /// store misses).
    #[must_use]
    pub fn compiled(&self) -> u64 {
        self.compiled.load(Ordering::Relaxed)
    }

    /// How many traces were served from the persistent store instead of
    /// being compiled (0 without a store).
    #[must_use]
    pub fn loaded(&self) -> u64 {
        self.loaded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorParams};
    use crate::profiles;
    use crate::walk::Walker;
    use cfr_types::{ArtifactStore, GcPolicy};
    use std::path::PathBuf;

    fn small_laid(instrumented: bool) -> LaidProgram {
        let prog = generate(&GeneratorParams::small_test());
        LaidProgram::lay_out(&prog, PageGeometry::default_4k(), instrumented)
    }

    #[test]
    fn trace_walker_matches_walker_step_for_step() {
        for instrumented in [false, true] {
            let laid = small_laid(instrumented);
            let trace = compile_trace(&laid);
            for seed in [1u64, 0x5EED, 24301] {
                let mut interp = Walker::new(&laid, seed);
                let mut compiled = TraceWalker::new(&trace, seed);
                for i in 0..20_000 {
                    assert_eq!(
                        interp.step(),
                        compiled.step(),
                        "step {i} (instrumented={instrumented}, seed={seed})"
                    );
                }
                assert_eq!(interp.current_slot(), compiled.current_slot());
                assert_eq!(interp.call_depth(), compiled.call_depth());
                assert_eq!(interp.steps(), compiled.steps());
            }
        }
    }

    #[test]
    fn trace_walker_matches_walker_on_large_pages() {
        // The golden set overrides page size to 16 KB; the pre-folded
        // global/heap addresses must track the geometry.
        let prog = generate(&GeneratorParams::small_test());
        let geom = PageGeometry::new(16384).unwrap();
        let laid = LaidProgram::lay_out(&prog, geom, true);
        let trace = compile_trace(&laid);
        let mut interp = Walker::new(&laid, 7);
        let mut compiled = TraceWalker::new(&trace, 7);
        for _ in 0..20_000 {
            assert_eq!(interp.step(), compiled.step());
        }
    }

    #[test]
    fn trace_mirrors_layout_metadata() {
        let laid = small_laid(true);
        let trace = compile_trace(&laid);
        assert_eq!(trace.len(), laid.slots.len());
        assert!(trace.validate().is_ok());
        for i in [0usize, 1, trace.len() - 1] {
            assert_eq!(trace.addr_of(i), laid.addr_of(i));
            assert_eq!(trace.slot_of(trace.addr_of(i)), Some(i));
            let d = &trace.decoded[i];
            let instr = &laid.slots[i].instr;
            assert_eq!(d.class, instr.class);
            assert_eq!(d.latency, instr.latency());
            assert_eq!(d.page, laid.geom.vpn(laid.addr_of(i)).raw());
        }
        assert_eq!(trace.slot_of(VirtAddr::new(trace.base.raw() - 4)), None);
        assert_eq!(trace.slot_of(trace.addr_of(trace.len())), None);
    }

    #[test]
    fn record_round_trips_exactly() {
        for instrumented in [false, true] {
            let trace = compile_trace(&small_laid(instrumented));
            let mut w = RecordWriter::new();
            trace.to_record(&mut w);
            let record = w.finish();
            assert!(!record.contains('\n'), "store values are single-line");
            let mut r = RecordReader::new(&record);
            let back = CompiledTrace::from_record(&mut r).unwrap();
            r.finish().unwrap();
            assert_eq!(back, trace, "bit-exact round trip (biases included)");
            assert!(back.validate().is_ok());
        }
    }

    #[test]
    fn corrupt_trace_records_are_errors() {
        let trace = compile_trace(&small_laid(false));
        let mut w = RecordWriter::new();
        trace.to_record(&mut w);
        let record = w.finish();
        // Truncation.
        assert!(
            CompiledTrace::from_record(&mut RecordReader::new(&record[..record.len() / 2]))
                .is_err()
        );
        // Damaged tag.
        let damaged = record.replacen("trace", "trance", 1);
        assert!(CompiledTrace::from_record(&mut RecordReader::new(&damaged)).is_err());
        // A bogus op class in the middle.
        let bogus = record.replacen(" ialu ", " zalu ", 1);
        assert_ne!(bogus, record);
        assert!(CompiledTrace::from_record(&mut RecordReader::new(&bogus)).is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_shapes() {
        let mut trace = compile_trace(&small_laid(false));
        assert!(trace.validate().is_ok());
        let n = trace.len() as u32;
        // An out-of-range direct target.
        let cond_slot = trace
            .ops
            .iter()
            .position(|op| matches!(op, TraceOp::Cond { .. }))
            .expect("generated program has conditionals");
        let good = trace.ops[cond_slot];
        trace.ops[cond_slot] = TraceOp::Cond {
            bias: 0.5,
            target: n + 1,
        };
        assert!(trace.validate().is_err());
        trace.ops[cond_slot] = good;
        assert!(trace.validate().is_ok());
        // An op/class mismatch.
        let plain_slot = trace
            .ops
            .iter()
            .position(|op| matches!(op, TraceOp::Plain))
            .expect("generated program has plain ops");
        trace.ops[plain_slot] = TraceOp::Return;
        assert!(trace.validate().is_err());
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfr-tracecache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_compiles_each_layout_once() {
        let cache = TraceCache::new();
        let profile = profiles::mesa();
        let laid = LaidProgram::lay_out(&profile.generate(), PageGeometry::default_4k(), false);
        let a = cache.get(&profile, &laid, false);
        let b = cache.get(&profile, &laid, false);
        assert!(Arc::ptr_eq(&a, &b), "second get must share the first Arc");
        assert_eq!(cache.compiled(), 1);
        // A different layout flavour is a different trace.
        let instr = LaidProgram::lay_out(&profile.generate(), PageGeometry::default_4k(), true);
        let c = cache.get(&profile, &instr, false);
        assert_eq!(cache.compiled(), 2);
        assert_ne!(*c, *a);
        assert_eq!(cache.loaded(), 0, "no store attached");
    }

    #[test]
    fn store_serves_traces_across_caches() {
        let dir = temp_store("warm");
        let profile = profiles::mesa();
        let laid = LaidProgram::lay_out(&profile.generate(), PageGeometry::default_4k(), true);

        let cold = TraceCache::new();
        cold.attach_store(Arc::new(
            ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap(),
        ));
        let compiled = cold.get(&profile, &laid, false);
        assert_eq!((cold.compiled(), cold.loaded()), (1, 0));

        // A fresh cache over the same directory (= a fresh process) loads
        // instead of compiling, and the trace is identical.
        let warm = TraceCache::new();
        warm.attach_store(Arc::new(
            ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap(),
        ));
        let loaded = warm.get(&profile, &laid, false);
        assert_eq!((warm.compiled(), warm.loaded()), (0, 1));
        assert_eq!(*loaded, *compiled);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn primed_answers_replace_per_key_store_probes() {
        let profile = profiles::mesa();
        let laid = LaidProgram::lay_out(&profile.generate(), PageGeometry::default_4k(), false);
        let mut w = RecordWriter::new();
        compile_trace(&laid).to_record(&mut w);
        let record = w.finish();
        let key = trace_store_key(&profile, laid.geom, laid.instrumented, false);

        // A primed hit serves warm with no store attached at all — proof
        // the cache consumed the prefetched answer, not a store probe.
        let cache = TraceCache::new();
        cache.prime(key.clone(), Some(record));
        let trace = cache.get(&profile, &laid, false);
        assert_eq!((cache.compiled(), cache.loaded()), (0, 1));
        assert_eq!(*trace, compile_trace(&laid));

        // A primed definite miss compiles without consulting the store.
        let cold = TraceCache::new();
        cold.prime(key.clone(), None);
        let _ = cold.get(&profile, &laid, false);
        assert_eq!((cold.compiled(), cold.loaded()), (1, 0));

        // A corrupt primed record degrades to a recompile, like any
        // corrupt stored record.
        let corrupt = TraceCache::new();
        corrupt.prime(key, Some("not a trace".into()));
        let recompiled = corrupt.get(&profile, &laid, false);
        assert_eq!((corrupt.compiled(), corrupt.loaded()), (1, 0));
        assert_eq!(*recompiled, compile_trace(&laid));
    }

    #[test]
    fn corrupt_stored_trace_recompiles() {
        let dir = temp_store("corrupt");
        let profile = profiles::mesa();
        let laid = LaidProgram::lay_out(&profile.generate(), PageGeometry::default_4k(), false);
        let store: Arc<dyn StoreBackend> =
            Arc::new(ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap());
        let key = trace_store_key(&profile, laid.geom, laid.instrumented, false);
        // A parseable-but-invalid trace (no slots), a parseable trace
        // whose shape mismatches the live layout, and plain garbage: all
        // three degrade to a cold recompile, never wrong output.
        for vandalism in [
            "trace 4096 4194304 0 1 1 1 itargets 0 slots 0",
            "trace 4096 4194304 0 1 1 1 itargets 0 slots 1 ialu - - -",
            "not a trace",
        ] {
            store.save(NS_TRACES, &key, vandalism);
            let cache = TraceCache::new();
            cache.attach_store(Arc::clone(&store));
            let trace = cache.get(&profile, &laid, false);
            assert_eq!(cache.compiled(), 1, "bad record recompiles: {vandalism}");
            assert_eq!(*trace, compile_trace(&laid));
        }
        // The recompile repaired the store.
        let repaired = TraceCache::new();
        repaired.attach_store(Arc::clone(&store));
        let _ = repaired.get(&profile, &laid, false);
        assert_eq!((repaired.compiled(), repaired.loaded()), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
