//! The synthetic program generator.
//!
//! Emits a whole program — functions, basic blocks, loops, calls, indirect
//! jumps, memory references — whose *dynamic* statistics under the
//! [`crate::Walker`] land on the paper's per-benchmark calibration targets
//! (see [`crate::profiles`]). Every knob maps to an observable the paper
//! reports: block length ⇒ dynamic branch fraction; indirect/call weights ⇒
//! statically-analyzable fraction; function span ⇒ in-page-target fraction;
//! hot-set size, call locality and loop dwell ⇒ iL1 miss rate; taken-bias
//! mixture ⇒ branch-predictor accuracy.
//!
//! # Control-flow shape
//!
//! Each function is a forward-flowing chain of basic blocks ending in a
//! return, with **explicit loop segments**: consecutive block runs whose
//! last block conditionally branches back to the segment start. Loop trip
//! counts are geometric with parameterized bias, so dwell time per function
//! visit is bounded in expectation and execution provably keeps reaching
//! calls and returns (no accidental near-infinite nests, which a naive
//! random-back-edge CFG produces).

use serde::{Deserialize, Serialize};

use crate::isa::{BranchSpec, DataRegion, Instruction, OpClass, RegId};
use crate::program::{Block, BlockId, Function, Program};
use crate::rng::SplitMix64;

/// All generator knobs. See module docs for the observable each drives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GeneratorParams {
    /// RNG seed for program *structure* (execution has its own seed).
    pub seed: u64,
    /// Number of functions; function 0 is `main`.
    pub functions: u32,
    /// The first `hot_functions` functions form the hot set.
    pub hot_functions: u32,
    /// Blocks per function, inclusive range.
    pub blocks_per_function: (u32, u32),
    /// Non-terminator instructions per block, inclusive range.
    pub block_len: (u32, u32),
    /// Probability a block starts a loop segment (bounded geometric dwell).
    pub loop_prob: f64,
    /// Loop segment length in blocks, inclusive range.
    pub loop_len: (u32, u32),
    /// Taken bias of loop back-edges; expected trips = 1/(1-bias).
    pub loop_bias: f64,
    /// Probability a function gets an outer loop re-running its whole body.
    pub outer_loop_prob: f64,
    /// Taken bias of the outer back-edge.
    pub outer_bias: f64,
    /// Probability a loop body contains a call site (executed every trip —
    /// the dominant source of dynamic call/return traffic and of the
    /// paper's BRANCH-case page crossings).
    pub loop_call: f64,
    /// Probability that a loop's call site is an *indirect* call (virtual
    /// dispatch in a hot loop — the eon pattern).
    pub loop_icall: f64,
    /// Probability a non-loop, non-final block has *no* terminator.
    pub plain_fallthrough: f64,
    /// Terminator-kind weights for non-loop blocks
    /// (forward conditional, forward jump, call, indirect).
    pub w_cond: f64,
    /// Weight of unconditional forward jumps.
    pub w_jump: f64,
    /// Weight of calls.
    pub w_call: f64,
    /// Weight of indirect jumps.
    pub w_indirect: f64,
    /// Fraction of indirect-jump table entries that stay within the
    /// function (the rest dispatch to other functions' entries).
    pub indirect_local: f64,
    /// Taken bias of forward conditionals (low: error paths rarely taken).
    pub fwd_bias: f64,
    /// Fraction of conditionals given a weak (hard-to-predict) bias.
    pub weak_fraction: f64,
    /// The weak bias value (≈ 0.5–0.65 hurts a bimodal predictor).
    pub weak_bias: f64,
    /// Probability a call targets the hot set.
    pub call_hot_locality: f64,
    /// Fraction of functions that are *leaves* (no outgoing calls, smaller
    /// bodies). Keeps the dynamic call tree subcritical so calls actually
    /// return — without leaves, call chains pin the stack at its depth cap
    /// and returns never execute.
    pub leaf_fraction: f64,
    /// Probability a call site targets a leaf function.
    pub call_leaf: f64,
    /// Blocks per *leaf* function, inclusive range. Leaf dwell time sets the
    /// dynamic call rate: a hot caller loop executes one call per trip, so
    /// `instructions ≈ caller body + leaf dwell` elapse between calls.
    pub leaf_blocks: (u32, u32),
    /// Fraction of instructions that are loads.
    pub load_frac: f64,
    /// Fraction of instructions that are stores.
    pub store_frac: f64,
    /// Fraction of computational instructions that are FP.
    pub fp_frac: f64,
    /// Fraction of computational instructions that are multiplies.
    pub mul_frac: f64,
    /// Memory-reference region mix: probability of stack.
    pub region_stack: f64,
    /// Probability of global (the rest is heap).
    pub region_global: f64,
    /// Global data pages.
    pub global_pages: u16,
    /// Heap arrays.
    pub heap_arrays: u16,
    /// Pages per heap array.
    pub heap_array_pages: u16,
}

impl GeneratorParams {
    /// A small, fast configuration for unit tests: a few functions, small
    /// blocks, every branch kind present.
    #[must_use]
    pub fn small_test() -> Self {
        Self {
            seed: 0xC0FFEE,
            functions: 8,
            hot_functions: 3,
            blocks_per_function: (6, 12),
            block_len: (2, 8),
            loop_prob: 0.25,
            loop_len: (2, 4),
            loop_bias: 0.85,
            outer_loop_prob: 0.3,
            outer_bias: 0.5,
            loop_call: 0.4,
            loop_icall: 0.15,
            plain_fallthrough: 0.2,
            w_cond: 0.5,
            w_jump: 0.1,
            w_call: 0.3,
            w_indirect: 0.1,
            indirect_local: 0.6,
            fwd_bias: 0.12,
            weak_fraction: 0.2,
            weak_bias: 0.6,
            call_hot_locality: 0.8,
            leaf_fraction: 0.5,
            call_leaf: 0.8,
            leaf_blocks: (3, 6),
            load_frac: 0.22,
            store_frac: 0.10,
            fp_frac: 0.2,
            mul_frac: 0.05,
            region_stack: 0.4,
            region_global: 0.3,
            global_pages: 8,
            heap_arrays: 4,
            heap_array_pages: 8,
        }
    }
}

/// Generates a program from `params`.
///
/// The result always passes [`Program::validate`]: functions tile the block
/// array, every function ends in a return, branches only terminate blocks.
///
/// # Panics
///
/// Panics if ranges are empty or weights are all zero.
#[must_use]
pub fn generate(params: &GeneratorParams) -> Program {
    assert!(params.functions >= 1, "need at least main");
    assert!(
        params.blocks_per_function.0 >= 3,
        "functions need >= 3 blocks (body + outer-loop slot + return)"
    );
    let mut rng = SplitMix64::new(params.seed);
    let hot = params.hot_functions.clamp(1, params.functions);

    // Pass 0: classify functions. `main` (0) is never a leaf.
    let is_leaf: Vec<bool> = (0..params.functions)
        .map(|f| f > 0 && rng.chance(params.leaf_fraction))
        .collect();

    // Pass 1: decide block counts so call targets resolve immediately.
    let block_counts: Vec<u32> = (0..params.functions)
        .map(|f| {
            let (lo, hi) = if is_leaf[f as usize] {
                (params.leaf_blocks.0.max(3), params.leaf_blocks.1.max(3))
            } else {
                params.blocks_per_function
            };
            rng.range_inclusive(u64::from(lo), u64::from(hi)) as u32
        })
        .collect();
    let mut first_block = Vec::with_capacity(block_counts.len());
    let mut acc = 0u32;
    for &n in &block_counts {
        first_block.push(acc);
        acc += n;
    }
    let total_blocks = acc;

    // The hot set is *scattered* across the text, as real hot functions
    // are: linkers do not co-locate a program's hot code on one page, and
    // the paper's BRANCH-case page crossings depend on calls leaving the
    // page.
    // Split the hot set into leaves and non-leaves so call sites can always
    // find the kind they want. Positions are scattered: each hot function is
    // the nearest function of the right kind to an evenly-spaced anchor.
    let nearest_of_kind = |anchor: u32, leaf: bool| -> Option<u32> {
        (0..params.functions).find_map(|d| {
            [
                anchor.saturating_sub(d),
                (anchor + d).min(params.functions - 1),
            ]
            .into_iter()
            .find(|&cand| cand > 0 && is_leaf[cand as usize] == leaf)
        })
    };
    let mut hot_leaves = Vec::new();
    let mut hot_nonleaves = Vec::new();
    for i in 0..hot {
        let anchor = (1 + i * (params.functions - 1).max(1) / hot).min(params.functions - 1);
        if let Some(f) = nearest_of_kind(anchor, i % 2 == 0) {
            if i % 2 == 0 {
                hot_leaves.push(f);
            } else {
                hot_nonleaves.push(f);
            }
        }
    }
    if hot_leaves.is_empty() {
        hot_leaves = hot_nonleaves.clone();
    }
    if hot_nonleaves.is_empty() {
        hot_nonleaves = hot_leaves.clone();
    }

    // `force_leaf`: hot in-loop call sites always target leaves — their
    // calls execute once per trip, so letting them recurse into other
    // callers makes the dynamic call tree supercritical (depth pins at the
    // walker's cap and call/return counts diverge).
    let pick_callee = |rng: &mut SplitMix64, caller: u32, force_leaf: bool| -> u32 {
        // Prefer leaves (subcritical call tree) and the hot set; never self
        // (avoids trivial self-recursion; cycles through other functions
        // remain possible and are depth-capped by the walker).
        let want_leaf = force_leaf || rng.chance(params.call_leaf);
        for _ in 0..16 {
            let f = if rng.chance(params.call_hot_locality) {
                let list = if want_leaf {
                    &hot_leaves
                } else {
                    &hot_nonleaves
                };
                list[rng.below(list.len() as u64) as usize]
            } else {
                rng.below(u64::from(params.functions)) as u32
            };
            if f != caller && (f as usize) < is_leaf.len() {
                return f;
            }
        }
        (caller + 1) % params.functions
    };

    let mut blocks = Vec::with_capacity(total_blocks as usize);
    let mut functions = Vec::with_capacity(params.functions as usize);

    for (f, &nb) in block_counts.iter().enumerate() {
        let f = f as u32;
        functions.push(Function {
            first_block: first_block[f as usize],
            n_blocks: nb,
        });
        let global_id = |l: u32| BlockId(first_block[f as usize] + l);
        // Leaves are quick kernels: no whole-body outer loop, at most one
        // inner loop, and bounded trip counts — their dwell time is what
        // sets the program's dynamic call rate.
        let leaf = is_leaf[f as usize];
        let has_outer = !leaf && rng.chance(params.outer_loop_prob);
        // Reserve the last block for the return, and (optionally) the one
        // before it for the outer back-edge.
        let body_end = if has_outer && nb >= 3 { nb - 2 } else { nb - 1 };

        // Choose loop segments within [0, body_end).
        // loop_back_to[l] = Some(start) if block l closes a loop to `start`;
        // segment_end[l] = Some(end) if block l is *inside* a segment whose
        // back-edge is at `end` (interior control flow stays confined so
        // loops really iterate).
        let mut loop_back_to = vec![None::<u32>; nb as usize];
        let mut segment_end = vec![None::<u32>; nb as usize];
        #[derive(Clone, Copy, PartialEq)]
        enum Forced {
            No,
            Call,
            IndirectCall,
        }
        let mut forced_call = vec![Forced::No; nb as usize];
        let mut loops_placed = 0u32;
        let mut l = 0u32;
        while l + 1 < body_end {
            if leaf && loops_placed >= 1 {
                break;
            }
            let max_len = (body_end - l).min(params.loop_len.1);
            if max_len >= params.loop_len.0.max(2) && rng.chance(params.loop_prob) {
                let len = rng
                    .range_inclusive(u64::from(params.loop_len.0.max(2)), u64::from(max_len))
                    as u32;
                let end = l + len - 1;
                loop_back_to[end as usize] = Some(l);
                loops_placed += 1;
                for inner in l..end {
                    segment_end[inner as usize] = Some(end);
                }
                // Hot call site inside the loop body, executed every trip.
                if !leaf && rng.chance(params.loop_call) {
                    let site = l + rng.below(u64::from(len - 1)) as u32;
                    forced_call[site as usize] = if rng.chance(params.loop_icall) {
                        Forced::IndirectCall
                    } else {
                        Forced::Call
                    };
                }
                l += len;
            } else {
                l += 1;
            }
        }

        for local in 0..nb {
            let body_len = rng
                .range_inclusive(u64::from(params.block_len.0), u64::from(params.block_len.1))
                as usize;
            let mut instrs = Vec::with_capacity(body_len + 1);
            for _ in 0..body_len {
                instrs.push(gen_body_instr(&mut rng, params));
            }

            let terminator: Option<BranchSpec> = if local == nb - 1 {
                Some(BranchSpec::ret())
            } else if has_outer && local == nb - 2 {
                // Outer loop: re-run the whole function body.
                Some(BranchSpec::conditional(global_id(0), params.outer_bias))
            } else if let Some(start) = loop_back_to[local as usize] {
                // Loop back-edge, with per-site jitter so loops differ.
                // Leaf kernels get bounded trip counts (their dwell sets
                // the dynamic call rate).
                let jitter = (rng.next_f64() - 0.5) * 0.06;
                let cap = if leaf { 0.85 } else { 0.98 };
                let bias = (params.loop_bias + jitter).clamp(0.5, cap);
                Some(BranchSpec::conditional(global_id(start), bias))
            } else if forced_call[local as usize] != Forced::No {
                if forced_call[local as usize] == Forced::IndirectCall {
                    let n_targets = rng.range_inclusive(2, 5) as usize;
                    let ts = (0..n_targets)
                        .map(|_| {
                            let callee = pick_callee(&mut rng, f, true);
                            BlockId(first_block[callee as usize])
                        })
                        .collect();
                    Some(BranchSpec::indirect_call(ts))
                } else {
                    let callee = pick_callee(&mut rng, f, true);
                    Some(BranchSpec::call(BlockId(first_block[callee as usize])))
                }
            } else if rng.chance(params.plain_fallthrough) {
                None
            } else {
                // Leaves make no calls; their indirect dispatch stays local.
                let weights = if leaf {
                    [
                        params.w_cond + params.w_call,
                        params.w_jump,
                        0.0,
                        params.w_indirect,
                    ]
                } else {
                    [
                        params.w_cond,
                        params.w_jump,
                        params.w_call,
                        params.w_indirect,
                    ]
                };
                // Forward targets skip the fall-through block so a taken
                // branch actually moves. Inside a loop segment they stay
                // confined to it (a `continue`-like hop); elsewhere they
                // range over the rest of the function.
                let seg_end = segment_end[local as usize];
                let fwd = |rng: &mut SplitMix64| -> u32 {
                    let hi = seg_end.unwrap_or(nb - 1);
                    let lo = (local + 2).min(hi);
                    rng.range_inclusive(u64::from(lo), u64::from(hi)) as u32
                };
                Some(match rng.pick_weighted(&weights) {
                    0 => {
                        let bias = if rng.chance(params.weak_fraction) {
                            params.weak_bias
                        } else {
                            params.fwd_bias
                        };
                        BranchSpec::conditional(global_id(fwd(&mut rng)), bias)
                    }
                    1 => BranchSpec::jump(global_id(fwd(&mut rng))),
                    2 => {
                        let callee = pick_callee(&mut rng, f, false);
                        BranchSpec::call(BlockId(first_block[callee as usize]))
                    }
                    _ => {
                        // Indirect control: either a local switch dispatch
                        // (indirect jump over forward blocks) or a virtual
                        // call over candidate function entries.
                        let n_targets = rng.range_inclusive(2, 5) as usize;
                        if leaf || rng.chance(params.indirect_local) {
                            let ts = (0..n_targets).map(|_| global_id(fwd(&mut rng))).collect();
                            BranchSpec::indirect(ts)
                        } else {
                            let ts = (0..n_targets)
                                .map(|_| {
                                    let callee = pick_callee(&mut rng, f, false);
                                    BlockId(first_block[callee as usize])
                                })
                                .collect();
                            BranchSpec::indirect_call(ts)
                        }
                    }
                })
            };

            if let Some(spec) = terminator {
                let cond_src = spec.kind.conditional().then(|| RegId(rng.below(32) as u8));
                instrs.push(Instruction::branch(spec, cond_src));
            }
            blocks.push(Block { instrs });
        }
    }

    let program = Program {
        blocks,
        functions,
        global_pages: params.global_pages,
        heap_arrays: params.heap_arrays,
        heap_array_pages: params.heap_array_pages,
    };
    debug_assert_eq!(program.validate(), Ok(()));
    program
}

fn gen_body_instr(rng: &mut SplitMix64, p: &GeneratorParams) -> Instruction {
    let r = rng.next_f64();
    if r < p.load_frac {
        let region = gen_region(rng, p);
        Instruction::load(
            region,
            RegId(rng.below(32) as u8),
            RegId(rng.below(32) as u8),
        )
    } else if r < p.load_frac + p.store_frac {
        let region = gen_region(rng, p);
        Instruction::store(
            region,
            RegId(rng.below(32) as u8),
            RegId(rng.below(32) as u8),
        )
    } else {
        let fp = rng.chance(p.fp_frac);
        let mul = rng.chance(p.mul_frac);
        let class = match (fp, mul) {
            (false, false) => OpClass::IntAlu,
            (false, true) => OpClass::IntMul,
            (true, false) => OpClass::FpAlu,
            (true, true) => OpClass::FpMul,
        };
        let base = if fp { 32 } else { 0 };
        let reg = |rng: &mut SplitMix64| RegId(base + rng.below(32) as u8);
        Instruction::alu(class, [Some(reg(rng)), Some(reg(rng))], Some(reg(rng)))
    }
}

fn gen_region(rng: &mut SplitMix64, p: &GeneratorParams) -> DataRegion {
    let r = rng.next_f64();
    if r < p.region_stack {
        DataRegion::Stack
    } else if r < p.region_stack + p.region_global {
        DataRegion::Global(rng.below(u64::from(p.global_pages.max(1))) as u16)
    } else {
        DataRegion::Heap(rng.below(u64::from(p.heap_arrays.max(1))) as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BranchKind, BranchTarget};

    #[test]
    fn generated_program_validates() {
        let p = generate(&GeneratorParams::small_test());
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.functions.len(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GeneratorParams::small_test());
        let b = generate(&GeneratorParams::small_test());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut params = GeneratorParams::small_test();
        let a = generate(&params);
        params.seed += 1;
        let b = generate(&params);
        assert_ne!(a, b);
    }

    #[test]
    fn every_function_ends_with_return() {
        let p = generate(&GeneratorParams::small_test());
        for f in &p.functions {
            let last = &p.blocks[(f.first_block + f.n_blocks - 1) as usize];
            let t = last.terminator().expect("terminator");
            assert_eq!(t.branch.as_ref().unwrap().kind, BranchKind::Return);
        }
    }

    #[test]
    fn calls_never_target_self_entry() {
        let p = generate(&GeneratorParams::small_test());
        for (bi, b) in p.blocks.iter().enumerate() {
            if let Some(t) = b.terminator() {
                let spec = t.branch.as_ref().unwrap();
                if spec.kind == BranchKind::Call {
                    let caller = p.function_of(BlockId(bi as u32));
                    if let BranchTarget::Block(target) = &spec.target {
                        let callee = p.function_of(*target);
                        assert_ne!(caller, callee, "self-recursive call generated");
                    }
                }
            }
        }
    }

    #[test]
    fn all_branch_kinds_appear() {
        let p = generate(&GeneratorParams::small_test());
        let mut cond = false;
        let mut jump = false;
        let mut call = false;
        let mut ret = false;
        let mut ind = false;
        for b in &p.blocks {
            if let Some(t) = b.terminator() {
                match t.branch.as_ref().unwrap().kind {
                    BranchKind::Conditional { .. } => cond = true,
                    BranchKind::Jump => jump = true,
                    BranchKind::Call => call = true,
                    BranchKind::Return => ret = true,
                    BranchKind::IndirectJump | BranchKind::IndirectCall => ind = true,
                }
            }
        }
        assert!(cond && jump && call && ret && ind, "missing a branch kind");
    }

    /// Back-edges only arise from the explicit loop machinery, and loops
    /// never overlap: each back-edge jumps to a block no earlier than the
    /// previous loop's end.
    #[test]
    fn loops_are_well_nested_segments() {
        let p = generate(&GeneratorParams::small_test());
        for f in &p.functions {
            let mut prev_end = f.first_block;
            for l in 0..f.n_blocks {
                let b = &p.blocks[(f.first_block + l) as usize];
                let Some(t) = b.terminator() else { continue };
                let spec = t.branch.as_ref().unwrap();
                if let (BranchKind::Conditional { .. }, BranchTarget::Block(target)) =
                    (&spec.kind, &spec.target)
                {
                    if target.0 <= f.first_block + l {
                        // A back-edge: target must not reach into an earlier
                        // loop (segments are disjoint), except the outer
                        // loop which targets the entry.
                        assert!(
                            target.0 == f.first_block || target.0 >= prev_end,
                            "overlapping loops"
                        );
                        prev_end = f.first_block + l + 1;
                    }
                }
            }
        }
    }

    #[test]
    fn memory_mix_roughly_matches_fractions() {
        let p = generate(&GeneratorParams::small_test());
        let total = p.static_instructions() as f64;
        let loads = p
            .blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.class == OpClass::Load)
            .count() as f64;
        let f = loads / total;
        assert!((0.1..0.35).contains(&f), "load fraction {f}");
    }

    #[test]
    #[should_panic(expected = "at least main")]
    fn zero_functions_panics() {
        let mut p = GeneratorParams::small_test();
        p.functions = 0;
        let _ = generate(&p);
    }
}
