//! The architectural control-flow walker: the oracle execution of a laid-out
//! program.
//!
//! The cycle-level CPU is *trace-driven in the sim-outorder style*: the
//! walker supplies the architecturally-correct path (branch outcomes, branch
//! targets, data addresses), while the CPU fetches speculatively — possibly
//! down wrong paths — and squashes back to the walker's path on mispredict
//! recovery. The walker is deterministic given `(program, seed)`, so every
//! strategy in an experiment sees the *same* dynamic instruction stream.

use cfr_types::VirtAddr;

use crate::isa::{BranchKind, BranchTarget, DataRegion, OpClass};
use crate::layout::LaidProgram;
use crate::rng::SplitMix64;

/// Maximum modeled call depth; deeper calls overwrite the top frame
/// (tail-call-like), which keeps the walker total-memory bounded without
/// ever stopping execution.
pub const MAX_CALL_DEPTH: usize = 128;

/// Base of the stack data region (grows down).
pub const STACK_BASE: u64 = 0x7FFF_F000;
/// Base of the global data region.
pub const GLOBAL_BASE: u64 = 0x1000_0000;
/// Base of the heap data region.
pub const HEAP_BASE: u64 = 0x2000_0000;
/// Modeled stack frame size in bytes.
pub const FRAME_BYTES: u64 = 256;

/// Outcome of a branch's architectural execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BranchExec {
    /// Whether the branch was taken.
    pub taken: bool,
    /// Where execution actually goes next (taken target, or fall-through).
    pub next_addr: VirtAddr,
}

/// One architecturally-executed instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StepInfo {
    /// Slot index of the executed instruction.
    pub slot: usize,
    /// Its address.
    pub addr: VirtAddr,
    /// Functional class.
    pub class: OpClass,
    /// Slot index of the architectural successor.
    pub next_slot: usize,
    /// Branch outcome, for branches.
    pub branch: Option<BranchExec>,
    /// Effective data address, for loads/stores.
    pub mem_addr: Option<VirtAddr>,
    /// Whether this was a compiler-inserted boundary branch.
    pub is_boundary: bool,
}

/// Deterministic architectural executor.
#[derive(Clone, Debug)]
pub struct Walker<'p> {
    prog: &'p LaidProgram,
    cur: usize,
    stack: Vec<usize>,
    rng: SplitMix64,
    heap_cursor: Vec<u64>,
    steps: u64,
}

impl<'p> Walker<'p> {
    /// Creates a walker at the program entry.
    #[must_use]
    pub fn new(prog: &'p LaidProgram, seed: u64) -> Self {
        Self {
            prog,
            cur: prog.entry_slot(),
            stack: Vec::with_capacity(MAX_CALL_DEPTH),
            rng: SplitMix64::new(seed),
            heap_cursor: vec![0; prog.heap_arrays as usize],
            steps: 0,
        }
    }

    /// Slot the walker will execute next.
    #[must_use]
    pub fn current_slot(&self) -> usize {
        self.cur
    }

    /// Current call depth.
    #[must_use]
    pub fn call_depth(&self) -> usize {
        self.stack.len()
    }

    /// Instructions executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Executes the current instruction and advances.
    #[inline]
    pub fn step(&mut self) -> StepInfo {
        let slot = self.cur;
        let s = &self.prog.slots[slot];
        let addr = self.prog.addr_of(slot);
        self.steps += 1;

        let mut branch = None;
        let mut mem_addr = None;

        let next_slot = match s.instr.class {
            OpClass::Branch => {
                let spec = s.instr.branch.as_ref().expect("branch has spec");
                let (taken, next) = match (&spec.kind, &spec.target) {
                    (BranchKind::Conditional { taken_bias }, BranchTarget::Block(b)) => {
                        if self.rng.chance(*taken_bias) {
                            (true, self.prog.block_slot(*b))
                        } else {
                            (false, slot + 1)
                        }
                    }
                    (BranchKind::Jump, BranchTarget::Block(b)) => (true, self.prog.block_slot(*b)),
                    (BranchKind::Jump, BranchTarget::NextSlot) => (true, slot + 1),
                    (BranchKind::Call, BranchTarget::Block(b)) => {
                        let ret = slot + 1;
                        if self.stack.len() < MAX_CALL_DEPTH {
                            self.stack.push(ret);
                        } else {
                            *self.stack.last_mut().expect("depth > 0") = ret;
                        }
                        (true, self.prog.block_slot(*b))
                    }
                    (BranchKind::Return, BranchTarget::CallerReturn) => {
                        match self.stack.pop() {
                            Some(ret) => (true, ret),
                            // Returning from main: the run restarts — the
                            // outermost driver loop of the workload.
                            None => (true, self.prog.entry_slot()),
                        }
                    }
                    (BranchKind::IndirectJump, BranchTarget::Indirect(ts)) => {
                        let pick = self.rng.below(ts.len() as u64) as usize;
                        (true, self.prog.block_slot(ts[pick]))
                    }
                    (BranchKind::IndirectCall, BranchTarget::Indirect(ts)) => {
                        let ret = slot + 1;
                        if self.stack.len() < MAX_CALL_DEPTH {
                            self.stack.push(ret);
                        } else {
                            *self.stack.last_mut().expect("depth > 0") = ret;
                        }
                        let pick = self.rng.below(ts.len() as u64) as usize;
                        (true, self.prog.block_slot(ts[pick]))
                    }
                    (kind, target) => {
                        unreachable!("inconsistent branch: {kind:?} with {target:?}")
                    }
                };
                branch = Some(BranchExec {
                    taken,
                    next_addr: self.prog.addr_of(next),
                });
                next
            }
            OpClass::Load | OpClass::Store => {
                mem_addr = Some(self.data_address(s.instr.region.expect("memory op has a region")));
                slot + 1
            }
            _ => slot + 1,
        };

        // Falling off the very end of the text restarts at the entry (the
        // generator always terminates functions, so this only guards the
        // final slot).
        let next_slot = if next_slot >= self.prog.slots.len() {
            self.prog.entry_slot()
        } else {
            next_slot
        };

        self.cur = next_slot;
        StepInfo {
            slot,
            addr,
            class: s.instr.class,
            next_slot,
            branch,
            mem_addr,
            is_boundary: s.instr.branch.as_ref().is_some_and(|b| b.boundary),
        }
    }

    fn data_address(&mut self, region: DataRegion) -> VirtAddr {
        let page = self.prog.geom.page_bytes();
        match region {
            DataRegion::Stack => {
                let depth = self.stack.len() as u64;
                let frame_base = STACK_BASE - (depth + 1) * FRAME_BYTES;
                let off = self.rng.below(FRAME_BYTES / 8) * 8;
                VirtAddr::new(frame_base + off)
            }
            DataRegion::Global(g) => {
                let g = u64::from(g) % u64::from(self.prog.global_pages.max(1));
                let off = self.rng.below(page / 8) * 8;
                VirtAddr::new(GLOBAL_BASE + g * page + off)
            }
            DataRegion::Heap(h) => {
                let h = usize::from(h) % self.heap_cursor.len().max(1);
                let array_bytes = u64::from(self.prog.heap_array_pages) * page;
                let cur = &mut self.heap_cursor[h];
                // Wrap-by-subtract; identical to the old `% size` because
                // the cursor stays below the size and strides by 64.
                let wrap = array_bytes.max(64);
                *cur += 64;
                if *cur >= wrap {
                    *cur -= wrap;
                }
                VirtAddr::new(HEAP_BASE + h as u64 * array_bytes + *cur)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorParams};
    use crate::isa::{BranchSpec, Instruction, OpClass, RegId};
    use crate::layout::LaidProgram;
    use crate::program::{Block, BlockId, Function, Program};
    use cfr_types::PageGeometry;

    fn nop() -> Instruction {
        Instruction::alu(OpClass::IntAlu, [None, None], None)
    }

    /// main: b0 calls f (b2); b1 jumps back to b0. f: b2 returns.
    fn call_program() -> Program {
        Program {
            blocks: vec![
                Block {
                    instrs: vec![
                        nop(),
                        Instruction::branch(BranchSpec::call(BlockId(2)), None),
                    ],
                },
                Block {
                    instrs: vec![Instruction::branch(BranchSpec::jump(BlockId(0)), None)],
                },
                Block {
                    instrs: vec![
                        Instruction::load(DataRegion::Stack, RegId(1), RegId(2)),
                        Instruction::branch(BranchSpec::ret(), None),
                    ],
                },
            ],
            functions: vec![
                Function {
                    first_block: 0,
                    n_blocks: 2,
                },
                Function {
                    first_block: 2,
                    n_blocks: 1,
                },
            ],
            global_pages: 2,
            heap_arrays: 2,
            heap_array_pages: 4,
        }
    }

    fn laid() -> LaidProgram {
        LaidProgram::lay_out(&call_program(), PageGeometry::default_4k(), false)
    }

    #[test]
    fn call_and_return_follow_the_stack() {
        let p = laid();
        let mut w = Walker::new(&p, 1);
        let s0 = w.step(); // nop
        assert_eq!(s0.slot, 0);
        let s1 = w.step(); // call
        assert!(s1.branch.unwrap().taken);
        assert_eq!(s1.next_slot, 3, "callee entry");
        assert_eq!(w.call_depth(), 1);
        let s2 = w.step(); // load in callee
        assert!(s2.mem_addr.is_some());
        let s3 = w.step(); // return
        assert_eq!(s3.next_slot, 2, "back to call fall-through");
        assert_eq!(w.call_depth(), 0);
        let s4 = w.step(); // jump to b0
        assert_eq!(s4.next_slot, 0);
    }

    #[test]
    fn return_from_main_restarts() {
        let p = LaidProgram::lay_out(
            &Program {
                blocks: vec![Block {
                    instrs: vec![nop(), Instruction::branch(BranchSpec::ret(), None)],
                }],
                functions: vec![Function {
                    first_block: 0,
                    n_blocks: 1,
                }],
                global_pages: 1,
                heap_arrays: 1,
                heap_array_pages: 1,
            },
            PageGeometry::default_4k(),
            false,
        );
        let mut w = Walker::new(&p, 1);
        w.step();
        let r = w.step();
        assert_eq!(r.next_slot, 0, "empty-stack return restarts at entry");
    }

    #[test]
    fn walker_is_deterministic() {
        let prog = generate(&GeneratorParams::small_test());
        let p = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
        let mut a = Walker::new(&p, 99);
        let mut b = Walker::new(&p, 99);
        for _ in 0..10_000 {
            assert_eq!(a.step(), b.step());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let prog = generate(&GeneratorParams::small_test());
        let p = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
        let mut a = Walker::new(&p, 1);
        let mut b = Walker::new(&p, 2);
        let diverged = (0..10_000).any(|_| a.step() != b.step());
        assert!(diverged);
    }

    #[test]
    fn walker_never_leaves_text() {
        let prog = generate(&GeneratorParams::small_test());
        let p = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), true);
        let mut w = Walker::new(&p, 7);
        for _ in 0..50_000 {
            let s = w.step();
            assert!(s.slot < p.slots.len());
            assert!(s.next_slot < p.slots.len());
        }
    }

    #[test]
    fn data_addresses_stay_in_their_regions() {
        let p = laid();
        let mut w = Walker::new(&p, 3);
        for _ in 0..1000 {
            let s = w.step();
            if let Some(a) = s.mem_addr {
                let a = a.raw();
                let in_stack = (STACK_BASE - 64 * FRAME_BYTES..STACK_BASE).contains(&a);
                let in_global = (GLOBAL_BASE..GLOBAL_BASE + 0x1000_0000).contains(&a);
                let in_heap = (HEAP_BASE..HEAP_BASE + 0x1000_0000).contains(&a);
                assert!(in_stack || in_global || in_heap, "stray address {a:#x}");
            }
        }
    }

    #[test]
    fn boundary_branches_flagged() {
        // A straight-line block long enough to cross a page, instrumented.
        let mut instrs = vec![nop(); 2000];
        instrs.push(Instruction::branch(BranchSpec::jump(BlockId(0)), None));
        let prog = Program {
            blocks: vec![Block { instrs }],
            functions: vec![Function {
                first_block: 0,
                n_blocks: 1,
            }],
            global_pages: 1,
            heap_arrays: 1,
            heap_array_pages: 1,
        };
        let p = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), true);
        let mut w = Walker::new(&p, 1);
        let mut boundaries = 0;
        for _ in 0..p.slots.len() {
            let s = w.step();
            if s.is_boundary {
                boundaries += 1;
                let b = s.branch.unwrap();
                assert!(b.taken);
                assert_eq!(b.next_addr, p.addr_of(s.slot + 1));
            }
        }
        assert!(boundaries >= 1);
    }
}
