//! The six benchmark profiles, calibrated to the paper's Tables 2, 4, 5.
//!
//! Each profile carries (a) [`GeneratorParams`] tuned so the generated
//! program's *measured* statistics approximate the paper's, and (b) the
//! paper's published numbers ([`PaperTargets`]) so experiments can print
//! paper-vs-measured side by side and tests can assert calibration bands.
//! The `calibrate` example regenerates the measured column.
//!
//! The paper picked these six because "they stress the iTLB more than the
//! others due to the relatively worse instruction locality".

use serde::{Deserialize, Serialize};

use crate::generate::{generate, GeneratorParams};
use crate::program::Program;

/// The paper's published characteristics for one benchmark.
///
/// Fractions are in `[0, 1]`; cycle counts in millions of cycles for 250 M
/// committed instructions; energies in millijoules.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PaperTargets {
    /// Dynamic branches / committed instructions (Table 2 col 7).
    pub branch_fraction: f64,
    /// Analyzable dynamic branches / dynamic branches (Table 4).
    pub analyzable_fraction: f64,
    /// In-page instances / analyzable instances (Table 4).
    pub in_page_fraction: f64,
    /// Branch predictor accuracy (Table 5).
    pub predictor_accuracy: f64,
    /// iL1 miss rate (Table 2 col 6).
    pub il1_miss_rate: f64,
    /// BOUNDARY crossings / all crossings (Table 2, last columns).
    pub boundary_share: f64,
    /// All page crossings / committed instructions (Table 2).
    pub crossing_fraction: f64,
    /// Base VI-PT execution cycles, millions (Table 2 col 2).
    pub vipt_cycles_m: f64,
    /// Base VI-PT iTLB energy, mJ (Table 2 col 3).
    pub vipt_energy_mj: f64,
    /// Base VI-VT execution cycles, millions (Table 2 col 4).
    pub vivt_cycles_m: f64,
    /// Base VI-VT iTLB energy, mJ (Table 2 col 5).
    pub vivt_energy_mj: f64,
}

/// A named benchmark: generator parameters plus the paper's numbers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// SPEC2000 name, e.g. `"177.mesa"`.
    pub name: &'static str,
    /// Calibrated generator parameters.
    pub params: GeneratorParams,
    /// The paper's published characteristics.
    pub paper: PaperTargets,
}

impl BenchmarkProfile {
    /// Generates this profile's program.
    #[must_use]
    pub fn generate(&self) -> Program {
        generate(&self.params)
    }
}

fn base_params(seed: u64) -> GeneratorParams {
    GeneratorParams {
        seed,
        functions: 120,
        hot_functions: 6,
        blocks_per_function: (60, 110),
        block_len: (4, 12),
        loop_prob: 0.30,
        loop_len: (2, 4),
        loop_bias: 0.90,
        outer_loop_prob: 0.60,
        outer_bias: 0.55,
        loop_call: 0.60,
        loop_icall: 0.08,
        plain_fallthrough: 0.10,
        w_cond: 0.55,
        w_jump: 0.08,
        w_call: 0.27,
        w_indirect: 0.10,
        indirect_local: 0.60,
        fwd_bias: 0.08,
        weak_fraction: 0.12,
        weak_bias: 0.60,
        call_hot_locality: 0.92,
        leaf_fraction: 0.55,
        call_leaf: 0.85,
        leaf_blocks: (3, 6),
        load_frac: 0.24,
        store_frac: 0.10,
        fp_frac: 0.10,
        mul_frac: 0.04,
        region_stack: 0.40,
        region_global: 0.30,
        global_pages: 16,
        heap_arrays: 8,
        heap_array_pages: 16,
    }
}

/// 177.mesa — FP graphics library; few branches, superb iL1 locality.
#[must_use]
pub fn mesa() -> BenchmarkProfile {
    let mut p = base_params(0x6D65_7361);
    p.block_len = (5, 12);
    p.plain_fallthrough = 0.08;
    p.functions = 60;
    p.hot_functions = 8;
    p.blocks_per_function = (40, 70);
    p.loop_call = 0.90;
    p.loop_len = (2, 4);
    p.leaf_blocks = (3, 4);
    p.outer_loop_prob = 0.85;
    p.outer_bias = 0.80;
    p.call_hot_locality = 0.98;
    p.loop_prob = 0.25;
    p.loop_bias = 0.93;
    p.w_cond = 0.45;
    p.w_jump = 0.06;
    p.w_call = 0.37;
    p.w_indirect = 0.12;
    p.indirect_local = 0.50;
    p.weak_fraction = 0.04;
    p.fwd_bias = 0.05;
    p.fp_frac = 0.45;
    BenchmarkProfile {
        name: "177.mesa",
        params: p,
        paper: PaperTargets {
            branch_fraction: 0.089,
            analyzable_fraction: 0.811,
            in_page_fraction: 0.730,
            predictor_accuracy: 0.9414,
            il1_miss_rate: 0.002,
            boundary_share: 0.0177,
            crossing_fraction: 0.0224,
            vipt_cycles_m: 188.1,
            vipt_energy_mj: 109.075,
            vivt_cycles_m: 196.1,
            vivt_energy_mj: 3.345,
        },
    }
}

/// 186.crafty — chess; branchy integer code, moderate locality.
#[must_use]
pub fn crafty() -> BenchmarkProfile {
    let mut p = base_params(0x6372_6166);
    p.block_len = (4, 12);
    p.functions = 110;
    p.hot_functions = 8;
    p.loop_call = 0.85;
    p.loop_len = (2, 5);
    p.outer_loop_prob = 0.75;
    p.outer_bias = 0.80;
    p.call_hot_locality = 0.85;
    p.loop_prob = 0.18;
    p.loop_bias = 0.93;
    p.weak_fraction = 0.03;
    p.fwd_bias = 0.05;
    p.w_cond = 0.58;
    p.w_jump = 0.04;
    p.w_indirect = 0.06;
    p.w_call = 0.33;
    p.fp_frac = 0.02;
    BenchmarkProfile {
        name: "186.crafty",
        params: p,
        paper: PaperTargets {
            branch_fraction: 0.126,
            analyzable_fraction: 0.876,
            in_page_fraction: 0.759,
            predictor_accuracy: 0.9116,
            il1_miss_rate: 0.014,
            boundary_share: 0.0109,
            crossing_fraction: 0.0322,
            vipt_cycles_m: 331.7,
            vipt_energy_mj: 124.110,
            vivt_cycles_m: 350.5,
            vivt_energy_mj: 8.385,
        },
    }
}

/// 191.fma3d — FP crash simulation; branchiest of the six, loop-dominated.
#[must_use]
pub fn fma3d() -> BenchmarkProfile {
    let mut p = base_params(0x666D_6133);
    p.block_len = (2, 7);
    p.plain_fallthrough = 0.02;
    p.functions = 140;
    p.hot_functions = 7;
    p.call_hot_locality = 0.94;
    p.loop_prob = 0.30;
    p.loop_len = (4, 8);
    p.loop_bias = 0.95;
    p.loop_call = 0.70;
    p.outer_loop_prob = 0.70;
    p.weak_fraction = 0.02;
    p.fwd_bias = 0.05;
    p.w_cond = 0.54;
    p.w_indirect = 0.02;
    p.w_call = 0.35;
    p.outer_loop_prob = 0.80;
    p.outer_bias = 0.85;
    p.fp_frac = 0.40;
    BenchmarkProfile {
        name: "191.fma3d",
        params: p,
        paper: PaperTargets {
            branch_fraction: 0.186,
            analyzable_fraction: 0.879,
            in_page_fraction: 0.709,
            predictor_accuracy: 0.9582,
            il1_miss_rate: 0.011,
            boundary_share: 0.0011,
            crossing_fraction: 0.0487,
            vipt_cycles_m: 169.3,
            vipt_energy_mj: 112.685,
            vivt_cycles_m: 176.6,
            vivt_energy_mj: 3.040,
        },
    }
}

/// 252.eon — C++ ray tracer; virtual dispatch (indirect-heavy), weakest
/// predictor accuracy of the six.
#[must_use]
pub fn eon() -> BenchmarkProfile {
    let mut p = base_params(0x6565_6F6E);
    p.block_len = (3, 10);
    p.functions = 180;
    p.hot_functions = 10;
    p.call_hot_locality = 0.85;
    p.loop_prob = 0.25;
    p.loop_bias = 0.88;
    p.loop_call = 0.70;
    p.loop_icall = 0.50;
    p.outer_loop_prob = 0.80;
    p.outer_bias = 0.75;
    p.w_cond = 0.40;
    p.w_jump = 0.06;
    p.w_indirect = 0.22;
    p.indirect_local = 0.30;
    p.w_call = 0.32;
    p.weak_fraction = 0.10;
    p.weak_bias = 0.58;
    p.fp_frac = 0.20;
    BenchmarkProfile {
        name: "252.eon",
        params: p,
        paper: PaperTargets {
            branch_fraction: 0.123,
            analyzable_fraction: 0.745,
            in_page_fraction: 0.698,
            predictor_accuracy: 0.8523,
            il1_miss_rate: 0.010,
            boundary_share: 0.0199,
            crossing_fraction: 0.0626,
            vipt_cycles_m: 263.1,
            vipt_energy_mj: 134.544,
            vivt_cycles_m: 274.7,
            vivt_energy_mj: 5.221,
        },
    }
}

/// 254.gap — group theory interpreter; long straight-line runs, the highest
/// BOUNDARY share of the six.
#[must_use]
pub fn gap() -> BenchmarkProfile {
    let mut p = base_params(0x6761_7070);
    p.block_len = (4, 9);
    p.plain_fallthrough = 0.50;
    p.blocks_per_function = (250, 400);
    p.functions = 60;
    p.hot_functions = 4;
    p.call_hot_locality = 0.93;
    p.loop_prob = 0.08;
    p.loop_len = (6, 12);
    p.loop_call = 0.25;
    p.loop_bias = 0.92;
    p.outer_loop_prob = 0.85;
    p.outer_bias = 0.85;
    p.weak_fraction = 0.05;
    p.weak_fraction = 0.16;
    p.w_cond = 0.66;
    p.w_jump = 0.04;
    p.w_call = 0.06;
    p.w_indirect = 0.07;
    p.fp_frac = 0.03;
    BenchmarkProfile {
        name: "254.gap",
        params: p,
        paper: PaperTargets {
            branch_fraction: 0.073,
            analyzable_fraction: 0.902,
            in_page_fraction: 0.592,
            predictor_accuracy: 0.8955,
            il1_miss_rate: 0.006,
            boundary_share: 0.1131,
            crossing_fraction: 0.0255,
            vipt_cycles_m: 161.3,
            vipt_energy_mj: 112.205,
            vivt_cycles_m: 165.6,
            vivt_energy_mj: 2.005,
        },
    }
}

/// 255.vortex — object database; the largest instruction footprint and
/// highest iL1 miss rate of the six, superbly predictable branches.
#[must_use]
pub fn vortex() -> BenchmarkProfile {
    let mut p = base_params(0x766F_7274);
    p.block_len = (2, 6);
    p.plain_fallthrough = 0.12;
    p.functions = 200;
    p.hot_functions = 30;
    p.blocks_per_function = (140, 240);
    p.call_hot_locality = 0.35;
    p.call_leaf = 0.75;
    p.loop_prob = 0.12;
    p.loop_call = 0.55;
    p.outer_loop_prob = 0.50;
    p.outer_bias = 0.90;
    p.loop_bias = 0.96;
    p.fwd_bias = 0.03;
    p.weak_fraction = 0.02;
    p.w_cond = 0.50;
    p.w_call = 0.22;
    p.w_indirect = 0.06;
    p.fp_frac = 0.02;
    BenchmarkProfile {
        name: "255.vortex",
        params: p,
        paper: PaperTargets {
            branch_fraction: 0.166,
            analyzable_fraction: 0.877,
            in_page_fraction: 0.734,
            predictor_accuracy: 0.9738,
            il1_miss_rate: 0.027,
            boundary_share: 0.0575,
            crossing_fraction: 0.0402,
            vipt_cycles_m: 293.9,
            vipt_energy_mj: 108.424,
            vivt_cycles_m: 310.5,
            vivt_energy_mj: 6.345,
        },
    }
}

/// All six profiles, in the paper's table order.
#[must_use]
pub fn all() -> Vec<BenchmarkProfile> {
    vec![mesa(), crafty(), fma3d(), eon(), gap(), vortex()]
}

/// A deterministic per-seed mix of `n` profile names for a
/// multiprogrammed scenario: the same `(seed, n)` always yields the same
/// mix, across processes and platforms. The mix cycles a seed-shuffled
/// order of the six profiles, so any window of up to six processes has no
/// duplicates.
#[must_use]
pub fn mix(seed: u64, n: usize) -> Vec<&'static str> {
    let mut names: Vec<&'static str> = all().iter().map(|p| p.name).collect();
    // splitmix64-driven Fisher–Yates: stable, dependency-free shuffling.
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..names.len()).rev() {
        #[allow(clippy::cast_possible_truncation)]
        let j = (next() % (i as u64 + 1)) as usize;
        names.swap(i, j);
    }
    (0..n).map(|i| names[i % names.len()]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LaidProgram;
    use crate::measure::measure;
    use cfr_types::PageGeometry;

    #[test]
    fn six_profiles_with_unique_names() {
        let ps = all();
        assert_eq!(ps.len(), 6);
        let mut names: Vec<_> = ps.iter().map(|p| p.name).collect();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn mix_is_deterministic_and_duplicate_free_per_window() {
        assert_eq!(mix(7, 4), mix(7, 4), "same seed, same mix");
        assert_ne!(mix(7, 6), mix(8, 6), "different seeds shuffle differently");
        let m = mix(0x5EED, 6);
        let mut uniq: Vec<_> = m.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 6, "a six-wide window has no duplicates: {m:?}");
        assert_eq!(mix(3, 8)[0], mix(3, 8)[6], "the mix cycles past six");
    }

    #[test]
    fn all_profiles_generate_valid_programs() {
        for p in all() {
            let prog = p.generate();
            assert_eq!(prog.validate(), Ok(()), "{}", p.name);
            assert!(prog.static_instructions() > 1000, "{}", p.name);
        }
    }

    /// Calibration bands: measured statistics must land within a tolerance
    /// of the paper's targets. These are the substitution's load-bearing
    /// guarantees (DESIGN.md §2).
    #[test]
    fn profiles_hit_calibration_bands() {
        for p in all() {
            let prog = p.generate();
            let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
            let s = measure(&laid, 400_000, 1);
            let t = &p.paper;

            let bf = s.branch_fraction();
            assert!(
                (bf - t.branch_fraction).abs() < 0.03,
                "{}: branch fraction {bf:.3} vs target {:.3}",
                p.name,
                t.branch_fraction
            );
            let af = s.analyzable_fraction();
            assert!(
                (af - t.analyzable_fraction).abs() < 0.10,
                "{}: analyzable {af:.3} vs {:.3}",
                p.name,
                t.analyzable_fraction
            );
            // In-page fraction is the loosest band: the synthetic CFG keeps
            // loop bodies more page-local than real SPEC code (see
            // DESIGN.md §2); orderings are asserted separately below.
            let ip = s.in_page_fraction();
            assert!(
                ip >= t.in_page_fraction - 0.05 && ip < 0.99,
                "{}: in-page {ip:.3} vs {:.3}",
                p.name,
                t.in_page_fraction
            );
            let mr = s.il1_miss_rate();
            assert!(
                (mr - t.il1_miss_rate).abs() < 0.025,
                "{}: iL1 miss rate {mr:.4} vs {:.4}",
                p.name,
                t.il1_miss_rate
            );
            let cf = s.crossing_fraction();
            assert!(
                cf > 0.005 && (cf - t.crossing_fraction).abs() < 0.04,
                "{}: crossing fraction {cf:.4} vs {:.4}",
                p.name,
                t.crossing_fraction
            );
        }
    }

    /// Ordering properties the experiments rely on (who is branchiest, who
    /// misses most) must match the paper even where absolute values drift.
    #[test]
    fn cross_profile_orderings() {
        let stats: Vec<_> = all()
            .into_iter()
            .map(|p| {
                let prog = p.generate();
                let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
                (p.name, measure(&laid, 300_000, 2))
            })
            .collect();
        let get = |name: &str| {
            stats
                .iter()
                .find(|(n, _)| n.contains(name))
                .map(|(_, s)| s)
                .unwrap()
        };
        // gap has the fewest branches; fma3d/vortex the most.
        assert!(get("gap").branch_fraction() < get("fma3d").branch_fraction());
        assert!(get("gap").branch_fraction() < get("vortex").branch_fraction());
        // vortex has the worst iL1 locality of the six.
        for other in ["mesa", "gap"] {
            assert!(
                get("vortex").il1_miss_rate() > get(other).il1_miss_rate(),
                "vortex should miss more than {other}"
            );
        }
        // gap and vortex are the BOUNDARY-heavy benchmarks of the six
        // (paper: 11.3% and 5.8% vs ≈1–2% elsewhere); their exact rank is
        // seed-sensitive but they clearly dominate the loop-tight codes.
        for heavy in ["gap", "vortex"] {
            for light in ["mesa", "crafty"] {
                assert!(
                    get(heavy).boundary_share() > get(light).boundary_share(),
                    "{heavy} should out-BOUNDARY {light}"
                );
            }
        }
    }
}
