//! Memoized program generation.
//!
//! Generating a [`BenchmarkProfile`]'s program is deterministic (the
//! profile's [`GeneratorParams`] embed the seed) but not cheap, and the
//! experiment harness historically regenerated the same six programs for
//! every (strategy, mode, iTLB) combination. A [`ProgramCache`] generates
//! each profile **once** and shares the result via [`Arc`], so concurrent
//! simulations of the same benchmark borrow one immutable program.
//!
//! [`GeneratorParams`]: crate::GeneratorParams

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::profiles::BenchmarkProfile;
use crate::program::Program;

/// A by-name memo of generated programs.
///
/// Profiles are identified by their `name`: two profiles sharing a name
/// are assumed to share [`GeneratorParams`] (true of the canonical
/// [`profiles`](crate::profiles) set, whose names are unique).
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: Mutex<HashMap<&'static str, Arc<Program>>>,
    generated: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The program for `profile`, generating it on first request and
    /// returning the shared copy afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned (a previous generation
    /// panicked).
    #[must_use]
    pub fn get(&self, profile: &BenchmarkProfile) -> Arc<Program> {
        let mut programs = self.programs.lock().expect("program cache poisoned");
        Arc::clone(programs.entry(profile.name).or_insert_with(|| {
            self.generated.fetch_add(1, Ordering::Relaxed);
            Arc::new(profile.generate())
        }))
    }

    /// How many programs have actually been generated (cache misses);
    /// the memoization guarantee asserted by tests.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn generates_each_profile_once() {
        let cache = ProgramCache::new();
        let a = cache.get(&profiles::mesa());
        let b = cache.get(&profiles::mesa());
        assert!(Arc::ptr_eq(&a, &b), "second get must share the first Arc");
        assert_eq!(cache.generated(), 1);
        let _ = cache.get(&profiles::gap());
        assert_eq!(cache.generated(), 2);
    }

    #[test]
    fn cached_program_equals_fresh_generation() {
        let cache = ProgramCache::new();
        let profile = profiles::crafty();
        let cached = cache.get(&profile);
        assert_eq!(
            *cached,
            profile.generate(),
            "memoization must not change the program"
        );
    }
}
