//! Memoized — and optionally persistent — program generation.
//!
//! Generating a [`BenchmarkProfile`]'s program is deterministic (the
//! profile's [`GeneratorParams`] embed the seed) but not cheap, and the
//! experiment harness historically regenerated the same six programs for
//! every (strategy, mode, iTLB) combination. A [`ProgramCache`] generates
//! each profile **once** and shares the result via [`Arc`], so concurrent
//! simulations of the same benchmark borrow one immutable program.
//!
//! With a persistent store attached ([`ProgramCache::attach_store`]),
//! the memoization extends **across processes**: a first-miss consults the
//! store's `programs` namespace before generating, and a fresh generation
//! is written back. The cache talks to the [`StoreBackend`] trait, so the
//! store may be the machine-local sharded [`ArtifactStore`], a
//! `RemoteStore` speaking to the `cfr-store-serve` daemon, or the layered
//! stack of both — the cache neither knows nor cares. Loaded programs are
//! re-validated ([`Program::validate`]) before use, so a corrupt or stale
//! record degrades to regeneration, never a bad program.
//!
//! [`ArtifactStore`]: cfr_types::ArtifactStore
//! [`GeneratorParams`]: crate::GeneratorParams

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cfr_types::{RecordReader, RecordWriter, StoreBackend, NS_PROGRAMS};

use crate::codec::program_store_key;
use crate::profiles::BenchmarkProfile;
use crate::program::Program;

/// A by-name memo of generated programs, optionally backed by the
/// persistent artifact store.
///
/// Profiles are identified by their `name`: two profiles sharing a name
/// are assumed to share [`GeneratorParams`] (true of the canonical
/// [`profiles`](crate::profiles) set, whose names are unique). The
/// *store* key additionally fingerprints the full parameter set, so a
/// recalibrated profile misses instead of loading a stale program.
///
/// [`GeneratorParams`]: crate::GeneratorParams
#[derive(Debug, Default)]
pub struct ProgramCache {
    programs: Mutex<HashMap<&'static str, Arc<Program>>>,
    store: Mutex<Option<Arc<dyn StoreBackend>>>,
    /// Store-probe answers delivered ahead of time by a batched prefetch
    /// ([`ProgramCache::prime`]), keyed by store key: `Some(text)` is the
    /// stored record, `None` a definite miss. Consumed by the next
    /// [`ProgramCache::get`] in place of its own per-key store probe.
    pending: Mutex<HashMap<String, Option<String>>>,
    generated: AtomicU64,
    loaded: AtomicU64,
}

impl ProgramCache {
    /// An empty, in-memory-only cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Backs this cache with a persistent store (local, remote, or
    /// layered — any [`StoreBackend`]): first requests consult the
    /// store's `programs` namespace before generating, and fresh
    /// generations are written back.
    pub fn attach_store(&self, store: Arc<dyn StoreBackend>) {
        *self.store.lock().expect("program cache poisoned") = Some(store);
    }

    /// Hands the cache the result of a batched store probe for
    /// `store_key` (see [`program_store_key`]): `Some(text)` is the
    /// stored record, `None` a definite miss. The next [`Self::get`]
    /// whose profile maps to that key consumes the answer instead of
    /// issuing its own store round trip; a corrupt primed record
    /// regenerates exactly as a corrupt loaded record would.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex is poisoned.
    pub fn prime(&self, store_key: String, value: Option<String>) {
        self.pending
            .lock()
            .expect("program cache poisoned")
            .insert(store_key, value);
    }

    /// The program for `profile`, from (in order) the in-memory memo, the
    /// attached store, or the generator — always returning the shared
    /// copy afterwards.
    ///
    /// # Panics
    ///
    /// Panics if a cache mutex is poisoned (a previous generation
    /// panicked).
    #[must_use]
    pub fn get(&self, profile: &BenchmarkProfile) -> Arc<Program> {
        let mut programs = self.programs.lock().expect("program cache poisoned");
        if let Some(program) = programs.get(profile.name) {
            return Arc::clone(program);
        }
        let store = self.store.lock().expect("program cache poisoned").clone();
        let store_key = program_store_key(profile);
        let primed = self
            .pending
            .lock()
            .expect("program cache poisoned")
            .remove(&store_key);
        let warm = match primed {
            // A batched prefetch already probed the store for this key;
            // a primed `None` is a definite miss, so skip the re-probe.
            Some(answer) => answer.and_then(|text| Self::parse_stored(&text)),
            None => store
                .as_deref()
                .and_then(|s| s.load(NS_PROGRAMS, &store_key))
                .and_then(|text| Self::parse_stored(&text)),
        };
        let program = match warm {
            Some(warm) => {
                self.loaded.fetch_add(1, Ordering::Relaxed);
                warm
            }
            None => {
                self.generated.fetch_add(1, Ordering::Relaxed);
                let fresh = profile.generate();
                if let Some(store) = &store {
                    let mut w = RecordWriter::new();
                    fresh.to_record(&mut w);
                    store.save(NS_PROGRAMS, &store_key, &w.finish());
                }
                fresh
            }
        };
        let program = Arc::new(program);
        programs.insert(profile.name, Arc::clone(&program));
        program
    }

    /// Parses and re-validates a stored program record; any parse or
    /// validation failure is a miss (the caller regenerates and
    /// overwrites).
    fn parse_stored(text: &str) -> Option<Program> {
        let mut r = RecordReader::new(text);
        let program = Program::from_record(&mut r).ok()?;
        r.finish().ok()?;
        program.validate().ok()?;
        Some(program)
    }

    /// How many programs this cache actually generated (in-memory *and*
    /// store misses); the memoization guarantee asserted by tests.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.generated.load(Ordering::Relaxed)
    }

    /// How many programs were served from the persistent store instead of
    /// being generated (0 without a store).
    #[must_use]
    pub fn loaded(&self) -> u64 {
        self.loaded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use cfr_types::{ArtifactStore, GcPolicy};
    use std::path::PathBuf;

    #[test]
    fn generates_each_profile_once() {
        let cache = ProgramCache::new();
        let a = cache.get(&profiles::mesa());
        let b = cache.get(&profiles::mesa());
        assert!(Arc::ptr_eq(&a, &b), "second get must share the first Arc");
        assert_eq!(cache.generated(), 1);
        let _ = cache.get(&profiles::gap());
        assert_eq!(cache.generated(), 2);
        assert_eq!(cache.loaded(), 0, "no store attached");
    }

    #[test]
    fn cached_program_equals_fresh_generation() {
        let cache = ProgramCache::new();
        let profile = profiles::crafty();
        let cached = cache.get(&profile);
        assert_eq!(
            *cached,
            profile.generate(),
            "memoization must not change the program"
        );
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cfr-progcache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_serves_programs_across_caches() {
        let dir = temp_store("warm");
        let profile = profiles::mesa();

        let cold = ProgramCache::new();
        cold.attach_store(Arc::new(
            ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap(),
        ));
        let generated = cold.get(&profile);
        assert_eq!((cold.generated(), cold.loaded()), (1, 0));

        // A fresh cache over the same directory (= a fresh process) loads
        // instead of generating, and the program is identical.
        let warm = ProgramCache::new();
        warm.attach_store(Arc::new(
            ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap(),
        ));
        let loaded = warm.get(&profile);
        assert_eq!((warm.generated(), warm.loaded()), (0, 1));
        assert_eq!(*loaded, *generated);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn primed_answers_replace_per_key_store_probes() {
        let profile = profiles::mesa();
        let mut w = cfr_types::RecordWriter::new();
        profile.generate().to_record(&mut w);
        let record = w.finish();

        // A primed hit serves warm with no store attached at all — proof
        // the cache consumed the prefetched answer, not a store probe.
        let cache = ProgramCache::new();
        cache.prime(program_store_key(&profile), Some(record));
        let program = cache.get(&profile);
        assert_eq!((cache.generated(), cache.loaded()), (0, 1));
        assert_eq!(*program, profile.generate());

        // A primed definite miss generates without consulting the store.
        let cold = ProgramCache::new();
        cold.prime(program_store_key(&profile), None);
        let _ = cold.get(&profile);
        assert_eq!((cold.generated(), cold.loaded()), (1, 0));

        // A corrupt primed record degrades to regeneration, like any
        // corrupt stored record.
        let corrupt = ProgramCache::new();
        corrupt.prime(program_store_key(&profile), Some("not a program".into()));
        let regenerated = corrupt.get(&profile);
        assert_eq!((corrupt.generated(), corrupt.loaded()), (1, 0));
        assert_eq!(*regenerated, profile.generate());
    }

    #[test]
    fn corrupt_stored_program_regenerates() {
        let dir = temp_store("corrupt");
        let profile = profiles::mesa();
        let store: Arc<dyn StoreBackend> =
            Arc::new(ArtifactStore::open(&dir, GcPolicy::unbounded()).unwrap());
        // A parseable-but-invalid program (a function whose last block
        // has no terminator) and plain garbage both regenerate.
        for vandalism in [
            "program 1 1 1 functions 1 0 1 blocks 1 1 ialu - - -",
            "not a program",
        ] {
            store.save(NS_PROGRAMS, &program_store_key(&profile), vandalism);
            let cache = ProgramCache::new();
            cache.attach_store(Arc::clone(&store));
            let program = cache.get(&profile);
            assert_eq!(cache.generated(), 1, "bad record regenerates: {vandalism}");
            assert_eq!(*program, profile.generate());
        }
        // The regeneration repaired the store.
        let repaired = ProgramCache::new();
        repaired.attach_store(Arc::clone(&store));
        let _ = repaired.get(&profile);
        assert_eq!((repaired.generated(), repaired.loaded()), (0, 1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
