//! The synthetic ISA: fixed 4-byte instructions with explicit operand
//! registers and branch metadata.
//!
//! The ISA carries exactly the information the paper's mechanisms key on:
//! whether an instruction is a branch, whether its target is *statically
//! analyzable* (a direct/PC-relative target the SoLA compiler pass can
//! resolve), and — after compilation — the extra "in-page" bit SoLA encodes
//! into branch instructions and the boundary branches SoCA/SoLA/IA insert
//! at page ends.

use serde::{Deserialize, Serialize};

use crate::program::BlockId;

/// An architectural register. 0–31 are integer, 32–63 floating point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RegId(pub u8);

impl RegId {
    /// Number of architectural registers.
    pub const COUNT: usize = 64;

    /// Whether this is a floating-point register.
    #[must_use]
    pub fn is_fp(self) -> bool {
        self.0 >= 32
    }
}

/// Functional class of an instruction, mapping 1:1 onto the paper's
/// functional-unit mix (Table 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU op (1-cycle, 4 units).
    IntAlu,
    /// Integer multiply/divide (3-cycle, 1 unit).
    IntMul,
    /// FP add/compare (2-cycle, 4 units).
    FpAlu,
    /// FP multiply/divide (4-cycle, 1 unit).
    FpMul,
    /// Load (dL1/dTLB access at execute).
    Load,
    /// Store (address generation at execute, data written at commit).
    Store,
    /// Control transfer; carries a [`BranchSpec`].
    Branch,
}

/// What kind of control transfer a branch performs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BranchKind {
    /// Conditional, direct target; falls through when not taken.
    /// `taken_bias` is the per-site probability of being taken.
    Conditional {
        /// Probability this branch is taken on any dynamic instance.
        taken_bias: f64,
    },
    /// Unconditional direct jump.
    Jump,
    /// Direct call; pushes the fall-through address as return address.
    Call,
    /// Return; pops the return-address stack.
    Return,
    /// Indirect jump through a register (computed goto / switch dispatch).
    IndirectJump,
    /// Indirect call (virtual dispatch / function pointer): pushes a return
    /// address like [`BranchKind::Call`], but the target is unknown at
    /// compile time.
    IndirectCall,
}

impl BranchKind {
    /// Whether the *target* of this branch is statically analyzable — the
    /// property the SoLA compiler pass keys on ("branch targets given as
    /// immediate operands or as PC-relative operands").
    #[must_use]
    pub fn analyzable(self) -> bool {
        matches!(
            self,
            BranchKind::Conditional { .. } | BranchKind::Jump | BranchKind::Call
        )
    }

    /// Whether the branch can fall through (only conditionals can).
    #[must_use]
    pub fn conditional(self) -> bool {
        matches!(self, BranchKind::Conditional { .. })
    }
}

/// Where a branch goes when taken.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum BranchTarget {
    /// A direct target: the first instruction of a block.
    Block(BlockId),
    /// The next sequential instruction — used by compiler-inserted boundary
    /// branches, whose target is "the very next instruction (the first one
    /// on the next page)".
    NextSlot,
    /// An indirect target set: the walker picks one block per execution,
    /// weighted uniformly. Unknown at compile time.
    Indirect(Vec<BlockId>),
    /// Return to the caller (target comes from the call stack).
    CallerReturn,
}

/// Branch metadata attached to [`OpClass::Branch`] instructions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BranchSpec {
    /// Control-transfer kind.
    pub kind: BranchKind,
    /// Taken-path target.
    pub target: BranchTarget,
    /// Set by the SoLA compiler pass when the (analyzable) target is on the
    /// same page as the branch itself — the paper's extra instruction bit.
    pub in_page_hint: bool,
    /// True for compiler-inserted page-boundary branches.
    pub boundary: bool,
}

impl BranchSpec {
    /// A direct conditional branch.
    #[must_use]
    pub fn conditional(target: BlockId, taken_bias: f64) -> Self {
        Self {
            kind: BranchKind::Conditional { taken_bias },
            target: BranchTarget::Block(target),
            in_page_hint: false,
            boundary: false,
        }
    }

    /// An unconditional direct jump.
    #[must_use]
    pub fn jump(target: BlockId) -> Self {
        Self {
            kind: BranchKind::Jump,
            target: BranchTarget::Block(target),
            in_page_hint: false,
            boundary: false,
        }
    }

    /// A direct call.
    #[must_use]
    pub fn call(entry: BlockId) -> Self {
        Self {
            kind: BranchKind::Call,
            target: BranchTarget::Block(entry),
            in_page_hint: false,
            boundary: false,
        }
    }

    /// A return.
    #[must_use]
    pub fn ret() -> Self {
        Self {
            kind: BranchKind::Return,
            target: BranchTarget::CallerReturn,
            in_page_hint: false,
            boundary: false,
        }
    }

    /// An indirect jump over a candidate set.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    #[must_use]
    pub fn indirect(targets: Vec<BlockId>) -> Self {
        assert!(!targets.is_empty(), "indirect jump needs targets");
        Self {
            kind: BranchKind::IndirectJump,
            target: BranchTarget::Indirect(targets),
            in_page_hint: false,
            boundary: false,
        }
    }

    /// An indirect call (virtual dispatch) over candidate function entries.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    #[must_use]
    pub fn indirect_call(entries: Vec<BlockId>) -> Self {
        assert!(!entries.is_empty(), "indirect call needs targets");
        Self {
            kind: BranchKind::IndirectCall,
            target: BranchTarget::Indirect(entries),
            in_page_hint: false,
            boundary: false,
        }
    }

    /// The compiler-inserted page-boundary branch: an unconditional jump to
    /// the next sequential instruction.
    #[must_use]
    pub fn boundary() -> Self {
        Self {
            kind: BranchKind::Jump,
            target: BranchTarget::NextSlot,
            in_page_hint: false,
            boundary: true,
        }
    }
}

/// Data region a memory instruction touches (assigned at generation time;
/// drives the synthetic data-address stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataRegion {
    /// Stack frame of the executing function.
    Stack,
    /// One of the program's global pages (index).
    Global(u16),
    /// One of the program's heap arrays (index), walked with a stride.
    Heap(u16),
}

/// One instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Functional class.
    pub class: OpClass,
    /// Source registers.
    pub srcs: [Option<RegId>; 2],
    /// Destination register.
    pub dst: Option<RegId>,
    /// Branch metadata (present iff `class == Branch`).
    pub branch: Option<BranchSpec>,
    /// Data region (present iff `class` is `Load` or `Store`).
    pub region: Option<DataRegion>,
}

impl Instruction {
    /// A non-memory, non-branch op.
    ///
    /// # Panics
    ///
    /// Panics if `class` is a branch or memory class.
    #[must_use]
    pub fn alu(class: OpClass, srcs: [Option<RegId>; 2], dst: Option<RegId>) -> Self {
        assert!(
            matches!(
                class,
                OpClass::IntAlu | OpClass::IntMul | OpClass::FpAlu | OpClass::FpMul
            ),
            "alu() is for computational classes"
        );
        Self {
            class,
            srcs,
            dst,
            branch: None,
            region: None,
        }
    }

    /// A load from `region`.
    #[must_use]
    pub fn load(region: DataRegion, addr_src: RegId, dst: RegId) -> Self {
        Self {
            class: OpClass::Load,
            srcs: [Some(addr_src), None],
            dst: Some(dst),
            branch: None,
            region: Some(region),
        }
    }

    /// A store to `region`.
    #[must_use]
    pub fn store(region: DataRegion, addr_src: RegId, data_src: RegId) -> Self {
        Self {
            class: OpClass::Store,
            srcs: [Some(addr_src), Some(data_src)],
            dst: None,
            branch: None,
            region: Some(region),
        }
    }

    /// A branch with the given spec. Conditional branches read a register.
    #[must_use]
    pub fn branch(spec: BranchSpec, cond_src: Option<RegId>) -> Self {
        Self {
            class: OpClass::Branch,
            srcs: [cond_src, None],
            dst: None,
            branch: Some(spec),
            region: None,
        }
    }

    /// Whether this is any kind of branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        self.class == OpClass::Branch
    }

    /// Execution latency in cycles once issued.
    #[must_use]
    pub fn latency(&self) -> u32 {
        match self.class {
            OpClass::IntAlu | OpClass::Branch => 1,
            OpClass::IntMul => 3,
            OpClass::FpAlu => 2,
            OpClass::FpMul => 4,
            OpClass::Load => 1, // plus memory latency, charged by the LSQ
            OpClass::Store => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyzability_matches_paper_definition() {
        assert!(BranchKind::Conditional { taken_bias: 0.5 }.analyzable());
        assert!(BranchKind::Jump.analyzable());
        assert!(BranchKind::Call.analyzable());
        assert!(!BranchKind::Return.analyzable());
        assert!(!BranchKind::IndirectJump.analyzable());
    }

    #[test]
    fn only_conditionals_fall_through() {
        assert!(BranchKind::Conditional { taken_bias: 0.1 }.conditional());
        assert!(!BranchKind::Jump.conditional());
        assert!(!BranchKind::Return.conditional());
    }

    #[test]
    fn boundary_spec_shape() {
        let b = BranchSpec::boundary();
        assert!(b.boundary);
        assert_eq!(b.kind, BranchKind::Jump);
        assert_eq!(b.target, BranchTarget::NextSlot);
    }

    #[test]
    fn constructors_set_classes() {
        let l = Instruction::load(DataRegion::Stack, RegId(1), RegId(2));
        assert_eq!(l.class, OpClass::Load);
        assert!(l.region.is_some());
        let s = Instruction::store(DataRegion::Global(0), RegId(1), RegId(2));
        assert_eq!(s.class, OpClass::Store);
        let b = Instruction::branch(BranchSpec::ret(), None);
        assert!(b.is_branch());
        let a = Instruction::alu(OpClass::IntAlu, [None, None], Some(RegId(3)));
        assert!(!a.is_branch());
    }

    #[test]
    #[should_panic(expected = "computational")]
    fn alu_rejects_branch_class() {
        let _ = Instruction::alu(OpClass::Branch, [None, None], None);
    }

    #[test]
    fn latencies_match_table1_units() {
        assert_eq!(
            Instruction::alu(OpClass::IntAlu, [None, None], None).latency(),
            1
        );
        assert_eq!(
            Instruction::alu(OpClass::IntMul, [None, None], None).latency(),
            3
        );
        assert_eq!(
            Instruction::alu(OpClass::FpMul, [None, None], None).latency(),
            4
        );
    }

    #[test]
    fn fp_registers() {
        assert!(!RegId(31).is_fp());
        assert!(RegId(32).is_fp());
    }

    #[test]
    #[should_panic(expected = "needs targets")]
    fn indirect_needs_targets() {
        let _ = BranchSpec::indirect(vec![]);
    }
}
