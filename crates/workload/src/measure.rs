//! Functional (non-cycle-accurate) measurement of workload statistics.
//!
//! Used to calibrate generated programs against the paper's Tables 2, 4 and
//! 5 without paying for the full out-of-order pipeline: a fast walk that
//! classifies page crossings, tracks analyzable/in-page branch instances,
//! runs a direct-mapped iL1 alongside, and scores a bimodal direction
//! predictor. The cycle-level numbers come from `cfr-cpu`/`cfr-core`.

use cfr_mem::{AccessKind, Cache, CacheConfig};
use serde::{Deserialize, Serialize};

use crate::isa::BranchKind;
use crate::layout::LaidProgram;
use crate::walk::Walker;

/// Dynamic statistics from a functional walk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FunctionalStats {
    /// Instructions executed.
    pub committed: u64,
    /// Dynamic branches (including boundary branches).
    pub branches: u64,
    /// Dynamic taken branches.
    pub taken: u64,
    /// Dynamic boundary-branch executions (instrumented layouts only).
    pub boundary_branch_execs: u64,
    /// Dynamic instances of statically-analyzable branches (paper Table 4).
    pub analyzable: u64,
    /// ... whose target is on the branch's own page.
    pub analyzable_in_page: u64,
    /// ... whose target is on a different page.
    pub analyzable_crossing: u64,
    /// Page crossings caused by taken branches (paper Table 2 BRANCH).
    pub crossings_branch: u64,
    /// Sequential page crossings (paper Table 2 BOUNDARY). Boundary-branch
    /// hops to the next page count here: they *are* the sequential crossing,
    /// made explicit by the compiler.
    pub crossings_boundary: u64,
    /// iL1 accesses (one per instruction, as in sim-outorder).
    pub il1_accesses: u64,
    /// iL1 misses.
    pub il1_misses: u64,
    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Conditionals whose direction a 2-bit bimodal predicted correctly.
    pub cond_predicted: u64,
    /// Dynamic jumps (including boundary branches).
    pub jumps: u64,
    /// Dynamic calls.
    pub calls: u64,
    /// Dynamic returns.
    pub returns: u64,
    /// Dynamic indirect jumps.
    pub indirects: u64,
}

impl FunctionalStats {
    /// Branches as a fraction of committed instructions.
    #[must_use]
    pub fn branch_fraction(&self) -> f64 {
        ratio(self.branches, self.committed)
    }

    /// Analyzable instances as a fraction of dynamic branches.
    #[must_use]
    pub fn analyzable_fraction(&self) -> f64 {
        ratio(self.analyzable, self.branches)
    }

    /// In-page instances as a fraction of analyzable instances.
    #[must_use]
    pub fn in_page_fraction(&self) -> f64 {
        ratio(self.analyzable_in_page, self.analyzable)
    }

    /// iL1 miss rate.
    #[must_use]
    pub fn il1_miss_rate(&self) -> f64 {
        ratio(self.il1_misses, self.il1_accesses)
    }

    /// Total page crossings.
    #[must_use]
    pub fn crossings(&self) -> u64 {
        self.crossings_branch + self.crossings_boundary
    }

    /// BOUNDARY share of all crossings.
    #[must_use]
    pub fn boundary_share(&self) -> f64 {
        ratio(self.crossings_boundary, self.crossings())
    }

    /// Crossings as a fraction of committed instructions.
    #[must_use]
    pub fn crossing_fraction(&self) -> f64 {
        ratio(self.crossings(), self.committed)
    }

    /// Bimodal direction accuracy over conditionals.
    #[must_use]
    pub fn bimodal_accuracy(&self) -> f64 {
        ratio(self.cond_predicted, self.cond_branches)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A 2-bit saturating-counter bimodal predictor (SimpleScalar's `bimod`).
#[derive(Clone, Debug)]
pub struct Bimodal {
    counters: Vec<u8>,
}

impl Bimodal {
    /// Creates a table of `entries` 2-bit counters, initialized weakly
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    #[must_use]
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "bimodal size must be 2^k");
        Self {
            counters: vec![2; entries],
        }
    }

    #[inline]
    fn index(&self, addr: u64) -> usize {
        ((addr >> 2) as usize) & (self.counters.len() - 1)
    }

    /// Predicted direction for the branch at `addr`.
    #[must_use]
    pub fn predict(&self, addr: u64) -> bool {
        self.counters[self.index(addr)] >= 2
    }

    /// Trains the counter with the actual direction.
    pub fn update(&mut self, addr: u64, taken: bool) {
        let idx = self.index(addr);
        let c = &mut self.counters[idx];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }
}

/// Walks `n` instructions and gathers [`FunctionalStats`].
///
/// The iL1 modeled alongside is the paper's default (8 KB direct-mapped,
/// 32-byte blocks), accessed once per instruction with the *virtual* address
/// (its miss rate is index-scheme independent for a given stream).
#[must_use]
pub fn measure(prog: &LaidProgram, n: u64, seed: u64) -> FunctionalStats {
    let mut stats = FunctionalStats::default();
    let mut walker = Walker::new(prog, seed);
    let mut il1 = Cache::new(CacheConfig::default_il1());
    let mut bimodal = Bimodal::new(2048);

    for _ in 0..n {
        let step = walker.step();
        stats.committed += 1;
        stats.il1_accesses += 1;
        if !il1.access(step.addr.raw(), AccessKind::Read).hit {
            stats.il1_misses += 1;
        }

        let this_page = prog.geom.vpn(step.addr);
        let next_page = prog.geom.vpn(prog.addr_of(step.next_slot));
        let crossed = this_page != next_page;

        if let Some(exec) = step.branch {
            stats.branches += 1;
            if exec.taken {
                stats.taken += 1;
            }
            if step.is_boundary {
                stats.boundary_branch_execs += 1;
            }
            let spec = prog.slots[step.slot]
                .instr
                .branch
                .as_ref()
                .expect("branch step has spec");
            if spec.kind.analyzable() && !step.is_boundary {
                stats.analyzable += 1;
                let target = prog
                    .direct_target_addr(step.slot)
                    .expect("analyzable branch has a direct target");
                if prog.geom.same_page(step.addr, target) {
                    stats.analyzable_in_page += 1;
                } else {
                    stats.analyzable_crossing += 1;
                }
            }
            match spec.kind {
                BranchKind::Conditional { .. } => {
                    stats.cond_branches += 1;
                    if bimodal.predict(step.addr.raw()) == exec.taken {
                        stats.cond_predicted += 1;
                    }
                    bimodal.update(step.addr.raw(), exec.taken);
                }
                BranchKind::Jump => stats.jumps += 1,
                BranchKind::Call => stats.calls += 1,
                BranchKind::Return => stats.returns += 1,
                BranchKind::IndirectJump | BranchKind::IndirectCall => stats.indirects += 1,
            }
            if crossed {
                // A boundary branch's hop is the sequential crossing made
                // explicit; a real taken branch to another page is BRANCH.
                if exec.taken && !step.is_boundary {
                    stats.crossings_branch += 1;
                } else {
                    stats.crossings_boundary += 1;
                }
            }
        } else if crossed {
            stats.crossings_boundary += 1;
        }
    }
    stats
}

/// Static branch statistics over a laid-out program (paper Table 4, left
/// half). Boundary branches are excluded: the paper's static numbers come
/// from the uninstrumented source.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticBranchStats {
    /// Static branch sites.
    pub total: u64,
    /// ... with statically-analyzable targets.
    pub analyzable: u64,
    /// Analyzable sites whose target is on the same page.
    pub analyzable_in_page: u64,
    /// Analyzable sites whose target is on a different page.
    pub analyzable_crossing: u64,
}

/// Everything one functional walk of a laid-out program produces: the
/// dynamic [`FunctionalStats`] plus the layout's [`StaticBranchStats`] —
/// the unit the persistent artifact store caches under its `walks`
/// namespace (Table 4 and the calibration paths consume exactly this
/// pair, so a warm read makes them instruction-count-free).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WalkMeasurement {
    /// Dynamic statistics from the walk.
    pub functional: FunctionalStats,
    /// Static branch statistics of the layout walked.
    pub static_branches: StaticBranchStats,
}

/// Walks `n` instructions and bundles the dynamic statistics with the
/// layout's static branch statistics (see [`WalkMeasurement`]).
#[must_use]
pub fn measure_walk(prog: &LaidProgram, n: u64, seed: u64) -> WalkMeasurement {
    WalkMeasurement {
        functional: measure(prog, n, seed),
        static_branches: static_branch_stats(prog),
    }
}

/// Computes [`StaticBranchStats`] from a layout.
#[must_use]
pub fn static_branch_stats(prog: &LaidProgram) -> StaticBranchStats {
    let mut s = StaticBranchStats::default();
    for (i, slot) in prog.slots.iter().enumerate() {
        let Some(spec) = &slot.instr.branch else {
            continue;
        };
        if spec.boundary {
            continue;
        }
        s.total += 1;
        if spec.kind.analyzable() {
            s.analyzable += 1;
            let addr = prog.addr_of(i);
            let target = prog
                .direct_target_addr(i)
                .expect("analyzable branch has a direct target");
            if prog.geom.same_page(addr, target) {
                s.analyzable_in_page += 1;
            } else {
                s.analyzable_crossing += 1;
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorParams};
    use cfr_types::PageGeometry;

    fn laid(instrumented: bool) -> LaidProgram {
        let prog = generate(&GeneratorParams::small_test());
        LaidProgram::lay_out(&prog, PageGeometry::default_4k(), instrumented)
    }

    #[test]
    fn measure_counts_are_consistent() {
        let p = laid(false);
        let s = measure(&p, 50_000, 7);
        assert_eq!(s.committed, 50_000);
        assert!(s.branches > 0);
        assert!(s.taken <= s.branches);
        assert_eq!(s.analyzable, s.analyzable_in_page + s.analyzable_crossing);
        assert!(s.analyzable <= s.branches);
        assert!(s.il1_misses <= s.il1_accesses);
        assert!(s.cond_predicted <= s.cond_branches);
        assert_eq!(s.boundary_branch_execs, 0, "uninstrumented has none");
    }

    #[test]
    fn measure_is_deterministic() {
        let p = laid(false);
        assert_eq!(measure(&p, 20_000, 3), measure(&p, 20_000, 3));
    }

    #[test]
    fn instrumented_layout_converts_boundary_to_branches() {
        let p_plain = laid(false);
        let p_inst = laid(true);
        let a = measure(&p_plain, 100_000, 5);
        let b = measure(&p_inst, 100_000, 5);
        // Instrumented: no silent sequential crossings remain; every
        // crossing happens at a branch (boundary or real).
        assert!(b.boundary_branch_execs > 0 || a.crossings_boundary == 0);
        // Crossing totals per instruction stay in the same ballpark.
        let ca = a.crossing_fraction();
        let cb = b.crossing_fraction();
        assert!((ca - cb).abs() < 0.02, "crossing fractions {ca} vs {cb}");
    }

    #[test]
    fn instrumented_boundary_crossings_happen_at_branches_only() {
        let p = laid(true);
        // Walk manually: any sequential (non-branch) step must stay on-page.
        let mut w = Walker::new(&p, 11);
        for _ in 0..100_000 {
            let step = w.step();
            if step.branch.is_none() {
                assert!(
                    p.geom.same_page(step.addr, p.addr_of(step.next_slot)),
                    "sequential crossing survived instrumentation at slot {}",
                    step.slot
                );
            }
        }
    }

    #[test]
    fn static_stats_sum() {
        let p = laid(false);
        let s = static_branch_stats(&p);
        assert!(s.total > 0);
        assert_eq!(s.analyzable, s.analyzable_in_page + s.analyzable_crossing);
        assert!(s.analyzable <= s.total);
    }

    #[test]
    fn static_stats_ignore_boundary_branches() {
        let a = static_branch_stats(&laid(false));
        let b = static_branch_stats(&laid(true));
        assert_eq!(a.total, b.total);
        assert_eq!(a.analyzable, b.analyzable);
    }

    #[test]
    fn bimodal_learns_a_steady_branch() {
        let mut b = Bimodal::new(64);
        for _ in 0..10 {
            b.update(0x100, true);
        }
        assert!(b.predict(0x100));
        for _ in 0..10 {
            b.update(0x100, false);
        }
        assert!(!b.predict(0x100));
    }

    #[test]
    fn bimodal_hysteresis() {
        let mut b = Bimodal::new(64);
        for _ in 0..10 {
            b.update(0x100, true);
        }
        b.update(0x100, false); // one blip
        assert!(b.predict(0x100), "2-bit counter survives one blip");
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn bimodal_size_checked() {
        let _ = Bimodal::new(100);
    }
}
