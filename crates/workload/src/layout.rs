//! Code layout: placing a [`Program`]'s blocks at virtual addresses.
//!
//! Layout is where the paper's BOUNDARY case is born: two successive
//! instructions on opposite sides of a page boundary. The *instrumented*
//! layout is the SoCA/SoLA/IA compiler's output — it guarantees that the
//! last instruction slot of every code page holds an **unconditional**
//! branch (inserting a boundary branch to "the very next instruction" when
//! the natural instruction stream would have crossed sequentially), so page
//! changes can only ever happen at branch targets.

use cfr_types::{PageGeometry, VirtAddr, INSTRUCTION_BYTES};
use serde::{Deserialize, Serialize};

use crate::isa::{BranchSpec, BranchTarget, Instruction};
use crate::program::{BlockId, Program};

/// One laid-out instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Slot {
    /// The instruction (a copy; compiler passes may rewrite its branch
    /// metadata, e.g. the SoLA in-page bit).
    pub instr: Instruction,
    /// The block this instruction came from, or `None` for a
    /// compiler-inserted boundary branch.
    pub block: Option<BlockId>,
}

/// A program placed in virtual memory.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LaidProgram {
    /// Page geometry used for layout.
    pub geom: PageGeometry,
    /// Address of slot 0 (page-aligned).
    pub base: VirtAddr,
    /// All instructions in address order; slot `i` lives at `base + 4*i`.
    pub slots: Vec<Slot>,
    /// Slot index of each block's first instruction, indexed by `BlockId`.
    pub block_start: Vec<u32>,
    /// Number of boundary branches the layout inserted (0 when not
    /// instrumented).
    pub boundary_branches: u32,
    /// Whether this is the SoCA/SoLA/IA compiler's instrumented layout.
    pub instrumented: bool,
    /// Data-region shape, copied from the program for the walker.
    pub global_pages: u16,
    /// Number of heap arrays.
    pub heap_arrays: u16,
    /// Pages per heap array.
    pub heap_array_pages: u16,
}

/// Default load address for program text (page-aligned).
pub const TEXT_BASE: u64 = 0x0040_0000;

impl LaidProgram {
    /// Lays out `prog` starting at [`TEXT_BASE`].
    ///
    /// With `instrumented = true`, applies the boundary-branch pass: no
    /// conditional branch or fall-through instruction ever occupies the last
    /// slot of a page.
    ///
    /// # Panics
    ///
    /// Panics if the program fails [`Program::validate`].
    #[must_use]
    pub fn lay_out(prog: &Program, geom: PageGeometry, instrumented: bool) -> Self {
        if let Err(e) = prog.validate() {
            panic!("cannot lay out invalid program: {e}");
        }
        let base = VirtAddr::new(TEXT_BASE);
        let mut slots: Vec<Slot> = Vec::with_capacity(prog.static_instructions());
        let mut block_start = vec![0u32; prog.blocks.len()];
        let mut boundary_branches = 0u32;

        for (bi, block) in prog.blocks.iter().enumerate() {
            block_start[bi] = slots.len() as u32;
            for instr in &block.instrs {
                if instrumented {
                    let addr = base.add(slots.len() as u64 * INSTRUCTION_BYTES);
                    if geom.is_last_slot(addr) && !may_end_page(instr) {
                        slots.push(Slot {
                            instr: Instruction::branch(BranchSpec::boundary(), None),
                            block: None,
                        });
                        boundary_branches += 1;
                    }
                }
                slots.push(Slot {
                    instr: instr.clone(),
                    block: Some(BlockId(bi as u32)),
                });
            }
        }

        Self {
            geom,
            base,
            slots,
            block_start,
            boundary_branches,
            instrumented,
            global_pages: prog.global_pages,
            heap_arrays: prog.heap_arrays,
            heap_array_pages: prog.heap_array_pages,
        }
    }

    /// Address of slot `i`.
    #[inline]
    #[must_use]
    pub fn addr_of(&self, slot: usize) -> VirtAddr {
        self.base.add(slot as u64 * INSTRUCTION_BYTES)
    }

    /// Slot index at `addr`, if it names an instruction of this program.
    #[must_use]
    pub fn slot_of(&self, addr: VirtAddr) -> Option<usize> {
        let a = addr.raw();
        let b = self.base.raw();
        if a < b || !(a - b).is_multiple_of(INSTRUCTION_BYTES) {
            return None;
        }
        let idx = ((a - b) / INSTRUCTION_BYTES) as usize;
        (idx < self.slots.len()).then_some(idx)
    }

    /// First slot of block `b`.
    #[inline]
    #[must_use]
    pub fn block_slot(&self, b: BlockId) -> usize {
        self.block_start[b.0 as usize] as usize
    }

    /// The program's entry slot (first instruction of `main`).
    #[must_use]
    pub fn entry_slot(&self) -> usize {
        0
    }

    /// For a *direct* branch at `slot`, its taken-target address.
    /// `None` for non-branches, returns, and indirect jumps.
    #[must_use]
    pub fn direct_target_addr(&self, slot: usize) -> Option<VirtAddr> {
        let spec = self.slots[slot].instr.branch.as_ref()?;
        match &spec.target {
            BranchTarget::Block(b) => Some(self.addr_of(self.block_slot(*b))),
            BranchTarget::NextSlot => Some(self.addr_of(slot + 1)),
            BranchTarget::Indirect(_) | BranchTarget::CallerReturn => None,
        }
    }

    /// Number of pages the text occupies.
    #[must_use]
    pub fn code_pages(&self) -> u64 {
        let bytes = self.slots.len() as u64 * INSTRUCTION_BYTES;
        bytes.div_ceil(self.geom.page_bytes())
    }

    /// Verifies the instrumented invariant: every last-slot-of-page holds an
    /// unconditional branch. Used by tests and debug assertions.
    #[must_use]
    pub fn boundary_invariant_holds(&self) -> bool {
        if !self.instrumented {
            return true;
        }
        self.slots.iter().enumerate().all(|(i, s)| {
            let addr = self.addr_of(i);
            // The very last instruction of the program is exempt: there is
            // no successor to fall into.
            if !self.geom.is_last_slot(addr) || i + 1 == self.slots.len() {
                return true;
            }
            may_end_page(&s.instr)
        })
    }
}

/// Whether an instruction may legally occupy the last slot of a page in the
/// instrumented layout: only branches that never fall through.
fn may_end_page(instr: &Instruction) -> bool {
    match &instr.branch {
        Some(spec) => !spec.kind.conditional(),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorParams};
    use crate::isa::OpClass;
    use crate::program::{Block, Function};

    fn nop() -> Instruction {
        Instruction::alu(OpClass::IntAlu, [None, None], None)
    }

    /// A program with one huge straight-line block so layout must cross
    /// pages, ending in a jump back to block 0.
    fn straightline(n: usize) -> Program {
        let mut instrs = vec![nop(); n];
        instrs.push(Instruction::branch(BranchSpec::jump(BlockId(0)), None));
        Program {
            blocks: vec![Block { instrs }],
            functions: vec![Function {
                first_block: 0,
                n_blocks: 1,
            }],
            global_pages: 1,
            heap_arrays: 1,
            heap_array_pages: 1,
        }
    }

    #[test]
    fn uninstrumented_layout_is_dense() {
        let p = straightline(3000);
        let laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), false);
        assert_eq!(laid.slots.len(), 3001);
        assert_eq!(laid.boundary_branches, 0);
        assert!(laid.boundary_invariant_holds());
    }

    #[test]
    fn instrumented_layout_inserts_boundary_branches() {
        let p = straightline(3000);
        let laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), true);
        // 3001 instructions over 1024-instruction pages: crossings at slots
        // 1023 and 2047 (the natural instructions there are nops).
        assert!(laid.boundary_branches >= 2);
        assert_eq!(laid.slots.len(), 3001 + laid.boundary_branches as usize);
        assert!(laid.boundary_invariant_holds());
        // The inserted slots are boundary jumps at page-final addresses.
        let page_instrs = laid.geom.instructions_per_page() as usize;
        let s = &laid.slots[page_instrs - 1];
        assert!(s.instr.branch.as_ref().unwrap().boundary);
        assert_eq!(s.block, None);
    }

    #[test]
    fn addresses_and_slots_round_trip() {
        let p = straightline(100);
        let laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), false);
        for i in [0usize, 1, 50, 100] {
            assert_eq!(laid.slot_of(laid.addr_of(i)), Some(i));
        }
        assert_eq!(laid.slot_of(VirtAddr::new(TEXT_BASE - 4)), None);
        assert_eq!(laid.slot_of(VirtAddr::new(TEXT_BASE + 2)), None);
        assert_eq!(laid.slot_of(laid.addr_of(101)), None);
    }

    #[test]
    fn direct_target_resolution() {
        let p = straightline(10);
        let laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), false);
        // The jump at slot 10 targets block 0 = slot 0.
        assert_eq!(laid.direct_target_addr(10), Some(laid.addr_of(0)));
        assert_eq!(laid.direct_target_addr(0), None, "nop has no target");
    }

    #[test]
    fn boundary_branch_targets_next_slot() {
        let p = straightline(3000);
        let laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), true);
        let page_instrs = laid.geom.instructions_per_page() as usize;
        let b = page_instrs - 1;
        assert_eq!(laid.direct_target_addr(b), Some(laid.addr_of(b + 1)));
    }

    #[test]
    fn code_pages_counts() {
        let p = straightline(1023); // exactly one page with the jump
        let laid = LaidProgram::lay_out(&p, PageGeometry::default_4k(), false);
        assert_eq!(laid.code_pages(), 1);
        let p2 = straightline(1024);
        let laid2 = LaidProgram::lay_out(&p2, PageGeometry::default_4k(), false);
        assert_eq!(laid2.code_pages(), 2);
    }

    #[test]
    #[should_panic(expected = "invalid program")]
    fn layout_rejects_invalid() {
        let p = Program {
            blocks: vec![Block {
                instrs: vec![nop()],
            }],
            functions: vec![Function {
                first_block: 0,
                n_blocks: 1,
            }],
            global_pages: 0,
            heap_arrays: 0,
            heap_array_pages: 0,
        };
        let _ = LaidProgram::lay_out(&p, PageGeometry::default_4k(), false);
    }

    #[test]
    fn generated_program_invariant_holds() {
        let prog = generate(&GeneratorParams::small_test());
        let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), true);
        assert!(laid.boundary_invariant_holds());
        // Block starts shift but stay consistent.
        for (bi, &start) in laid.block_start.iter().enumerate() {
            let slot = &laid.slots[start as usize];
            assert_eq!(slot.block, Some(BlockId(bi as u32)));
        }
    }
}
