//! Program structure: functions made of basic blocks.

use serde::{Deserialize, Serialize};

use crate::isa::{BranchTarget, Instruction};

/// Index of a basic block in [`Program::blocks`] (global across functions).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Index of a function in [`Program::functions`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

/// A basic block: straight-line instructions, the last of which may be a
/// branch. Blocks without a terminating branch fall through to the next
/// block in layout order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// The instructions, in order.
    pub instrs: Vec<Instruction>,
}

impl Block {
    /// The terminating branch, if the block ends in one.
    #[must_use]
    pub fn terminator(&self) -> Option<&Instruction> {
        self.instrs.last().filter(|i| i.is_branch())
    }
}

/// A function: a contiguous run of blocks; the first is the entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Function {
    /// Global index of the first (entry) block.
    pub first_block: u32,
    /// Number of blocks (laid out contiguously).
    pub n_blocks: u32,
}

impl Function {
    /// The entry block.
    #[must_use]
    pub fn entry(&self) -> BlockId {
        BlockId(self.first_block)
    }

    /// Whether `b` belongs to this function.
    #[must_use]
    pub fn contains(&self, b: BlockId) -> bool {
        (self.first_block..self.first_block + self.n_blocks).contains(&b.0)
    }
}

/// A whole program: the static artifact that the generator produces, the
/// layout engine places on pages, and the compiler passes rewrite.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// All blocks, grouped by function, in layout order.
    pub blocks: Vec<Block>,
    /// All functions; `functions[0]` is `main` (execution entry).
    pub functions: Vec<Function>,
    /// Number of global data pages the program references.
    pub global_pages: u16,
    /// Number of heap arrays the program references.
    pub heap_arrays: u16,
    /// Pages per heap array.
    pub heap_array_pages: u16,
}

impl Program {
    /// Total static instruction count.
    #[must_use]
    pub fn static_instructions(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Total static branch count.
    #[must_use]
    pub fn static_branches(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| &b.instrs)
            .filter(|i| i.is_branch())
            .count()
    }

    /// The function owning block `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is out of range.
    #[must_use]
    pub fn function_of(&self, b: BlockId) -> FunctionId {
        let idx = self
            .functions
            .partition_point(|f| f.first_block + f.n_blocks <= b.0);
        assert!(
            idx < self.functions.len() && self.functions[idx].contains(b),
            "block {b:?} not in any function"
        );
        FunctionId(idx as u32)
    }

    /// Validates internal consistency: functions tile the block array,
    /// every branch target names a real block, every function's last block
    /// terminates (so execution cannot run off a function's end), and only
    /// final instructions are branches.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let mut expected = 0u32;
        for (i, f) in self.functions.iter().enumerate() {
            if f.first_block != expected {
                return Err(format!("function {i} does not start at block {expected}"));
            }
            if f.n_blocks == 0 {
                return Err(format!("function {i} is empty"));
            }
            // Untrusted inputs (records loaded from the persistent store)
            // reach this check: a function table overrunning the block
            // array must be an error, never an out-of-bounds panic.
            expected = match f.first_block.checked_add(f.n_blocks) {
                Some(end) if (end as usize) <= self.blocks.len() => end,
                _ => return Err(format!("function {i} extends past the block array")),
            };
            let last = &self.blocks[expected as usize - 1];
            match last.terminator() {
                Some(t) => {
                    let spec = t.branch.as_ref().expect("branch has spec");
                    if spec.kind.conditional() {
                        return Err(format!(
                            "function {i} ends with a conditional (can fall off the end)"
                        ));
                    }
                }
                None => {
                    return Err(format!("function {i} last block has no terminator"));
                }
            }
        }
        if expected as usize != self.blocks.len() {
            return Err("functions do not tile the block array".into());
        }
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.instrs.is_empty() {
                return Err(format!("block {bi} is empty"));
            }
            for (ii, inst) in b.instrs.iter().enumerate() {
                let is_last = ii + 1 == b.instrs.len();
                if inst.is_branch() && !is_last {
                    return Err(format!("block {bi} has a branch mid-block at {ii}"));
                }
                if let Some(spec) = &inst.branch {
                    let targets: &[BlockId] = match &spec.target {
                        BranchTarget::Block(t) => std::slice::from_ref(t),
                        BranchTarget::Indirect(ts) => ts,
                        BranchTarget::NextSlot | BranchTarget::CallerReturn => &[],
                    };
                    for t in targets {
                        if t.0 as usize >= self.blocks.len() {
                            return Err(format!("block {bi} targets nonexistent {t:?}"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BranchSpec, OpClass};

    fn nop() -> Instruction {
        Instruction::alu(OpClass::IntAlu, [None, None], None)
    }

    fn tiny_program() -> Program {
        // main: b0 (falls through) -> b1 (jumps to b0)
        Program {
            blocks: vec![
                Block {
                    instrs: vec![nop(), nop()],
                },
                Block {
                    instrs: vec![
                        nop(),
                        Instruction::branch(BranchSpec::jump(BlockId(0)), None),
                    ],
                },
            ],
            functions: vec![Function {
                first_block: 0,
                n_blocks: 2,
            }],
            global_pages: 1,
            heap_arrays: 1,
            heap_array_pages: 1,
        }
    }

    #[test]
    fn counts() {
        let p = tiny_program();
        assert_eq!(p.static_instructions(), 4);
        assert_eq!(p.static_branches(), 1);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn function_of_blocks() {
        let p = tiny_program();
        assert_eq!(p.function_of(BlockId(0)), FunctionId(0));
        assert_eq!(p.function_of(BlockId(1)), FunctionId(0));
    }

    #[test]
    fn validate_rejects_fall_off_end() {
        let mut p = tiny_program();
        p.blocks[1] = Block {
            instrs: vec![nop()],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_mid_block_branch() {
        let mut p = tiny_program();
        p.blocks[0] = Block {
            instrs: vec![
                Instruction::branch(BranchSpec::jump(BlockId(0)), None),
                nop(),
            ],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_dangling_target() {
        let mut p = tiny_program();
        p.blocks[1] = Block {
            instrs: vec![Instruction::branch(BranchSpec::jump(BlockId(9)), None)],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_block() {
        let mut p = tiny_program();
        p.blocks[0] = Block { instrs: vec![] };
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_function_overrunning_blocks() {
        let mut p = tiny_program();
        p.functions[0].n_blocks = 5;
        assert!(p.validate().is_err(), "no panic on an overrunning table");
        p.functions[0].first_block = u32::MAX;
        assert!(p.validate().is_err(), "no overflow panic either");
    }

    #[test]
    fn validate_rejects_conditional_function_end() {
        let mut p = tiny_program();
        p.blocks[1] = Block {
            instrs: vec![Instruction::branch(
                BranchSpec::conditional(BlockId(0), 0.5),
                None,
            )],
        };
        assert!(p.validate().is_err());
    }
}
