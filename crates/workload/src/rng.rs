//! A tiny deterministic RNG.
//!
//! Simulation results must be bit-for-bit reproducible across machines and
//! dependency upgrades (the paper's experiments are comparisons between
//! strategies over the *same* dynamic instruction stream), so the workspace
//! uses its own SplitMix64 rather than an external generator whose stream
//! might change between crate versions.

/// SplitMix64 (Steele, Lea & Flood; public domain reference constants).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random bits into the mantissa.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Multiply-shift; bias is negligible for simulation bounds << 2^64.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks an index with probability proportional to `weights`.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(!weights.is_empty() && total > 0.0, "bad weights");
        let mut x = self.next_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(4);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = SplitMix64::new(5);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[r.below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = SplitMix64::new(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match r.range_inclusive(2, 4) {
                2 => lo_seen = true,
                4 => hi_seen = true,
                3 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(8);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let f = hits as f64 / 100_000.0;
        assert!((0.28..0.32).contains(&f), "p=0.3 measured {f}");
    }

    #[test]
    fn weighted_pick_matches_weights() {
        let mut r = SplitMix64::new(9);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0]);
        let f2 = f64::from(counts[2]) / 30_000.0;
        assert!((0.65..0.75).contains(&f2), "w=0.7 measured {f2}");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        SplitMix64::new(1).below(0);
    }
}
