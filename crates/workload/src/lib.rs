//! # cfr-workload
//!
//! Synthetic SPEC2000-like programs for `cfr-sim`.
//!
//! The paper evaluated six SPEC2000 binaries (177.mesa, 186.crafty,
//! 191.fma3d, 252.eon, 254.gap, 255.vortex) under SimpleScalar. Those
//! binaries and their inputs are not available here, so this crate builds
//! the closest synthetic equivalent: a **program generator** that emits a
//! real control-flow graph — functions, basic blocks, loops, calls,
//! indirect jumps — laid out over 4 KB pages, plus a deterministic
//! [`Walker`] that executes it.
//!
//! What makes the substitution faithful is that every statistic the paper's
//! mechanisms are sensitive to is a *calibration target* of the per-benchmark
//! [`profiles`]: dynamic branch fraction, statically-analyzable branch
//! fraction, in-page-target fraction, BOUNDARY/BRANCH page-crossing mix,
//! iL1 miss rate, and branch-predictor accuracy (paper Tables 2, 4 and 5).
//! The [`measure`] module checks generated programs against those targets.
//!
//! ```
//! use cfr_workload::{profiles, LaidProgram, Walker};
//! use cfr_types::PageGeometry;
//!
//! let profile = profiles::mesa();
//! let program = profile.generate();
//! let laid = LaidProgram::lay_out(&program, PageGeometry::default_4k(), false);
//! let mut walker = Walker::new(&laid, 42);
//! let step = walker.step();
//! assert_eq!(step.slot, 0, "execution starts at the entry slot");
//! ```

mod cache;
pub mod codec;
mod compile;
mod generate;
mod isa;
mod layout;
pub mod measure;
pub mod profiles;
mod program;
mod rng;
mod walk;

pub use cache::ProgramCache;
pub use codec::{params_fingerprint, program_store_key, trace_store_key, walk_store_key};
pub use compile::{compile_trace, CompiledTrace, DecodedInstr, TraceCache, TraceOp, TraceWalker};
pub use generate::{generate, GeneratorParams};
pub use isa::{BranchKind, BranchSpec, BranchTarget, DataRegion, Instruction, OpClass, RegId};
pub use layout::{LaidProgram, Slot};
pub use measure::{
    measure_walk, static_branch_stats, FunctionalStats, StaticBranchStats, WalkMeasurement,
};
pub use profiles::BenchmarkProfile;
pub use program::{Block, BlockId, Function, FunctionId, Program};
pub use rng::SplitMix64;
pub use walk::{BranchExec, StepInfo, Walker};
