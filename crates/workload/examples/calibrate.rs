//! Prints measured-vs-paper statistics for every benchmark profile.
//!
//! Used while tuning `profiles.rs`; kept as a runnable artifact so the
//! calibration is reproducible:
//!
//! ```sh
//! cargo run -p cfr-workload --release --example calibrate
//! ```

use cfr_types::PageGeometry;
use cfr_workload::{measure::measure, profiles, LaidProgram};

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    println!(
        "{:<12} {:>14} {:>14} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "profile",
        "branch%",
        "analyzable%",
        "in-page%",
        "bimodal%",
        "il1 miss%",
        "boundary%",
        "cross%"
    );
    for p in profiles::all() {
        let prog = p.generate();
        let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
        let s = measure(&laid, n, 1);
        let t = &p.paper;
        let fmt = |m: f64, target: f64| format!("{:5.2}/{:5.2}", m * 100.0, target * 100.0);
        println!(
            "{:<12} {:>14} {:>14} {:>12} {:>12} {:>12} {:>12} {:>12}",
            p.name,
            fmt(s.branch_fraction(), t.branch_fraction),
            fmt(s.analyzable_fraction(), t.analyzable_fraction),
            fmt(s.in_page_fraction(), t.in_page_fraction),
            fmt(s.bimodal_accuracy(), t.predictor_accuracy),
            fmt(s.il1_miss_rate(), t.il1_miss_rate),
            fmt(s.boundary_share(), t.boundary_share),
            fmt(s.crossing_fraction(), t.crossing_fraction),
        );
        println!(
            "{:<12} static instrs {}  pages {}  fns {}  kinds c/j/call/ret/ind {:.1}/{:.1}/{:.1}/{:.1}/{:.1}%",
            "",
            laid.slots.len(),
            laid.code_pages(),
            p.params.functions,
            100.0 * s.cond_branches as f64 / s.branches as f64,
            100.0 * s.jumps as f64 / s.branches as f64,
            100.0 * s.calls as f64 / s.branches as f64,
            100.0 * s.returns as f64 / s.branches as f64,
            100.0 * s.indirects as f64 / s.branches as f64,
        );
    }
}
