//! `cfr-store-serve` — the artifact-store daemon and its maintenance CLI.
//!
//! One process **exclusively owns** a sharded artifact store directory
//! and serves it over TCP (see `cfr_types::net` for the protocol and the
//! loss-free-compaction argument). Experiment binaries become clients by
//! setting `CFR_STORE_ADDR=host:port` — no other change.
//!
//! ```sh
//! # Serve (foreground; shut down via the subcommand below or SIGKILL):
//! cfr-store-serve --addr 127.0.0.1:7433 --dir target/cfr-store
//!
//! # Point any experiment binary at it:
//! CFR_STORE_ADDR=127.0.0.1:7433 all_experiments --commits 1000000
//!
//! # Maintenance (protocol commands from another machine/shell):
//! cfr-store-serve stats    --addr 127.0.0.1:7433
//! cfr-store-serve gc       --addr 127.0.0.1:7433
//! cfr-store-serve shutdown --addr 127.0.0.1:7433
//! ```
//!
//! The daemon opens its store **unbounded** so saves never compact
//! inline; the age/size policy (`CFR_STORE_MAX_BYTES` /
//! `CFR_STORE_MAX_AGE`) is applied by a background GC thread (cadence
//! `--gc-interval`, default 60 s) and by the `GC` protocol command.
//! While the daemon runs, no other process can open the directory: the
//! daemon holds an exclusive advisory lock on it (`daemon.lock`), and
//! local `ArtifactStore` opens are refused with an error pointing at
//! `CFR_STORE_ADDR`. The daemon being the sole shard owner is what makes
//! its compaction loss-free.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use cfr_types::net::{RemoteStore, ServerConfig, StoreServer, DEFAULT_DAEMON_ADDR};
use cfr_types::store::{ArtifactStore, GcPolicy, DEFAULT_STORE_DIR, STORE_DIR_ENV};

/// SIGTERM → graceful drain. The handler only flips an atomic flag
/// (the only thing async-signal-safe to do); the main thread polls it
/// and runs the actual drain outside signal context.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    type SigHandler = extern "C" fn(i32);

    unsafe extern "C" {
        fn signal(signum: i32, handler: SigHandler) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_term);
        }
    }

    pub fn received() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term_signal {
    pub fn install() {}
    pub fn received() -> bool {
        false
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cfr-store-serve [--addr HOST:PORT] [--dir DIR] [--gc-interval SECS]\n\
         \x20                     [--workers N] [--read-timeout SECS]\n\
         \x20      cfr-store-serve stats|health|gc|shutdown [--addr HOST:PORT]\n\
         \n\
         serve mode (default): own DIR (default $CFR_STORE_DIR, else {DEFAULT_STORE_DIR})\n\
         and serve it on HOST:PORT (default {DEFAULT_DAEMON_ADDR}). GC policy comes from\n\
         CFR_STORE_MAX_BYTES / CFR_STORE_MAX_AGE and runs on a background thread\n\
         every SECS seconds (default 60; 0 disables the thread). N worker threads\n\
         multiplex all connections (default 4); a connection stalled mid-frame\n\
         longer than the read timeout (default 10 s) is closed.\n\
         \n\
         stats / health / gc / shutdown: send the protocol command to a running\n\
         daemon and print its reply. SIGTERM drains gracefully: in-flight frames\n\
         are answered, parked waiters get an err reply, shards are synced, and\n\
         the directory lock is released."
    );
    std::process::exit(2);
}

struct Args {
    command: Option<String>, // None = serve
    addr: String,
    dir: Option<String>,
    gc_interval: u64,
    workers: usize,
    read_timeout: u64,
}

fn parse_args() -> Args {
    let defaults = ServerConfig::default();
    let mut args = Args {
        command: None,
        addr: DEFAULT_DAEMON_ADDR.to_string(),
        dir: None,
        gc_interval: 60,
        workers: defaults.workers,
        read_timeout: defaults.read_timeout.as_secs(),
    };
    let mut it = std::env::args().skip(1);
    let mut first = true;
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f.to_string(), Some(v.to_string())),
            None => (arg.clone(), None),
        };
        let mut value_of = |flag: &str| -> String {
            inline.clone().or_else(|| it.next()).unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value");
                usage();
            })
        };
        match flag.as_str() {
            "--addr" => args.addr = value_of("--addr"),
            "--dir" => args.dir = Some(value_of("--dir")),
            "--gc-interval" => {
                let v = value_of("--gc-interval");
                args.gc_interval = v.parse().unwrap_or_else(|_| {
                    eprintln!("error: --gc-interval expects seconds, got {v:?}");
                    usage();
                });
            }
            "--workers" => {
                let v = value_of("--workers");
                args.workers = v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    eprintln!("error: --workers expects a positive count, got {v:?}");
                    usage();
                });
            }
            "--read-timeout" => {
                let v = value_of("--read-timeout");
                args.read_timeout = v.parse().ok().filter(|n| *n > 0).unwrap_or_else(|| {
                    eprintln!("error: --read-timeout expects seconds, got {v:?}");
                    usage();
                });
            }
            "stats" | "health" | "gc" | "shutdown" if first && args.command.is_none() => {
                args.command = Some(flag);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        first = false;
    }
    args
}

fn maintenance(command: &str, addr: &str) -> ExitCode {
    let client = RemoteStore::new(addr);
    match command {
        "stats" => match client.stats() {
            Some(s) => {
                println!(
                    "stats: {} live records ({} runs / {} walks / {} programs / {} traces), \
                     {} live bytes in {} file bytes",
                    s.live_records,
                    s.runs,
                    s.walks,
                    s.programs,
                    s.traces,
                    s.live_bytes,
                    s.file_bytes,
                );
                println!(
                    "load: {} active connections, pipeline depth hwm {}, \
                     {} batched keys (max batch {}), claims {} granted / {} expired",
                    s.active_connections,
                    s.pipeline_hwm,
                    s.batched_keys,
                    s.max_batch,
                    s.claims_granted,
                    s.claims_expired,
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: no daemon reachable at {addr}");
                ExitCode::FAILURE
            }
        },
        "health" => match client.health() {
            Some(h) => {
                println!(
                    "health: up {}s, draining: {}, {}/{} shards occupied, \
                     {} live records in {} file bytes",
                    h.uptime_secs,
                    if h.draining { "yes" } else { "no" },
                    h.shards_occupied,
                    h.shard_count,
                    h.live_records,
                    h.file_bytes,
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: no daemon reachable at {addr}");
                ExitCode::FAILURE
            }
        },
        "gc" => match client.gc() {
            Some(r) => {
                println!(
                    "gc: dropped {} dead bytes, evicted {} by age + {} by size, \
                     rewrote {} shards; {} records / {} bytes live",
                    r.dead_bytes_dropped,
                    r.evicted_age,
                    r.evicted_size,
                    r.shards_rewritten,
                    r.live_records,
                    r.live_bytes,
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("error: no daemon reachable at {addr}");
                ExitCode::FAILURE
            }
        },
        "shutdown" => {
            if client.shutdown() {
                println!("shutdown: daemon at {addr} acknowledged");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: no daemon reachable at {addr}");
                ExitCode::FAILURE
            }
        }
        _ => unreachable!("parse_args only admits known commands"),
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(command) = &args.command {
        return maintenance(command, &args.addr);
    }

    let dir = args.dir.clone().unwrap_or_else(|| {
        std::env::var(STORE_DIR_ENV).unwrap_or_else(|_| DEFAULT_STORE_DIR.to_string())
    });
    // The daemon's store is opened UNBOUNDED: saves never compact
    // inline. The environment's policy is enforced by the background GC
    // thread and the GC command instead — GC off the save path. The
    // exclusive directory lock (held until exit) is what turns "no other
    // process should open the directory" from a convention into an
    // enforced invariant: local ArtifactStore opens are refused while
    // the daemon runs.
    let (store, lock) = match ArtifactStore::open_exclusive(&dir, GcPolicy::unbounded()) {
        Ok((store, lock)) => (Arc::new(store), lock),
        Err(err) => {
            eprintln!("error: cannot open the artifact store at {dir}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let policy = GcPolicy::from_env();
    let config = ServerConfig {
        gc_policy: policy,
        gc_interval: (args.gc_interval > 0).then(|| Duration::from_secs(args.gc_interval)),
        workers: args.workers,
        read_timeout: Duration::from_secs(args.read_timeout),
    };
    let server = match StoreServer::bind(Arc::clone(&store), &args.addr, config) {
        Ok(server) => server,
        Err(err) => {
            eprintln!("error: cannot bind {}: {err}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    // The `listening` line is the readiness signal scripts wait for; the
    // real address matters when --addr used port 0.
    println!(
        "cfr-store-serve listening on {} serving {dir}",
        server.addr()
    );
    println!(
        "policy: max_bytes={} max_age={} (background GC {})",
        policy
            .max_bytes
            .map_or_else(|| "unbounded".into(), |v| format!("{v} bytes")),
        policy
            .max_age_secs
            .map_or_else(|| "unbounded".into(), |v| format!("{v} s")),
        config
            .gc_interval
            .map_or_else(|| "disabled".into(), |d| format!("every {}s", d.as_secs())),
    );
    println!(
        "workers: {} multiplexing all connections, read timeout {}s, protocol v{}",
        config.workers,
        config.read_timeout.as_secs(),
        cfr_types::net::PROTOCOL_VERSION,
    );
    if store.migrated_records() > 0 {
        println!("migrated: {} v1 records", store.migrated_records());
    }
    use std::io::Write;
    let _ = std::io::stdout().flush();
    term_signal::install();
    // Poll for either exit trigger: a client's SHUTDOWN verb (the
    // server begins its own drain) or SIGTERM (we ask for one). Both
    // converge on `draining()`; the drain answers in-flight frames,
    // fails parked waiters with an err reply, and stops accepting.
    loop {
        if term_signal::received() && !server.draining() {
            println!("cfr-store-serve: SIGTERM received, draining");
            let _ = std::io::stdout().flush();
            server.drain();
        }
        if server.draining() {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    server.shutdown(); // completes the drain and joins every thread
    store.sync_shards(); // crash-safety: everything appended is on disk
    drop(lock); // hold the exclusive directory lock until the very end
    println!("cfr-store-serve: drain complete, shards synced, lock released");
    println!("cfr-store-serve: shutdown requested, exiting");
    ExitCode::SUCCESS
}
