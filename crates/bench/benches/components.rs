//! Criterion microbenchmarks of the substrates: cache, TLB, predictor,
//! energy model, program generation and the functional walker.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use cfr_energy::EnergyModel;
use cfr_mem::{AccessKind, Cache, CacheConfig, PageTable, Tlb, TlbConfig};
use cfr_types::{PageGeometry, Protection, TlbOrganization, Vpn};
use cfr_workload::{generate, GeneratorParams, LaidProgram, Walker};

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_hit", |b| {
        let mut cache = Cache::new(CacheConfig::default_il1());
        cache.access(0x1000, AccessKind::Read);
        b.iter(|| black_box(cache.access(black_box(0x1000), AccessKind::Read)));
    });
    c.bench_function("cache_access_streaming", |b| {
        let mut cache = Cache::new(CacheConfig::default_il1());
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(32);
            black_box(cache.access(black_box(addr), AccessKind::Read))
        });
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("tlb_lookup_hit", |b| {
        let mut tlb = Tlb::new(TlbConfig::default_itlb());
        let mut pt = PageTable::new();
        tlb.lookup(Vpn::new(1), &mut pt, Protection::code());
        b.iter(|| black_box(tlb.lookup(black_box(Vpn::new(1)), &mut pt, Protection::code())));
    });
}

fn bench_energy(c: &mut Criterion) {
    c.bench_function("energy_model_tlb_access", |b| {
        let model = EnergyModel::default();
        let org = TlbOrganization::fully_associative(32);
        b.iter(|| black_box(model.tlb_access_pj(black_box(&org))));
    });
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("generate_small_program", |b| {
        b.iter(|| black_box(generate(&GeneratorParams::small_test())));
    });
    c.bench_function("walker_step", |b| {
        let prog = generate(&GeneratorParams::small_test());
        let laid = LaidProgram::lay_out(&prog, PageGeometry::default_4k(), false);
        let mut walker = Walker::new(&laid, 1);
        b.iter(|| black_box(walker.step()));
    });
}

criterion_group!(
    benches,
    bench_cache,
    bench_tlb,
    bench_energy,
    bench_workload
);
criterion_main!(benches);
