//! Criterion benchmark of whole-pipeline simulation throughput per
//! strategy: how many simulated instructions per second the harness
//! achieves, which bounds how large the reproduction runs can be.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use cfr_core::{SimConfig, Simulator, StrategyKind};
use cfr_types::AddressingMode;
use cfr_workload::{generate, GeneratorParams};

fn bench_pipeline(c: &mut Criterion) {
    const COMMITS: u64 = 20_000;
    let program = generate(&GeneratorParams::small_test());
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(COMMITS));
    group.sample_size(10);
    for kind in [StrategyKind::Base, StrategyKind::HoA, StrategyKind::Ia] {
        group.bench_with_input(BenchmarkId::new("vipt", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut cfg = SimConfig::default_config();
                cfg.max_commits = COMMITS;
                black_box(Simulator::run_program(
                    black_box(&program),
                    &cfg,
                    kind,
                    AddressingMode::ViPt,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
