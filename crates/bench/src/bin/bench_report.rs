//! `bench_report` — the perf-trajectory harness.
//!
//! Times a **fixed cold workload matrix** (every strategy × addressing
//! mode over two representative benchmarks, no artifact store, fresh
//! simulations only) and writes machine-readable results to
//! `BENCH_pipeline.json`: simulated commits/sec per strategy×mode cell,
//! the execution backend that ran (`$CFR_BACKEND`), total wall time, and
//! the git revision — so each PR can leave a comparable breadcrumb of
//! simulator throughput. At the default scale/seed every cell also
//! carries `vs_reference`, its throughput normalized against a pinned
//! reference revision's committed numbers, so reports taken on different
//! machines compare as ratios rather than raw commits/sec. See README
//! "Performance" for the file format and the measured trajectory.
//!
//! ```sh
//! cargo run -p cfr-bench --release --bin bench_report -- --commits 300000
//! cargo run -p cfr-bench --release --bin bench_report -- --out out.json
//! ```
//!
//! Program generation and compilation (layout/instrumentation) happen
//! *outside* the timed region: the cells measure the cycle-level pipeline
//! itself, which is what the hot-loop work optimizes.

use std::fmt::Write as _;
use std::time::Instant;

use cfr_bench::try_scale_from_args;
use cfr_core::{compiler, ExecBackend, RunReport, SimConfig, Simulator, StrategyKind};
use cfr_types::AddressingMode;
use cfr_workload::{compile_trace, profiles, CompiledTrace, LaidProgram};

/// The benchmarks the matrix runs over: the least and the most
/// TLB-intensive of the paper's six (Table 2), so the timing covers both
/// behaviour extremes.
const PROFILES: [&str; 2] = ["177.mesa", "254.gap"];

/// Name of the extra L2-pressure cell (not part of the strategy × mode
/// matrix): a large-footprint variant of 254.gap whose data working set
/// (4 MB of heap arrays) thrashes the modeled 1 MB L2, so most data
/// references walk the dTLB + dL1 + L2 (+DRAM) metadata end to end. This
/// is the cell most sensitive to the memory-model data layout — the
/// matrix cells are fetch-dominated and mostly exercise the iL1/iTLB fast
/// paths.
const L2_PRESSURE_WORKLOAD: &str = "l2-pressure";

/// Generator parameters of the L2-pressure workload: 254.gap's control
/// flow with the data knobs turned to streaming-heavy. 32 arrays × 32
/// pages × 4 KB = 4 MB of heap, 4x the modeled L2; most data references
/// go to the heap (stack/global fractions cut down), and the load/store
/// fractions are raised so data references dominate.
fn l2_pressure_params(base: &cfr_workload::GeneratorParams) -> cfr_workload::GeneratorParams {
    let mut p = base.clone();
    p.heap_arrays = 32;
    p.heap_array_pages = 32;
    p.load_frac = 0.34;
    p.store_frac = 0.14;
    p.region_stack = 0.10;
    p.region_global = 0.08;
    p
}

/// Committed throughput of a pinned reference revision, measured at
/// [`REFERENCE_COMMITS_PER_RUN`] commits/run with seed [`REFERENCE_SEED`]
/// (the defaults). When a report runs at that same scale and seed, every
/// cell also emits `vs_reference` — its commits/sec divided by the
/// reference cell's — so reports from different machines normalize to a
/// dimensionless ratio instead of comparing raw absolute throughput.
/// At any other scale/seed the ratios are emitted as `null`.
const REFERENCE_REV: &str = "d667ad7ee514";
const REFERENCE_COMMITS_PER_RUN: u64 = 300_000;
const REFERENCE_SEED: u64 = 24301;
const REFERENCE_TOTAL_COMMITS_PER_SEC: f64 = 6_382_352.0;
const REFERENCE_CELLS: [(&str, &str, f64); 18] = [
    ("Base", "pipt", 6_664_049.0),
    ("Base", "vipt", 5_818_417.0),
    ("Base", "vivt", 4_473_807.0),
    ("OPT", "pipt", 4_736_602.0),
    ("OPT", "vipt", 6_449_228.0),
    ("OPT", "vivt", 7_161_058.0),
    ("HoA", "pipt", 6_425_961.0),
    ("HoA", "vipt", 6_573_896.0),
    ("HoA", "vivt", 7_297_496.0),
    ("SoCA", "pipt", 6_797_995.0),
    ("SoCA", "vipt", 6_721_879.0),
    ("SoCA", "vivt", 7_353_801.0),
    ("SoLA", "pipt", 6_818_297.0),
    ("SoLA", "vipt", 5_964_690.0),
    ("SoLA", "vivt", 7_232_045.0),
    ("IA", "pipt", 6_832_815.0),
    ("IA", "vipt", 6_576_021.0),
    ("IA", "vivt", 7_270_810.0),
];

/// Reference throughput of the L2-pressure cell, measured at revision
/// 8082cee (the last pre-SoA-layout revision) on the same host class as
/// the committed trajectory — the cell did not exist at [`REFERENCE_REV`],
/// so it pins to the newest revision that predates the data-layout work
/// its ratio is meant to expose.
const REFERENCE_L2_PRESSURE_CPS: f64 = 4_001_489.0;

fn reference_cell(strategy: &str, mode: &str, workload: Option<&str>) -> Option<f64> {
    if workload == Some(L2_PRESSURE_WORKLOAD) {
        return Some(REFERENCE_L2_PRESSURE_CPS);
    }
    REFERENCE_CELLS
        .iter()
        .find(|(s, m, _)| *s == strategy && *m == mode)
        .map(|(_, _, cps)| *cps)
}

/// `x.xxx` or `null` — the JSON value for a normalization ratio.
fn ratio_json(ratio: Option<f64>) -> String {
    ratio.map_or_else(|| "null".to_string(), |r| format!("{r:.3}"))
}

/// One timed cell: a matrix cell (`workload == None`) or the extra
/// L2-pressure cell.
struct Cell {
    strategy: StrategyKind,
    mode: AddressingMode,
    workload: Option<&'static str>,
    commits: u64,
    wall_seconds: f64,
}

fn mode_name(mode: AddressingMode) -> &'static str {
    match mode {
        AddressingMode::PiPt => "pipt",
        AddressingMode::ViPt => "vipt",
        AddressingMode::ViVt => "vivt",
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    // Accept the shared --commits/--seed flags plus --out <path>.
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut scale_args: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            }
        } else if let Some(p) = arg.strip_prefix("--out=") {
            out_path = p.to_string();
        } else {
            scale_args.push(arg);
        }
    }
    let mut scale = match try_scale_from_args(scale_args) {
        Ok(scale) => scale,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: --commits N --seed N --out FILE");
            std::process::exit(2);
        }
    };
    // The harness default is deliberately smaller than the experiment
    // binaries' 1 M: the matrix has 36 cells and must stay comfortably
    // runnable per-PR (and at tiny scale in CI).
    if std::env::args()
        .skip(1)
        .all(|a| !a.starts_with("--commits"))
    {
        scale.max_commits = 300_000;
    }

    let profile_set: Vec<_> = profiles::all()
        .into_iter()
        .filter(|p| PROFILES.contains(&p.name))
        .collect();
    assert_eq!(profile_set.len(), PROFILES.len(), "profiles resolved");

    // Generate + compile everything up front, outside the timed region:
    // layout/instrumentation AND the pre-decoded trace, so the cells
    // measure only the cycle-level pipeline under the selected backend.
    // Compilation classes are shared across strategies exactly as in the
    // engine (instrumented? marked?), so this mirrors warm-engine runs.
    let backend = ExecBackend::from_env();
    let cfg: SimConfig = scale.config();
    let mut compiled: Vec<(StrategyKind, Vec<(LaidProgram, CompiledTrace)>)> = Vec::new();
    for kind in StrategyKind::ALL {
        let mut per_profile = Vec::new();
        for p in &profile_set {
            let program = p.generate();
            let laid = compiler::compile_for(&program, cfg.cpu.geometry, kind);
            let trace = compile_trace(&laid);
            per_profile.push((laid, trace));
        }
        compiled.push((kind, per_profile));
    }

    eprintln!(
        "bench_report: {} strategies x 3 modes x {} profiles at {} commits/run ({} backend)",
        StrategyKind::ALL.len(),
        profile_set.len(),
        scale.max_commits,
        backend.name()
    );

    let total_start = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();
    for (kind, laid_programs) in &compiled {
        for mode in [
            AddressingMode::PiPt,
            AddressingMode::ViPt,
            AddressingMode::ViVt,
        ] {
            let start = Instant::now();
            let mut commits = 0u64;
            for (laid, trace) in laid_programs {
                let report: RunReport = match backend {
                    ExecBackend::Compiled => Simulator::run_traced(trace, &cfg, *kind, mode),
                    ExecBackend::Interp => Simulator::run_interp(laid, &cfg, *kind, mode),
                };
                commits += report.committed;
            }
            let wall = start.elapsed().as_secs_f64();
            eprintln!(
                "  {:>5} {}: {:>9} commits in {:.3}s ({:.0} commits/sec)",
                kind.name(),
                mode_name(mode),
                commits,
                wall,
                commits as f64 / wall
            );
            cells.push(Cell {
                strategy: *kind,
                mode,
                workload: None,
                commits,
                wall_seconds: wall,
            });
        }
    }
    // Sampled before the L2-pressure cell runs: the totals describe the
    // matrix, which is what the reference trajectory pins.
    let total_wall = total_start.elapsed().as_secs_f64();

    // The L2-pressure cell: one strategy × mode (Base/pipt — the plain
    // hardware-TLB configuration, so the timing isolates the memory
    // hierarchy rather than a translation strategy) over the
    // large-footprint workload.
    {
        let base = profile_set
            .iter()
            .find(|p| p.name == "254.gap")
            .expect("254.gap resolved above");
        let params = l2_pressure_params(&base.params);
        let program = cfr_workload::generate(&params);
        let kind = StrategyKind::Base;
        let mode = AddressingMode::PiPt;
        let laid = compiler::compile_for(&program, cfg.cpu.geometry, kind);
        let trace = compile_trace(&laid);
        let start = Instant::now();
        let report: RunReport = match backend {
            ExecBackend::Compiled => Simulator::run_traced(&trace, &cfg, kind, mode),
            ExecBackend::Interp => Simulator::run_interp(&laid, &cfg, kind, mode),
        };
        let wall = start.elapsed().as_secs_f64();
        eprintln!(
            "  {:>5} {} [{}]: {:>9} commits in {:.3}s ({:.0} commits/sec)",
            kind.name(),
            mode_name(mode),
            L2_PRESSURE_WORKLOAD,
            report.committed,
            wall,
            report.committed as f64 / wall
        );
        cells.push(Cell {
            strategy: kind,
            mode,
            workload: Some(L2_PRESSURE_WORKLOAD),
            commits: report.committed,
            wall_seconds: wall,
        });
    }

    // Totals cover the strategy × mode matrix only: the L2-pressure cell
    // is reported per-cell so the total stays comparable with the
    // pre-existing reference trajectory.
    let total_commits: u64 = cells
        .iter()
        .filter(|c| c.workload.is_none())
        .map(|c| c.commits)
        .sum();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_pipeline/v1\",");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", json_escape(&git_rev()));
    let _ = writeln!(json, "  \"commits_per_run\": {},", scale.max_commits);
    let _ = writeln!(json, "  \"seed\": {},", scale.seed);
    let _ = writeln!(json, "  \"backend\": \"{}\",", backend.name());
    let _ = writeln!(
        json,
        "  \"profiles\": [{}],",
        PROFILES
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"total_commits\": {total_commits},");
    let _ = writeln!(json, "  \"total_wall_seconds\": {total_wall:.3},");
    let total_cps = total_commits as f64 / total_wall;
    let _ = writeln!(json, "  \"total_commits_per_sec\": {total_cps:.0},");
    // Ratios against the pinned reference are only meaningful when the
    // workload is identical: same commits/run and same seed.
    let comparable = scale.max_commits == REFERENCE_COMMITS_PER_RUN && scale.seed == REFERENCE_SEED;
    let _ = writeln!(
        json,
        "  \"reference\": {{\"git_rev\": \"{REFERENCE_REV}\", \
         \"commits_per_run\": {REFERENCE_COMMITS_PER_RUN}, \"seed\": {REFERENCE_SEED}, \
         \"total_commits_per_sec\": {REFERENCE_TOTAL_COMMITS_PER_SEC:.0}}},"
    );
    let _ = writeln!(
        json,
        "  \"total_vs_reference\": {},",
        ratio_json(comparable.then(|| total_cps / REFERENCE_TOTAL_COMMITS_PER_SEC))
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let cps = c.commits as f64 / c.wall_seconds;
        let vs_reference = if comparable {
            reference_cell(c.strategy.name(), mode_name(c.mode), c.workload).map(|r| cps / r)
        } else {
            None
        };
        let workload_field = c
            .workload
            .map_or_else(String::new, |w| format!("\"workload\": \"{w}\", "));
        let _ = write!(
            json,
            "    {{\"strategy\": \"{}\", \"mode\": \"{}\", {}\"backend\": \"{}\", \
             \"commits\": {}, \"wall_seconds\": {:.3}, \"commits_per_sec\": {:.0}, \
             \"vs_reference\": {}}}",
            c.strategy.name(),
            mode_name(c.mode),
            workload_field,
            backend.name(),
            c.commits,
            c.wall_seconds,
            cps,
            ratio_json(vs_reference)
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "bench_report: {total_commits} commits in {total_wall:.2}s \
         ({:.0} commits/sec overall) -> {out_path}",
        total_commits as f64 / total_wall
    );
}
