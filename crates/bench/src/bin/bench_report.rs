//! `bench_report` — the perf-trajectory harness.
//!
//! Times a **fixed cold workload matrix** (every strategy × addressing
//! mode over two representative benchmarks, no artifact store, fresh
//! simulations only) and writes machine-readable results to
//! `BENCH_pipeline.json`: simulated commits/sec per strategy×mode cell,
//! total wall time, and the git revision — so each PR can leave a
//! comparable breadcrumb of simulator throughput. See README
//! "Performance" for the file format and the measured trajectory.
//!
//! ```sh
//! cargo run -p cfr-bench --release --bin bench_report -- --commits 300000
//! cargo run -p cfr-bench --release --bin bench_report -- --out out.json
//! ```
//!
//! Program generation and compilation (layout/instrumentation) happen
//! *outside* the timed region: the cells measure the cycle-level pipeline
//! itself, which is what the hot-loop work optimizes.

use std::fmt::Write as _;
use std::time::Instant;

use cfr_bench::try_scale_from_args;
use cfr_core::{compiler, RunReport, SimConfig, Simulator, StrategyKind};
use cfr_types::AddressingMode;
use cfr_workload::{profiles, LaidProgram};

/// The benchmarks the matrix runs over: the least and the most
/// TLB-intensive of the paper's six (Table 2), so the timing covers both
/// behaviour extremes.
const PROFILES: [&str; 2] = ["177.mesa", "254.gap"];

/// One timed cell of the matrix.
struct Cell {
    strategy: StrategyKind,
    mode: AddressingMode,
    commits: u64,
    wall_seconds: f64,
}

fn mode_name(mode: AddressingMode) -> &'static str {
    match mode {
        AddressingMode::PiPt => "pipt",
        AddressingMode::ViPt => "vipt",
        AddressingMode::ViVt => "vivt",
    }
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    // Accept the shared --commits/--seed flags plus --out <path>.
    let mut out_path = String::from("BENCH_pipeline.json");
    let mut scale_args: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--out" {
            match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("error: --out requires a path");
                    std::process::exit(2);
                }
            }
        } else if let Some(p) = arg.strip_prefix("--out=") {
            out_path = p.to_string();
        } else {
            scale_args.push(arg);
        }
    }
    let mut scale = match try_scale_from_args(scale_args) {
        Ok(scale) => scale,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: --commits N --seed N --out FILE");
            std::process::exit(2);
        }
    };
    // The harness default is deliberately smaller than the experiment
    // binaries' 1 M: the matrix has 36 cells and must stay comfortably
    // runnable per-PR (and at tiny scale in CI).
    if std::env::args()
        .skip(1)
        .all(|a| !a.starts_with("--commits"))
    {
        scale.max_commits = 300_000;
    }

    let profile_set: Vec<_> = profiles::all()
        .into_iter()
        .filter(|p| PROFILES.contains(&p.name))
        .collect();
    assert_eq!(profile_set.len(), PROFILES.len(), "profiles resolved");

    // Generate + compile everything up front, outside the timed region.
    // Compilation classes are shared across strategies exactly as in the
    // engine (instrumented? marked?), so this mirrors warm-engine runs.
    let cfg: SimConfig = scale.config();
    let mut compiled: Vec<(StrategyKind, Vec<LaidProgram>)> = Vec::new();
    for kind in StrategyKind::ALL {
        let mut per_profile = Vec::new();
        for p in &profile_set {
            let program = p.generate();
            per_profile.push(compiler::compile_for(&program, cfg.cpu.geometry, kind));
        }
        compiled.push((kind, per_profile));
    }

    eprintln!(
        "bench_report: {} strategies x 3 modes x {} profiles at {} commits/run",
        StrategyKind::ALL.len(),
        profile_set.len(),
        scale.max_commits
    );

    let total_start = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();
    for (kind, laid_programs) in &compiled {
        for mode in [
            AddressingMode::PiPt,
            AddressingMode::ViPt,
            AddressingMode::ViVt,
        ] {
            let start = Instant::now();
            let mut commits = 0u64;
            for laid in laid_programs {
                let report: RunReport = Simulator::run_compiled(laid, &cfg, *kind, mode);
                commits += report.committed;
            }
            let wall = start.elapsed().as_secs_f64();
            eprintln!(
                "  {:>5} {}: {:>9} commits in {:.3}s ({:.0} commits/sec)",
                kind.name(),
                mode_name(mode),
                commits,
                wall,
                commits as f64 / wall
            );
            cells.push(Cell {
                strategy: *kind,
                mode,
                commits,
                wall_seconds: wall,
            });
        }
    }
    let total_wall = total_start.elapsed().as_secs_f64();

    let total_commits: u64 = cells.iter().map(|c| c.commits).sum();
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"schema\": \"bench_pipeline/v1\",");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", json_escape(&git_rev()));
    let _ = writeln!(json, "  \"commits_per_run\": {},", scale.max_commits);
    let _ = writeln!(json, "  \"seed\": {},", scale.seed);
    let _ = writeln!(
        json,
        "  \"profiles\": [{}],",
        PROFILES
            .iter()
            .map(|p| format!("\"{p}\""))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(json, "  \"total_commits\": {total_commits},");
    let _ = writeln!(json, "  \"total_wall_seconds\": {total_wall:.3},");
    let _ = writeln!(
        json,
        "  \"total_commits_per_sec\": {:.0},",
        total_commits as f64 / total_wall
    );
    json.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"strategy\": \"{}\", \"mode\": \"{}\", \"commits\": {}, \
             \"wall_seconds\": {:.3}, \"commits_per_sec\": {:.0}}}",
            c.strategy.name(),
            mode_name(c.mode),
            c.commits,
            c.wall_seconds,
            c.commits as f64 / c.wall_seconds
        );
        json.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "bench_report: {total_commits} commits in {total_wall:.2}s \
         ({:.0} commits/sec overall) -> {out_path}",
        total_commits as f64 / total_wall
    );
}
