//! Reproduces **Table 7**: IA (VI-PT) execution cycles across iTLB sizes —
//! showing IA lets even a tiny iTLB perform acceptably, and a large one
//! perform best.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::table7;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let f = scale.to_paper_factor();
    println!("Table 7 — execution cycles (millions, 250M-instruction scale) for IA (VI-PT)\n");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "benchmark", "1-entry", "8-entry FA", "16-entry 2w", "32-entry FA"
    );
    for (name, cycles) in table7(&engine, &scale) {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            name,
            cycles[0] as f64 * f / 1e6,
            cycles[1] as f64 * f / 1e6,
            cycles[2] as f64 * f / 1e6,
            cycles[3] as f64 * f / 1e6,
        );
    }
    println!("\npaper shape: cycles shrink monotonically with iTLB size; the 1-entry");
    println!("column is dramatically slower (every page change walks the page table)");
    print_store_summary(&engine);
}
