//! Reproduces **Figure 6**: two-level iTLB configurations (base execution)
//! against monolithic iTLBs running IA.

use cfr_bench::{engine_with_store, pct, print_store_summary, scale_from_args};
use cfr_core::fig6;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    println!("Figure 6 — two-level iTLB (base) vs monolithic iTLB with IA (VI-PT)");
    println!("values are two-level ÷ monolithic-IA; >100% means the CFR wins\n");
    println!(
        "{:<12} {:<8} {:>14} {:>14}",
        "benchmark", "config", "energy ratio", "cycle ratio"
    );
    for r in fig6(&engine, &scale) {
        println!(
            "{:<12} {:<8} {:>14} {:>14}",
            r.name,
            r.config,
            pct(r.energy_ratio),
            pct(r.cycle_ratio)
        );
    }
    println!("\npaper shape: (1+32) base consumes ~155% of mono-32+IA energy and runs");
    println!("2-10% slower; (32+96) optimizes performance but deteriorates energy");
    print_store_summary(&engine);
}
