//! Reproduces **Table 4**: static and dynamic branch statistics — how many
//! branches are statically analyzable, and how many of those stay in-page.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::table4;
use cfr_workload::profiles;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    println!("Table 4 — static and dynamic branch statistics\n");
    println!(
        "{:<12} {:>8} {:>18} {:>18} | {:>10} {:>20} {:>20}",
        "benchmark", "static", "analyzable", "in-page", "dynamic", "analyzable", "in-page"
    );
    for (r, p) in table4(&engine, &scale).iter().zip(profiles::all()) {
        let t = &p.paper;
        println!(
            "{:<12} {:>8} {:>8} ({:>5.1}%) {:>8} ({:>5.1}%) | {:>10} {:>8} ({:>5.1}%/{:>5.1}%) {:>8} ({:>5.1}%/{:>5.1}%)",
            r.name,
            r.static_total,
            r.static_analyzable,
            100.0 * r.static_analyzable as f64 / r.static_total.max(1) as f64,
            r.static_in_page,
            100.0 * r.static_in_page as f64 / r.static_analyzable.max(1) as f64,
            r.dyn_total,
            r.dyn_analyzable,
            100.0 * r.dyn_analyzable as f64 / r.dyn_total.max(1) as f64,
            100.0 * t.analyzable_fraction,
            r.dyn_in_page,
            100.0 * r.dyn_in_page as f64 / r.dyn_analyzable.max(1) as f64,
            100.0 * t.in_page_fraction,
        );
    }
    println!("\n(x%/y%) = measured / paper");
    print_store_summary(&engine);
}
