//! Reproduces **Table 2**: benchmark characteristics under the default
//! configuration (Table 1), base execution.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::table2;
use cfr_workload::profiles;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let f = scale.to_paper_factor();
    println!("Table 2 — benchmark characteristics (extrapolated to 250M instructions)");
    println!("paper values in parentheses; cycles in millions, energy in mJ\n");
    println!(
        "{:<12} {:>22} {:>22} {:>22} {:>22} {:>14} {:>10} {:>26}",
        "benchmark",
        "VI-PT cycles(M)",
        "VI-PT iTLB E(mJ)",
        "VI-VT cycles(M)",
        "VI-VT iTLB E(mJ)",
        "iL1 miss",
        "branch%",
        "crossings BOUNDARY/BRANCH"
    );
    let rows = table2(&engine, &scale);
    for (row, p) in rows.iter().zip(profiles::all()) {
        let t = &p.paper;
        println!(
            "{:<12} {:>10.1} ({:>7.1}) {:>12.2} ({:>6.1}) {:>10.1} ({:>7.1}) {:>12.3} ({:>6.3}) {:>6.3} ({:>4.3}) {:>4.1} ({:>3.1}) {:>10}/{:<10} ({:.1}%)",
            row.name,
            row.vipt_cycles as f64 * f / 1e6,
            t.vipt_cycles_m,
            row.vipt_energy_mj * f,
            t.vipt_energy_mj,
            row.vivt_cycles as f64 * f / 1e6,
            t.vivt_cycles_m,
            row.vivt_energy_mj * f,
            t.vivt_energy_mj,
            row.il1_miss_rate,
            t.il1_miss_rate,
            row.branch_fraction * 100.0,
            t.branch_fraction * 100.0,
            row.crossings_boundary,
            row.crossings_branch,
            100.0 * row.crossings_boundary as f64
                / (row.crossings_boundary + row.crossings_branch).max(1) as f64,
        );
    }
    print_store_summary(&engine);
}
