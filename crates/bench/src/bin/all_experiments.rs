//! Runs every experiment and emits a Markdown paper-vs-measured summary —
//! the source of `EXPERIMENTS.md`.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::{fig4, fig6, table2, table3, table4, table5, table6, table7, table8, FIG4_SCHEMES};
use cfr_types::AddressingMode;
use cfr_workload::profiles;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let f = scale.to_paper_factor();
    println!("# EXPERIMENTS — paper vs. measured\n");
    println!(
        "All runs: {} committed instructions per (benchmark, strategy, mode); \
         absolute values extrapolated ×{:.0} to the paper's 250M-instruction scale. \
         The substrate is a synthetic-workload simulator (DESIGN.md §2), so the \
         comparison targets *shape* — orderings, ratios, crossovers — not absolute \
         equality.\n",
        scale.max_commits, f
    );

    // ---- Table 2.
    println!("## Table 2 — benchmark characteristics (base runs)\n");
    println!("| benchmark | VI-PT cycles M (paper) | VI-PT E mJ (paper) | VI-VT cycles M (paper) | VI-VT E mJ (paper) | iL1 miss (paper) | BOUNDARY share (paper) |");
    println!("|---|---|---|---|---|---|---|");
    for (r, p) in table2(&engine, &scale).iter().zip(profiles::all()) {
        let t = &p.paper;
        println!(
            "| {} | {:.1} ({:.1}) | {:.1} ({:.1}) | {:.1} ({:.1}) | {:.2} ({:.2}) | {:.4} ({:.4}) | {:.1}% ({:.1}%) |",
            r.name,
            r.vipt_cycles as f64 * f / 1e6,
            t.vipt_cycles_m,
            r.vipt_energy_mj * f,
            t.vipt_energy_mj,
            r.vivt_cycles as f64 * f / 1e6,
            t.vivt_cycles_m,
            r.vivt_energy_mj * f,
            t.vivt_energy_mj,
            r.il1_miss_rate,
            t.il1_miss_rate,
            100.0 * r.crossings_boundary as f64
                / (r.crossings_boundary + r.crossings_branch).max(1) as f64,
            100.0 * t.boundary_share,
        );
    }

    // ---- Figure 4 + 5.
    let rows = fig4(&engine, &scale);
    for mode in [AddressingMode::ViPt, AddressingMode::ViVt] {
        println!("\n## Figure 4 ({mode}) — normalized iTLB energy, base = 100%\n");
        print!("| benchmark |");
        for k in FIG4_SCHEMES {
            print!(" {} |", k.name());
        }
        println!("\n|---|---|---|---|---|---|");
        let mode_rows: Vec<_> = rows.iter().filter(|r| r.mode == mode).collect();
        let mut avg = [0.0f64; 5];
        for r in &mode_rows {
            print!("| {} |", r.name);
            for (i, e) in r.energy.iter().enumerate() {
                avg[i] += e;
                print!(" {:.2}% |", e * 100.0);
            }
            println!();
        }
        print!("| **average** |");
        for a in avg {
            print!(" **{:.2}%** |", a * 100.0 / mode_rows.len() as f64);
        }
        println!();
        let paper = match mode {
            AddressingMode::ViPt => [5.69, 12.24, 5.01, 3.82, 3.20],
            _ => [15.23, 36.83, 16.39, 14.04, 12.74],
        };
        print!("| *paper avg* |");
        for p in paper {
            print!(" *{p:.2}%* |");
        }
        println!();
    }
    println!("\n## Figure 5 (VI-VT) — normalized execution cycles, base = 100%\n");
    print!("| benchmark |");
    for k in FIG4_SCHEMES {
        print!(" {} |", k.name());
    }
    println!("\n|---|---|---|---|---|---|");
    for r in rows.iter().filter(|r| r.mode == AddressingMode::ViVt) {
        print!("| {} |", r.name);
        for c in r.cycles {
            print!(" {:.2}% |", c * 100.0);
        }
        println!();
    }
    println!("| *paper* | — | — | — | *94.5–98% (avg 96.45%)* | — |");

    // ---- Table 3.
    println!("\n## Table 3 — dynamic iTLB lookups by cause (VI-PT)\n");
    println!("| benchmark | SoCA bnd/branch | SoLA bnd/branch | IA bnd/branch |");
    println!("|---|---|---|---|");
    for r in table3(&engine, &scale) {
        print!("| {} |", r.name);
        for (b, br) in r.lookups {
            print!(" {b}/{br} |");
        }
        println!();
    }
    println!(
        "\nPaper shape: the BRANCH column shrinks SoCA → SoLA → IA while BOUNDARY is constant."
    );

    // ---- Table 4.
    println!("\n## Table 4 — branch statistics\n");
    println!("| benchmark | static total | static analyzable | static in-page | dyn analyzable % (paper) | dyn in-page % (paper) |");
    println!("|---|---|---|---|---|---|");
    for (r, p) in table4(&engine, &scale).iter().zip(profiles::all()) {
        println!(
            "| {} | {} | {} | {} | {:.1}% ({:.1}%) | {:.1}% ({:.1}%) |",
            r.name,
            r.static_total,
            r.static_analyzable,
            r.static_in_page,
            100.0 * r.dyn_analyzable as f64 / r.dyn_total.max(1) as f64,
            100.0 * p.paper.analyzable_fraction,
            100.0 * r.dyn_in_page as f64 / r.dyn_analyzable.max(1) as f64,
            100.0 * p.paper.in_page_fraction,
        );
    }

    // ---- Table 5.
    println!("\n## Table 5 — branch predictor accuracy\n");
    println!("| benchmark | measured | paper |");
    println!("|---|---|---|");
    for ((name, acc), p) in table5(&engine, &scale).iter().zip(profiles::all()) {
        println!(
            "| {} | {:.2}% | {:.2}% |",
            name,
            acc * 100.0,
            p.paper.predictor_accuracy * 100.0
        );
    }

    // ---- Table 6 (averaged view to keep the summary readable).
    println!("\n## Table 6 — iTLB sweep (per-config averages over the six benchmarks)\n");
    println!("| iTLB | VI-PT OPT/base | VI-PT IA/base | VI-VT IA cycles/base |");
    println!("|---|---|---|---|");
    let t6 = table6(&engine, &scale);
    for (label, _) in cfr_core::table6_itlbs() {
        let rows: Vec<_> = t6.iter().filter(|r| r.itlb == label).collect();
        let n = rows.len() as f64;
        let opt: f64 = rows
            .iter()
            .map(|r| r.vipt_energy_mj[1] / r.vipt_energy_mj[0])
            .sum::<f64>()
            / n;
        let ia: f64 = rows
            .iter()
            .map(|r| r.vipt_energy_mj[2] / r.vipt_energy_mj[0])
            .sum::<f64>()
            / n;
        let cyc: f64 = rows
            .iter()
            .map(|r| r.vivt_cycles[2] as f64 / r.vivt_cycles[0] as f64)
            .sum::<f64>()
            / n;
        println!(
            "| {label} | {:.2}% | {:.2}% | {:.2}% |",
            opt * 100.0,
            ia * 100.0,
            cyc * 100.0
        );
    }
    println!("\nPaper shape: percentages shrink with iTLB size; VI-VT cycle savings are");
    println!("largest at 1 entry (81.9% of base, i.e. 18.1% saved) and smallest at 32 (96.45%).");

    // ---- Table 7.
    println!("\n## Table 7 — IA (VI-PT) cycles across iTLB sizes (millions, 250M scale)\n");
    println!("| benchmark | 1 | 8 FA | 16 2w | 32 FA |");
    println!("|---|---|---|---|---|");
    for (name, c) in table7(&engine, &scale) {
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            name,
            c[0] as f64 * f / 1e6,
            c[1] as f64 * f / 1e6,
            c[2] as f64 * f / 1e6,
            c[3] as f64 * f / 1e6
        );
    }

    // ---- Fig 6.
    println!("\n## Figure 6 — two-level iTLB (base) vs monolithic + IA\n");
    println!("| benchmark | config | energy ratio | cycle ratio |");
    println!("|---|---|---|---|");
    for r in fig6(&engine, &scale) {
        println!(
            "| {} | {} | {:.1}% | {:.2}% |",
            r.name,
            r.config,
            r.energy_ratio * 100.0,
            r.cycle_ratio * 100.0
        );
    }
    println!("\nPaper shape: (1+32) base ≈ 155% of mono-32+IA energy, 102–110% of its cycles.");

    // ---- Table 8.
    println!("\n## Table 8 — PI-PT study (E mJ / cycles M, 250M scale)\n");
    println!("| benchmark | PI-PT base | PI-PT IA | VI-PT base | VI-VT base |");
    println!("|---|---|---|---|---|");
    for r in table8(&engine, &scale) {
        let p = |(e, c): (f64, u64)| format!("{:.2} / {:.1}", e * f, c as f64 * f / 1e6);
        println!(
            "| {} | {} | {} | {} | {} |",
            r.name,
            p(r.pipt_base),
            p(r.pipt_ia),
            p(r.vipt_base),
            p(r.vivt_base)
        );
    }

    // Engine accounting goes to stderr so stdout stays a byte-stable
    // Markdown document.
    eprintln!(
        "engine: {} unique runs simulated across all tables/figures, \
         {} programs generated",
        engine.simulated_runs(),
        engine.program_cache().generated()
    );
    print_store_summary(&engine);
}
