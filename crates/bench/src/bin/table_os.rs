//! Extension (paper §3.2, quantified): multiprogrammed OS scenarios.
//! The paper notes the CFR is invalidated on a context switch but never
//! costs the switches; this table time-slices a four-program mix over one
//! core and sweeps the OS knobs — scheduling quantum, TLB mode
//! (ASID-tagged vs flush-on-switch), and hardware ASID count — reporting
//! whole-machine CPI and translation-path energy for each point.

use cfr_bench::{engine_with_store, print_store_summary, scale_from_args};
use cfr_core::{ScenarioConfig, ScenarioProc, StrategyKind, TlbMode};
use cfr_types::AddressingMode;
use cfr_workload::profiles;

/// OS cost constants shared by every cell (cycles).
const SWITCH_PENALTY: u32 = 400;
const SHOOTDOWN_PER_ENTRY: u32 = 2;
const FAULT_LATENCY: u32 = 300;
const DEMAND_FAULT_PENALTY: u32 = 800;

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    let names = profiles::mix(scale.seed, 4);
    println!("Multiprogrammed OS table — 4-program mix, IA strategy, VI-PT");
    println!("mix: {}\n", names.join(", "));

    let quanta = [10_000u64, 50_000, 250_000];
    let mut cells: Vec<(u64, TlbMode, u16)> = Vec::new();
    for &quantum in &quanta {
        for asids in [2u16, 16] {
            cells.push((quantum, TlbMode::Asid, asids));
        }
        cells.push((quantum, TlbMode::Flush, 1));
    }
    let cfgs: Vec<ScenarioConfig> = cells
        .iter()
        .map(|&(quantum, tlb_mode, asid_count)| {
            let mut cfg = ScenarioConfig::new(
                names.iter().map(|n| ScenarioProc::new(n)).collect(),
                scale,
                StrategyKind::Ia,
                AddressingMode::ViPt,
            );
            cfg.quantum = quantum;
            cfg.tlb_mode = tlb_mode;
            cfg.asid_count = asid_count;
            cfg.switch_penalty = SWITCH_PENALTY;
            cfg.shootdown_per_entry = SHOOTDOWN_PER_ENTRY;
            cfg.fault_latency = FAULT_LATENCY;
            cfg.demand_fault_penalty = DEMAND_FAULT_PENALTY;
            cfg
        })
        .collect();
    let reports = engine.run_scenarios(&cfgs);

    println!(
        "{:>9} {:>6} {:>6} {:>7} {:>12} {:>9} {:>9} {:>10} {:>7}",
        "quantum",
        "mode",
        "asids",
        "cpi",
        "energy-mJ",
        "switches",
        "flushed",
        "shootdowns",
        "faults"
    );
    for ((quantum, mode, asids), r) in cells.iter().zip(&reports) {
        println!(
            "{:>9} {:>6} {:>6} {:>7.3} {:>12.4} {:>9} {:>9} {:>10} {:>7}",
            quantum,
            mode.name(),
            asids,
            r.cpi(),
            r.machine.itlb_energy_mj(),
            r.context_switches,
            r.itlb_flushed + r.dtlb_flushed,
            r.shootdowns,
            r.machine.itlb.protection_faults + r.demand_faults,
        );
    }
    println!("\nshape: shorter quanta switch more; flush mode re-misses both TLBs");
    println!("after every switch, while ASID tagging only pays on ASID reuse");
    print_store_summary(&engine);
}
