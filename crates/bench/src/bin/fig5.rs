//! Reproduces **Figure 5**: normalized execution cycles for VI-VT.
//! (Paper: IA saves 2–5% of cycles, 3.55% on average; VI-PT cycles are
//! unchanged across schemes, which `fig4 --commits N` confirms.)

use cfr_bench::{engine_with_store, pct, print_store_summary, scale_from_args};
use cfr_core::{fig5, FIG4_SCHEMES};

fn main() {
    let scale = scale_from_args();
    let engine = engine_with_store();
    println!("Figure 5 (VI-VT) — normalized execution cycles (base = 100%)\n");
    print!("{:<12}", "benchmark");
    for k in FIG4_SCHEMES {
        print!(" {:>9}", k.name());
    }
    println!();
    let rows = fig5(&engine, &scale);
    let mut avg = [0.0f64; 5];
    for r in &rows {
        print!("{:<12}", r.name);
        for (i, c) in r.cycles.iter().enumerate() {
            avg[i] += c;
            print!(" {:>9}", pct(*c));
        }
        println!();
    }
    print!("{:<12}", "AVERAGE");
    for a in avg {
        print!(" {:>9}", pct(a / rows.len() as f64));
    }
    println!("\npaper: IA averages 96.45% (3.55% cycle savings), range 95-98%");
    print_store_summary(&engine);
}
